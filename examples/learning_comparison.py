"""Compare nogood-learning methods on one workload — Table 1 in miniature.

Runs AWC with resolvent-based learning (Rslv), minimal-conflict-set
learning (Mcs), size-bounded learning (3rdRslv) and no learning (No), plus
the distributed breakout (DB), on the same distributed 3-coloring cell, and
prints the paper's two cost measures side by side.

Run:  python examples/learning_comparison.py
"""

from repro import awc, db, run_cell
from repro.problems.coloring import random_coloring_instance

N = 40
INSTANCES = 4
INITS = 4


def main() -> None:
    instances = [
        random_coloring_instance(N, seed=seed).to_discsp()
        for seed in range(INSTANCES)
    ]
    print(
        f"distributed 3-coloring, n={N}, m={instances[0].csp.nogoods and len(instances[0].csp.nogoods)//3} arcs, "
        f"{INSTANCES} instances x {INITS} initial-value sets\n"
    )
    print(f"{'algorithm':14s} {'cycle':>8s} {'maxcck':>10s} {'%':>5s}")
    print("-" * 40)
    for spec in (
        awc("Rslv"),
        awc("Mcs"),
        awc("3rdRslv"),
        awc("No"),
        db(),
    ):
        cell = run_cell(
            instances, spec, inits_per_instance=INITS, master_seed=0, n=N
        )
        print(
            f"{spec.name:14s} {cell.mean_cycle:8.1f} "
            f"{cell.mean_maxcck:10.1f} {cell.percent_solved:5.0f}"
        )
    print(
        "\nExpected shape (paper, Tables 1/5/8): learning slashes cycles; "
        "Rslv needs fewer checks than Mcs; the size bound trims maxcck; "
        "DB uses the fewest checks but the most cycles."
    )


if __name__ == "__main__":
    main()
