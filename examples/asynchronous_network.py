"""AWC on asynchronous networks, and when learning beats the breakout.

Two experiments in one script:

1. The paper designs AWC for *fully asynchronous* systems and evaluates it
   on a synchronous simulator for convenience. Here we run the same agents
   on networks with random per-message delays (with and without FIFO
   channels) and confirm they still converge to correct solutions.

2. The Figure 2 question: given measured (cycle, maxcck), at what
   communication delay does AWC+4thRslv overtake DB? We measure both on a
   unique-solution 3SAT cell and print the efficiency lines and crossover.

Run:  python examples/asynchronous_network.py
"""

from repro import awc, db, derive_rng, run_trial
from repro.experiments.efficiency import CostLine, crossover_delay, format_figure
from repro.experiments.runner import run_cell
from repro.problems.coloring import random_coloring_instance
from repro.problems.sat import sat_to_discsp, unique_solution_3sat
from repro.runtime.network import RandomDelayNetwork


def delayed_network(max_delay, fifo):
    def factory(seed):
        return RandomDelayNetwork(
            max_delay=max_delay, rng=derive_rng(seed, "example-net"), fifo=fifo
        )

    return factory


def main() -> None:
    problem = random_coloring_instance(25, seed=11).to_discsp()
    print("1) AWC+Rslv under message delays (3-coloring, n=25)")
    print(f"{'network':28s} {'cycles':>7s} {'solved':>7s}")
    for label, factory in [
        ("synchronous (paper)", None),
        ("delay ≤ 3, FIFO", delayed_network(3, True)),
        ("delay ≤ 3, reordering", delayed_network(3, False)),
        ("delay ≤ 8, reordering", delayed_network(8, False)),
    ]:
        kwargs = {"network_factory": factory} if factory else {}
        result = run_trial(problem, awc("Rslv"), seed=2, **kwargs)
        assert problem.is_solution(result.assignment)
        print(f"{label:28s} {result.cycles:7d} {str(result.solved):>7s}")

    print("\n2) Efficiency vs communication delay (d3s1, n=25)")
    instances = [
        sat_to_discsp(unique_solution_3sat(25, seed=s).formula)
        for s in range(3)
    ]
    awc_cell = run_cell(instances, awc("4thRslv"), 4, master_seed=0, n=25)
    db_cell = run_cell(instances, db(), 4, master_seed=0, n=25)
    awc_line = CostLine("AWC+4thRslv", awc_cell.mean_cycle, awc_cell.mean_maxcck)
    db_line = CostLine("DB", db_cell.mean_cycle, db_cell.mean_maxcck)
    crossing = crossover_delay(awc_line, db_line)
    upper = 100 if crossing is None else max(10, round(2.5 * crossing))
    delays = [round(upper * i / 8) for i in range(9)]
    print(format_figure([awc_line, db_line], delays))
    if crossing is None:
        print(
            "\nno crossover: one algorithm dominates at every delay "
            "(common at small n, where AWC's nogood stores stay tiny)"
        )
    else:
        print(
            f"\npast ~{crossing:.0f} check-equivalents of delay per cycle, "
            "learning pays for its computation (the paper's Figure 2 story)"
        )


if __name__ == "__main__":
    main()
