"""Distributed n-queens: one agent per row, negotiated with three algorithms.

A classic dense constraint problem that is *not* one of the paper's random
benchmarks: every pair of rows is constrained (same column or same
diagonal), so every agent is everyone's neighbor and message traffic is
maximal. A nice stress test for the learning machinery — and a visual one.

Run:  python examples/nqueens.py
"""

from repro import abt, awc, db, run_trial
from repro.problems import is_nqueens_solution, nqueens_discsp

SIZE = 8


def draw(assignment) -> str:
    rows = []
    for row in range(SIZE):
        cells = [
            " Q" if assignment[row] == column else " ."
            for column in range(SIZE)
        ]
        rows.append("".join(cells))
    return "\n".join(rows)


def main() -> None:
    problem = nqueens_discsp(SIZE)
    print(f"{SIZE}-queens as a DisCSP: {problem}\n")

    print(f"{'algorithm':14s} {'cycle':>7s} {'maxcck':>9s} {'msgs':>7s}")
    best = None
    for spec in (awc("Rslv"), awc("3rdRslv"), db(), abt()):
        result = run_trial(problem, spec, seed=11, max_cycles=20_000)
        assert result.solved, spec.name
        assert is_nqueens_solution(SIZE, result.assignment)
        print(
            f"{spec.name:14s} {result.cycles:7d} {result.maxcck:9d} "
            f"{result.messages_sent:7d}"
        )
        if best is None:
            best = result
    print("\nAWC+Rslv's board:")
    print(draw(best.assignment))


if __name__ == "__main__":
    main()
