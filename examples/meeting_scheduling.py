"""Distributed meeting scheduling — a MAS application modeled as a DisCSP.

Each meeting is owned by one agent (its organizer's calendar process); two
meetings sharing a participant must land in different slots. The agents
negotiate a consistent schedule with AWC + resolvent learning, never
pooling their calendars in one place — the privacy argument the paper makes
for distributed algorithms in Section 2.2.

Run:  python examples/meeting_scheduling.py
"""

from repro import awc, run_trial
from repro.problems import meeting_scheduling

MEETINGS = {
    "standup": ["ana", "bo", "casey"],
    "api-design": ["bo", "dev"],
    "retro": ["ana", "casey"],
    "1:1 ana/dev": ["ana", "dev"],
    "launch-review": ["casey", "dev"],
    "hiring-sync": ["bo", "ana"],
}

SLOTS = ["Mon 09:00", "Mon 10:00", "Mon 11:00", "Mon 13:00"]


def main() -> None:
    schedule = meeting_scheduling(MEETINGS, SLOTS)
    print(f"{len(MEETINGS)} meetings, {len(SLOTS)} slots")
    print(f"problem: {schedule.problem}\n")

    result = run_trial(schedule.problem, awc("Rslv"), seed=3)
    assert result.solved, "no consistent schedule found"

    plan = schedule.decode(result.assignment)
    for meeting in sorted(plan):
        attendees = ", ".join(MEETINGS[meeting])
        print(f"  {plan[meeting]:10s}  {meeting:14s} ({attendees})")

    # No participant is double-booked:
    busy = {}
    for meeting, slot in plan.items():
        for person in MEETINGS[meeting]:
            assert (person, slot) not in busy, f"{person} double-booked"
            busy[(person, slot)] = meeting
    print(
        f"\nverified: nobody is double-booked "
        f"(settled in {result.cycles} cycles, "
        f"{result.messages_sent} messages)"
    )


if __name__ == "__main__":
    main()
