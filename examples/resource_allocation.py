"""Distributed resource allocation — the paper's motivating MAS domain.

Observation tasks must each be assigned a satellite capable of serving
them; tasks with overlapping observation windows may not share a satellite.
One agent per task negotiates the allocation with AWC. The same problem is
also run with the distributed breakout for comparison.

Run:  python examples/resource_allocation.py
"""

from repro import awc, db, run_trial
from repro.problems import resource_allocation

CAPABILITIES = {
    "arctic-scan": ["sat-A", "sat-B"],
    "pacific-storm": ["sat-B", "sat-C"],
    "wildfire-watch": ["sat-A", "sat-C", "sat-D"],
    "crop-survey": ["sat-C", "sat-D"],
    "glacier-melt": ["sat-A", "sat-D"],
}

# Tasks whose observation windows overlap cannot share a satellite.
CONFLICTS = [
    ("arctic-scan", "pacific-storm"),
    ("arctic-scan", "glacier-melt"),
    ("pacific-storm", "wildfire-watch"),
    ("wildfire-watch", "crop-survey"),
    ("crop-survey", "glacier-melt"),
]


def main() -> None:
    allocation = resource_allocation(CAPABILITIES, CONFLICTS)
    print(f"problem: {allocation.problem}\n")

    for spec in (awc("Rslv"), db()):
        result = run_trial(allocation.problem, spec, seed=9)
        assert result.solved
        plan = allocation.decode(result.assignment)
        print(f"{spec.name}: solved in {result.cycles} cycles")
        for task in sorted(plan):
            print(f"   {task:15s} -> {plan[task]}")
        for first, second in CONFLICTS:
            assert plan[first] != plan[second]
        print("   verified: no conflicting tasks share a satellite\n")


if __name__ == "__main__":
    main()
