"""Watching a distributed search run: tracing, profiles, statistics.

Attaches a TraceRecorder to a simulated AWC run, prints the first events of
the negotiation, the per-cycle computation profile (learning runs get more
expensive as nogood stores fill — the very effect size-bounded learning
exists to curb), message statistics, and a multi-trial summary with
confidence intervals.

Run:  python examples/trace_debugging.py
"""

from repro import MetricsCollector, SynchronousSimulator, learning_method
from repro.algorithms import build_awc_agents
from repro.analysis import (
    phase_profile,
    sparkline,
    summarize_cycles,
    summarize_maxcck,
)
from repro.experiments.runner import run_trial
from repro.algorithms.registry import awc
from repro.problems.sat import sat_to_discsp, unique_solution_3sat
from repro.runtime.trace import TraceRecorder

N = 25


def main() -> None:
    problem = sat_to_discsp(unique_solution_3sat(N, seed=6).formula)
    print(f"problem: {problem} (unique-solution 3SAT)\n")

    # --- one traced run ------------------------------------------------------
    metrics = MetricsCollector(keep_history=True)
    agents = build_awc_agents(
        problem, learning_method("Rslv"), metrics, seed=1
    )
    tracer = TraceRecorder()
    result = SynchronousSimulator(
        problem, agents, metrics=metrics, tracer=tracer
    ).run()
    assert result.solved

    print("first events of the negotiation:")
    print(tracer.render(limit=12))

    print("\nmessage mix:", tracer.message_counts_by_type())
    print("busiest agents:", tracer.busiest_agents(top=3))

    profile = phase_profile(result.max_history, phases=4)
    print(
        f"\nper-cycle worst-agent checks over {result.cycles} cycles "
        f"(peak {profile.peak_value} at cycle {profile.peak_cycle}):"
    )
    print(f"  {sparkline(result.max_history)}")
    print(
        "  phase means:",
        [round(value, 1) for value in profile.phase_means],
        "— rising:" if profile.rising else "— flat:",
        "nogood stores grow as learning accumulates"
        if profile.rising
        else "computation stayed level",
    )

    # --- statistics over repeated trials -------------------------------------
    trials = [
        run_trial(problem, awc("Rslv"), seed=seed) for seed in range(12)
    ]
    print(f"\nacross {len(trials)} random restarts:")
    print(f"  cycle : {summarize_cycles(trials)}")
    print(f"  maxcck: {summarize_maxcck(trials)}")


if __name__ == "__main__":
    main()
