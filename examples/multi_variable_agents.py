"""Multi-variable-per-agent AWC — the paper's Section 5 extension.

Real problems rarely give every agent exactly one variable. Here the same
random coloring problem is distributed three ways — one node per agent, two
departments, and fully centralized in one agent — and solved with the
multi-variable AWC, whose hosted variables exchange messages *within* a
cycle. The fewer the agents, the more conflicts resolve locally and the
fewer communication cycles are spent.

Run:  python examples/multi_variable_agents.py
"""

from repro import DisCSP, MetricsCollector, SynchronousSimulator, learning_method
from repro.algorithms import build_multi_awc_agents
from repro.problems.coloring import coloring_csp, random_coloring_instance

N = 24


def run_with_agents(csp, num_agents, seed=0):
    owner = {variable: variable % num_agents for variable in csp.variables}
    problem = DisCSP(csp, owner)
    metrics = MetricsCollector()
    agents = build_multi_awc_agents(
        problem, learning_method("Rslv"), metrics, seed
    )
    result = SynchronousSimulator(problem, agents, metrics=metrics).run()
    assert result.solved, f"{num_agents} agents failed"
    assert problem.is_solution(result.assignment)
    return result


def main() -> None:
    instance = random_coloring_instance(N, seed=13)
    csp = coloring_csp(instance.graph, 3)
    print(f"3-coloring, n={N}, m={instance.graph.num_edges} arcs\n")
    print(f"{'distribution':24s} {'cycles':>7s} {'maxcck':>8s} {'msgs':>6s}")
    for num_agents in (N, 6, 2, 1):
        result = run_with_agents(csp, num_agents)
        label = (
            "one variable per agent"
            if num_agents == N
            else f"{num_agents} agent(s)"
        )
        print(
            f"{label:24s} {result.cycles:7d} {result.maxcck:8d} "
            f"{result.messages_sent:6d}"
        )
    print(
        "\nHosting more variables per agent converts communication cycles "
        "into intra-cycle local computation — the trade-off the paper's "
        "future-work section points at."
    )


if __name__ == "__main__":
    main()
