"""Quickstart: solve a distributed 3-coloring problem with AWC + resolvent learning.

Run:  python examples/quickstart.py
"""

from repro import awc, random_coloring_instance, run_trial


def main() -> None:
    # A solvable random 3-coloring instance at the paper's density
    # (m = 2.7 n), one node per agent.
    instance = random_coloring_instance(num_nodes=30, seed=7)
    problem = instance.to_discsp()
    print(f"problem: {problem}")
    print(f"graph:   {instance.graph}")

    # AWC with resolvent-based nogood learning — the paper's algorithm.
    result = run_trial(problem, awc("Rslv"), seed=42)

    print(f"\nsolved:        {result.solved}")
    print(f"cycles:        {result.cycles}   (communication cost)")
    print(f"maxcck:        {result.maxcck}   (computation cost)")
    print(f"messages sent: {result.messages_sent}")
    print(f"nogoods made:  {result.generated_nogoods}")

    assert problem.is_solution(result.assignment)
    colors = "RGB"
    painted = "".join(
        colors[result.assignment[node]] for node in sorted(result.assignment)
    )
    print(f"\ncoloring:      {painted}")

    # Every arc really is bichromatic:
    for u, v in instance.graph.edges:
        assert result.assignment[u] != result.assignment[v]
    print("verified: all arcs bichromatic")


if __name__ == "__main__":
    main()
