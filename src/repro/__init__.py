"""repro — a reproduction of Hirayama & Yokoo (ICDCS 2000):
"The Effect of Nogood Learning in Distributed Constraint Satisfaction".

The library provides:

* the **AWC** algorithm (asynchronous weak-commitment search) with pluggable
  nogood learning — resolvent-based (the paper's contribution),
  minimal-conflict-set, size-bounded, and none;
* the **distributed breakout** and **ABT** baselines, plus a
  multi-variable-per-agent AWC extension;
* a **synchronous distributed-system simulator** with the paper's cost
  accounting (``cycle`` and ``maxcck``);
* the paper's **problem generators** (planted 3-coloring at m = 2.7n,
  3SAT-GEN- and 3ONESAT-GEN-style random 3SAT) and a DIMACS CNF reader;
* the full **experiment harness** reproducing every table and figure.

Quickstart::

    from repro import awc, random_coloring_instance, run_trial

    problem = random_coloring_instance(30, seed=1).to_discsp()
    result = run_trial(problem, awc("Rslv"), seed=42)
    print(result.solved, result.cycles, result.maxcck)
"""

from .algorithms import (
    AbtAgent,
    AlgorithmSpec,
    AwcAgent,
    BreakoutAgent,
    MultiVariableAwcAgent,
    abt,
    algorithm_by_name,
    awc,
    build_abt_agents,
    build_awc_agents,
    build_breakout_agents,
    build_multi_awc_agents,
    db,
)
from .core import (
    CSP,
    AgentView,
    CheckCounter,
    DisCSP,
    Domain,
    GenerationError,
    ModelError,
    Nogood,
    NogoodStore,
    ReproError,
    SimulationError,
    SolverError,
    UnsolvableError,
    integer_domain,
)
from .experiments import (
    CellResult,
    CostLine,
    Figure2Result,
    Scale,
    Table,
    crossover_delay,
    run_cell,
    run_cell_parallel,
    run_figure2,
    run_table,
    run_table4,
    run_trial,
)
from .learning import (
    LearningMethod,
    McsLearning,
    NoLearning,
    ResolventLearning,
    SizeBoundedResolventLearning,
    learning_method,
)
from .problems import (
    ColoringInstance,
    Graph,
    meeting_scheduling,
    random_coloring_instance,
    resource_allocation,
)
from .problems.sat import (
    CnfFormula,
    parse_dimacs,
    planted_3sat,
    read_dimacs,
    sat_to_discsp,
    unique_solution_3sat,
)
from .runtime import (
    MetricsCollector,
    RandomDelayNetwork,
    RunResult,
    SynchronousNetwork,
    SynchronousSimulator,
    derive_rng,
    derive_seed,
)
from .solvers import BacktrackingSolver, DpllSolver, solve_csp

__version__ = "1.0.0"

__all__ = [
    "AbtAgent",
    "AgentView",
    "AlgorithmSpec",
    "AwcAgent",
    "BacktrackingSolver",
    "BreakoutAgent",
    "CSP",
    "CellResult",
    "CheckCounter",
    "CnfFormula",
    "ColoringInstance",
    "CostLine",
    "DisCSP",
    "Domain",
    "DpllSolver",
    "Figure2Result",
    "GenerationError",
    "Graph",
    "LearningMethod",
    "McsLearning",
    "MetricsCollector",
    "ModelError",
    "MultiVariableAwcAgent",
    "NoLearning",
    "Nogood",
    "NogoodStore",
    "RandomDelayNetwork",
    "ReproError",
    "ResolventLearning",
    "RunResult",
    "Scale",
    "SimulationError",
    "SizeBoundedResolventLearning",
    "SolverError",
    "SynchronousNetwork",
    "SynchronousSimulator",
    "Table",
    "UnsolvableError",
    "abt",
    "algorithm_by_name",
    "awc",
    "build_abt_agents",
    "build_awc_agents",
    "build_breakout_agents",
    "build_multi_awc_agents",
    "crossover_delay",
    "db",
    "derive_rng",
    "derive_seed",
    "integer_domain",
    "learning_method",
    "meeting_scheduling",
    "parse_dimacs",
    "planted_3sat",
    "random_coloring_instance",
    "read_dimacs",
    "resource_allocation",
    "run_cell",
    "run_cell_parallel",
    "run_figure2",
    "run_table",
    "run_table4",
    "run_trial",
    "sat_to_discsp",
    "solve_csp",
    "unique_solution_3sat",
    "__version__",
]
