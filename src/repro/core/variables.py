"""Variables and domains.

A variable is identified by a plain ``int``; ids double as the alphabetical
tie-break order required by the AWC priority rules (see
:mod:`repro.core.priorities`). A :class:`Domain` is an immutable, ordered
collection of hashable values. Ordering matters for reproducibility: agents
iterate domains in a fixed order, so two runs with the same seeds make
identical choices.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Tuple

from .exceptions import ModelError

#: Variables are plain integer ids.
VariableId = int

#: Values only need to be hashable (ints for colors, bools encoded as 0/1).
Value = Hashable


class Domain:
    """An immutable, ordered set of candidate values for one variable.

    Duplicates are rejected rather than silently collapsed — a duplicated
    value in a domain definition is almost always a modelling bug, and the
    algorithms' violation counts would silently skew if we kept both.
    """

    __slots__ = ("_values", "_value_set")

    def __init__(self, values: Iterable[Value]) -> None:
        ordered: Tuple[Value, ...] = tuple(values)
        if not ordered:
            raise ModelError("a domain must contain at least one value")
        unique = set(ordered)
        if len(unique) != len(ordered):
            raise ModelError(f"domain contains duplicate values: {ordered!r}")
        self._values = ordered
        self._value_set = frozenset(unique)

    @property
    def values(self) -> Tuple[Value, ...]:
        """The domain values, in definition order."""
        return self._values

    def __iter__(self) -> Iterator[Value]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Value) -> bool:
        return value in self._value_set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        return f"Domain({list(self._values)!r})"


def integer_domain(size: int) -> Domain:
    """Return the domain ``{0, 1, ..., size - 1}``.

    This is the common case: colors in graph coloring (size 3) and booleans
    in SAT encodings (size 2, with 0 = false and 1 = true).
    """
    if size <= 0:
        raise ModelError(f"domain size must be positive, got {size}")
    return Domain(range(size))


#: The boolean domain used by SAT encodings: 0 = false, 1 = true.
BOOLEAN_DOMAIN = integer_domain(2)
