"""Nogoods: the constraint representation used throughout the library.

Following Section 2.1 of the paper, a *nogood* is a set of variable-value
pairs stating that this combination is prohibited. All constraints — the
problem's initial constraints and the nogoods learned during search — use
this single representation, which is what makes nogood learning compose so
cleanly with the rest of the algorithm: a learned nogood is just a new
constraint.

A :class:`Nogood` is immutable and hashable. Hashability is load-bearing:

* the AWC completeness rule compares a freshly generated nogood with the
  previously generated one ("if the new nogood is the same ... do nothing");
* recipients must detect duplicates before recording;
* Table 4's redundant-generation accounting needs a global set of all
  nogoods ever generated.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from .exceptions import ModelError
from .variables import Value, VariableId

#: One element of a nogood.
Pair = Tuple[VariableId, Value]


class Nogood:
    """An immutable set of ``(variable, value)`` pairs that is prohibited.

    The empty nogood is allowed and meaningful: deriving it proves the
    problem has no solution (see :class:`~repro.core.exceptions.UnsolvableError`).
    """

    __slots__ = ("_pairs", "_by_var", "_variables", "_hash")

    def __init__(self, pairs: Iterable[Pair]) -> None:
        by_var: Dict[VariableId, Value] = {}
        for variable, value in pairs:
            if variable in by_var and by_var[variable] != value:
                raise ModelError(
                    f"nogood mentions variable {variable} with conflicting "
                    f"values {by_var[variable]!r} and {value!r}"
                )
            by_var[variable] = value
        self._by_var = by_var
        self._pairs: FrozenSet[Pair] = frozenset(by_var.items())
        self._variables: FrozenSet[VariableId] = frozenset(by_var)
        self._hash = hash(self._pairs)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of(cls, *pairs: Pair) -> "Nogood":
        """Build a nogood from pair arguments: ``Nogood.of((1, 0), (2, 1))``."""
        return cls(pairs)

    @classmethod
    def from_assignment(cls, assignment: Dict[VariableId, Value]) -> "Nogood":
        """Build a nogood prohibiting exactly *assignment*."""
        return cls(assignment.items())

    # -- queries ---------------------------------------------------------

    @property
    def pairs(self) -> FrozenSet[Pair]:
        """The frozen set of ``(variable, value)`` pairs."""
        return self._pairs

    @property
    def variables(self) -> FrozenSet[VariableId]:
        """The variables this nogood mentions.

        Precomputed at construction: consultation paths read this on every
        priority-key computation, and rebuilding the frozenset there was
        measurable per-message garbage (lint rule H3).
        """
        return self._variables

    def value_of(self, variable: VariableId) -> Optional[Value]:
        """The value this nogood binds *variable* to, or None if absent."""
        return self._by_var.get(variable)

    def mentions(self, variable: VariableId) -> bool:
        """True if *variable* appears in this nogood."""
        return variable in self._by_var

    def without(self, variable: VariableId) -> "Nogood":
        """A copy of this nogood with *variable*'s pair removed (if present)."""
        if variable not in self._by_var:
            return self
        return Nogood(
            (var, val) for var, val in self._by_var.items() if var != variable
        )

    def restricted_to(self, variables: Iterable[VariableId]) -> "Nogood":
        """The projection of this nogood onto *variables*."""
        keep = set(variables)
        return Nogood(
            (var, val) for var, val in self._by_var.items() if var in keep
        )

    def prohibits(self, assignment: Dict[VariableId, Value]) -> bool:
        """True if *assignment* (a total or partial map) violates this nogood.

        A nogood is violated exactly when **every** one of its pairs is
        matched by the assignment. Unassigned variables mean the nogood is
        (not yet) violated. The empty nogood is violated by everything.
        """
        for variable, value in self._by_var.items():
            if assignment.get(variable, _MISSING) != value:
                return False
        return True

    def is_subset_of(self, other: "Nogood") -> bool:
        """True if every pair of this nogood also appears in *other*."""
        return self._pairs <= other._pairs

    # -- protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_var)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Nogood):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"(x{var}={val!r})" for var, val in sorted(self._by_var.items())
        )
        return f"Nogood[{inner}]"


#: Sentinel distinct from every legal value (values must be hashable; None is
#: a legal value, so we need a private object).
_MISSING = object()


def union_nogoods(nogoods: Iterable[Nogood]) -> Nogood:
    """The union of several nogoods as a single nogood.

    Raises :class:`~repro.core.exceptions.ModelError` if two inputs bind the
    same variable to different values. The resolvent rule only ever unions
    nogoods that are all violated under one agent view, so their shared
    variables necessarily agree; a conflict here indicates a caller bug.
    """
    pairs = []
    for nogood in nogoods:
        pairs.extend(nogood.pairs)
    return Nogood(pairs)
