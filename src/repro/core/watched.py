"""The watched-pair nogood store: lazy consultation at counted-check parity.

This ports the two-watched-literal scheme of the in-repo CDCL solver
(:mod:`repro.solvers.cdcl`) from clause propagation to *nogood
consultation*. A nogood is violated only when **all** of its pairs are
matched by the agent's view, so a single unmatched pair proves it
satisfied. Each stored nogood therefore *watches* up to two currently
unmatched non-owner pairs:

* while a watch is unmatched, candidate-value scans skip the nogood
  entirely — it cannot be violated;
* when a view change matches a watched pair (reported by
  :class:`~repro.core.packed.PackedView`'s ``on_match`` hook), the nogood
  looks for a replacement watch; if none exists it becomes a *suspect* and
  joins its bucket's suspect set;
* scans evaluate only suspects, each with one bitset mask-and-compare
  (``mask & view_bits == mask``) instead of a python loop over pairs;
* a suspect whose mask test fails is *rehabilitated* lazily — fresh
  watches are installed and it leaves the suspect set until a watch fires
  again.

**Check-counting parity.** The paper counts a check whenever the reference
store would run a violation test, and ``maxcck`` is built from per-cycle
counter deltas — so the kernel must not change the *count* while changing
the *work*. Every consultation method here bumps the shared
:class:`~repro.core.store.CheckCounter` by exactly the number of tests the
dict-indexed :class:`~repro.core.store.NogoodStore` would have run for the
same query (bucket sizes, priority-filtered sizes, and the short-circuit
position for consistency scans), computed in O(1)/O(log n) from the index
— never from a scan. The golden-parity harness
(``tools/bench_smoke.py --axis store``) asserts bit-identical trial
results — solutions, cycles, ``maxcck``, message traces — across backends.

The watched index serves the one view it first sees (an agent's store
consults exactly its own view). Queries against any *other* view fall back
to the reference scan, which counts identically by construction — the
"counting parity mode" guaranteeing correctness wherever the fast path
does not apply.
"""

from __future__ import annotations

from bisect import bisect_right
from operator import attrgetter, itemgetter
from typing import Dict, List, Optional, Sequence, Tuple

from .assignment import AgentView
from .nogood import Nogood
from .packed import PackedView, PairCodec, nogood_rest_bits
from .priorities import TOP_KEY, OrderKey, nogood_priority_key, order_key
from .store import _EMPTY, CheckCounter, NogoodStore
from .variables import Value, VariableId

#: Sort/selection keys for (position, nogood) pairs and records;
#: module-level so the consultation paths allocate no closures
#: (lint rule H4).
_position_of_pair = itemgetter(0)
_position_of_record = attrgetter("position")

#: Bucket key for nogoods that do not mention the owner's variable.
_UNCONDITIONAL = object()


class _Record:
    """One stored nogood's kernel state: mask, watches, suspect flag."""

    __slots__ = (
        "nogood",
        "key",
        "position",
        "mask",
        "rest",
        "others",
        "prio_key",
        "watch_a",
        "watch_b",
        "suspect",
    )

    def __init__(
        self,
        nogood: Nogood,
        key: object,
        position: int,
        mask: int,
        rest: Tuple[int, ...],
        others: Tuple[VariableId, ...],
    ) -> None:
        self.nogood = nogood
        #: The owner-value bucket this record lives in (or _UNCONDITIONAL).
        self.key = key
        #: Index within its bucket — the reference store's scan order.
        self.position = position
        #: OR of the codec bits of every non-owner pair.
        self.mask = mask
        #: The non-owner pairs' codec bits, in deterministic order.
        self.rest = rest
        #: The nogood's non-owner variables (the key-defining members).
        self.others = others
        #: The nogood's priority key under the adopted view's current
        #: priorities; maintained incrementally by ``_refresh_keys``.
        self.prio_key: OrderKey = TOP_KEY
        self.watch_a: Optional[int] = None
        self.watch_b: Optional[int] = None
        self.suspect = False

    def __repr__(self) -> str:
        return (
            f"_Record({self.nogood!r}, watches=({self.watch_a}, "
            f"{self.watch_b}), suspect={self.suspect})"
        )


class WatchedNogoodStore(NogoodStore):
    """A :class:`NogoodStore` with bitset masks and watched-pair indexing.

    Drop-in compatible: same counted API, bit-identical results and check
    counts, but candidate-value scans touch only nogoods whose watches have
    fired instead of whole buckets. Selected via ``--store watched``.
    """

    __slots__ = (
        "_codec",
        "_packed",
        "_records_by_value",
        "_records_uncond",
        "_record_of",
        "_watchlists",
        "_suspects",
        "_suspects_uncond",
        "_sorted_keys_cache",
        "_peer_records",
        "_known_priorities",
        "_keys_priority_version",
    )

    def __init__(
        self,
        own_variable: VariableId,
        counter: Optional[CheckCounter] = None,
    ) -> None:
        super().__init__(own_variable, counter)
        self._codec = PairCodec()
        self._packed: Optional[PackedView] = None
        self._records_by_value: Dict[Value, List[_Record]] = {}
        self._records_uncond: List[_Record] = []
        #: nogood -> its kernel record, for O(1) eviction.
        self._record_of: Dict[Nogood, _Record] = {}
        #: codec bit -> records currently watching that pair. Stale entries
        #: (left behind by demotions) are dropped lazily on the next fire.
        self._watchlists: Dict[int, List[_Record]] = {}
        #: owner value -> suspect records of that bucket (dict-as-set).
        self._suspects: Dict[Value, Dict[_Record, None]] = {}
        self._suspects_uncond: Dict[_Record, None] = {}
        #: owner value -> sorted combined priority keys; used to compute
        #: the reference store's higher/lower filter counts with one bisect
        #: instead of a per-nogood key comparison. Invalidated explicitly:
        #: by add() for the touched bucket, and by _refresh_keys() for the
        #: buckets holding records whose key actually moved.
        self._sorted_keys_cache: Dict[Value, List[OrderKey]] = {}
        #: non-owner variable -> records whose nogood mentions it; the
        #: incremental key maintenance recomputes only these on a change.
        self._peer_records: Dict[VariableId, List[_Record]] = {}
        #: Priorities as of the last key refresh (zero entries omitted).
        self._known_priorities: Dict[VariableId, int] = {}
        #: The adopted view's priority_version at the last key refresh.
        self._keys_priority_version = -1

    # -- content management ------------------------------------------------

    def _index_added(self, nogood: Nogood) -> None:
        """Index the freshly stored *nogood* for watched consultation.

        Called by :meth:`NogoodStore.add` after the base structures are
        updated and *before* retention enforcement runs, so the kernel
        record exists by the time a policy may evict the nogood.
        """
        mask, rest = nogood_rest_bits(self._codec, nogood, self.own_variable)
        if self._packed is not None:
            # Fold freshly allocated codec bits (and any pending view
            # changes) into the bitset before choosing watches, and bring
            # the incremental key state up to date so the new record's key
            # is computed against refreshed priorities.
            self._packed.sync()
            self._refresh_keys(self._packed.view)
        others = tuple(
            sorted(
                variable
                for variable in nogood.variables
                if variable != self.own_variable
            )
        )
        if nogood.mentions(self.own_variable):
            own_value = nogood.value_of(self.own_variable)
            records = self._records_by_value.setdefault(own_value, [])
            record = _Record(nogood, own_value, len(records), mask, rest, others)
            self._sorted_keys_cache.pop(own_value, None)
        else:
            records = self._records_uncond
            record = _Record(
                nogood, _UNCONDITIONAL, len(records), mask, rest, others
            )
            self._sorted_keys_cache.clear()
        records.append(record)
        self._record_of[nogood] = record
        record.prio_key = self._record_key(record)
        for variable in others:
            self._peer_records.setdefault(variable, []).append(record)
        self._install_watches(record)

    def _index_removed(self, nogood: Nogood) -> None:
        """Dismantle the kernel record of an evicted *nogood*.

        Bucket positions are renumbered so they keep mirroring the
        reference store's scan order; watchlist entries are neutralized
        (marking the record suspect makes :meth:`_fire` skip them lazily,
        exactly like stale entries from demotions) rather than searched
        for and deleted eagerly.
        """
        record = self._record_of.pop(nogood)
        if record.key is _UNCONDITIONAL:
            records = self._records_uncond
            self._suspects_uncond.pop(record, None)
            self._sorted_keys_cache.clear()
        else:
            records = self._records_by_value[record.key]
            suspects = self._suspects.get(record.key)
            if suspects is not None:
                suspects.pop(record, None)
                if not suspects:
                    del self._suspects[record.key]
            self._sorted_keys_cache.pop(record.key, None)
        records.pop(record.position)
        for later in records[record.position :]:
            later.position -= 1
        if record.key is not _UNCONDITIONAL and not records:
            del self._records_by_value[record.key]
        for variable in record.others:
            peers = self._peer_records.get(variable)
            if peers is not None:
                peers.remove(record)
                if not peers:
                    del self._peer_records[variable]
        record.watch_a = None
        record.watch_b = None
        record.suspect = True

    # -- watch machinery ----------------------------------------------------

    def _install_watches(self, record: _Record) -> None:
        """Watch up to two unmatched pairs, or become a suspect.

        A single unmatched watch already proves the nogood satisfied; the
        second watch (when a second unmatched pair exists) halves how often
        view changes force a replacement search. Nogoods with no non-owner
        pairs (unary on the owner, or empty) can never hold a watch and
        stay suspects forever — they are violated whenever consulted,
        exactly like the reference scan concludes.
        """
        packed = self._packed
        first: Optional[int] = None
        second: Optional[int] = None
        for bit in record.rest:
            if packed is not None and packed.pair_matched(bit):
                continue
            if first is None:
                first = bit
            else:
                second = bit
                break
        if first is None:
            self._make_suspect(record)
            return
        record.suspect = False
        record.watch_a = first
        self._watchlists.setdefault(first, []).append(record)
        record.watch_b = second
        if second is not None:
            self._watchlists.setdefault(second, []).append(record)

    def _make_suspect(self, record: _Record) -> None:
        record.suspect = True
        record.watch_a = None
        record.watch_b = None
        if record.key is _UNCONDITIONAL:
            self._suspects_uncond[record] = None
        else:
            self._suspects.setdefault(record.key, {})[record] = None

    def _fire(self, bit: int) -> None:
        """A watched pair became matched: rewatch or demote its watchers."""
        watching = self._watchlists.get(bit)
        if not watching:
            return
        packed = self._packed
        assert packed is not None
        for record in watching:
            if record.suspect:
                continue  # stale entry from an earlier demotion
            if record.watch_a == bit:
                other = record.watch_b
            elif record.watch_b == bit:
                other = record.watch_a
            else:
                continue  # stale entry from an earlier replacement
            replacement: Optional[int] = None
            for candidate in record.rest:
                if candidate == bit or candidate == other:
                    continue
                if not packed.pair_matched(candidate):
                    replacement = candidate
                    break
            if replacement is None:
                self._make_suspect(record)
            else:
                if record.watch_a == bit:
                    record.watch_a = replacement
                else:
                    record.watch_b = replacement
                self._watchlists.setdefault(replacement, []).append(record)
        self._watchlists[bit] = []

    def _adopt_and_sync(self, view: AgentView) -> bool:
        """Sync the bitset mirror; False means *view* is not the tracked one."""
        packed = self._packed
        if packed is None:
            packed = PackedView(self._codec, view, on_match=self._fire)
            self._packed = packed
        elif packed.view is not view:
            return False
        packed.sync()
        return True

    # -- suspect evaluation -------------------------------------------------

    def _violated_bucket(self, value: Value) -> List[_Record]:
        suspects = self._suspects.get(value)
        if not suspects:
            return []
        return self._evaluate_suspects(suspects)

    def _violated_uncond(self) -> List[_Record]:
        if not self._suspects_uncond:
            return []
        return self._evaluate_suspects(self._suspects_uncond)

    def _evaluate_suspects(
        self, suspects: Dict[_Record, None]
    ) -> List[_Record]:
        """Mask-test a suspect set; rehabilitate the ones that fail."""
        packed = self._packed
        assert packed is not None
        bits = packed.bits
        violated: List[_Record] = []
        stale: List[_Record] = []
        for record in suspects:
            if record.mask & bits == record.mask:
                violated.append(record)
            else:
                stale.append(record)
        for record in stale:
            del suspects[record]
            self._install_watches(record)
        return violated

    # -- retention touch parity ---------------------------------------------
    #
    # With a use-tracking retention policy attached, the reference store
    # reports every confirmed violation through ``on_use`` in scan order
    # (bucket, then unconditional; ``is_consistent`` stops at the first).
    # The fast paths below replay the same touches from the violated
    # record sets, sorted by reference position — so eviction decisions
    # are bit-identical across backends. Without such a policy the
    # ``_track_use`` flag is False and none of this runs.

    def _touch_sorted(self, ordered: List[Tuple[int, Nogood]]) -> None:
        """Report an already position-sorted violation batch to the policy."""
        retention = self._retention
        if retention is None:
            return
        for _position, nogood in ordered:
            retention.on_use(nogood)

    def _touch_records(
        self,
        violated_bucket: Sequence[_Record],
        violated_uncond: Sequence[_Record],
        bucket_len: int,
    ) -> None:
        """Report violated records to the policy in reference scan order."""
        ordered = [
            (record.position, record.nogood) for record in violated_bucket
        ]
        ordered.extend(
            (bucket_len + record.position, record.nogood)
            for record in violated_uncond
        )
        ordered.sort(key=_position_of_pair)
        self._touch_sorted(ordered)

    def _record_key(self, record: _Record) -> OrderKey:
        """*record*'s priority key under the adopted view's priorities.

        Matches :meth:`NogoodStore.priority_key_of` exactly: the minimum
        order key over the nogood's non-owner variables, unknown variables
        at priority 0, :data:`~repro.core.priorities.TOP_KEY` when empty.
        """
        if not record.others:
            return TOP_KEY
        packed = self._packed
        if packed is None:
            # No view adopted yet: every priority reads as 0.
            return nogood_priority_key(
                (0, variable) for variable in record.others
            )
        view = packed.view
        return nogood_priority_key(
            (view.priority_of(variable), variable)
            for variable in record.others
        )

    def _refresh_keys(self, view: AgentView) -> None:
        """Bring cached record keys up to date with *view*'s priorities.

        Priorities move on backtracks only, so this is a no-op on the hot
        path (one integer compare). When the version did move, only the
        records mentioning a variable whose priority *actually changed*
        recompute their key — the incremental analogue of the reference
        store's per-version key cache.
        """
        version = view.priority_version
        if version == self._keys_priority_version:
            return
        self._keys_priority_version = version
        known = self._known_priorities
        touched: List[_Record] = []
        touched_buckets = set()
        for variable, records in self._peer_records.items():
            current = view.priority_of(variable)
            if known.get(variable, 0) == current:
                continue
            if current:
                known[variable] = current
            else:
                known.pop(variable, None)
            touched.extend(records)
        for record in touched:
            record.prio_key = self._record_key(record)
            touched_buckets.add(record.key)
        if _UNCONDITIONAL in touched_buckets:
            self._sorted_keys_cache.clear()
        else:
            for value in touched_buckets:
                self._sorted_keys_cache.pop(value, None)

    def _sorted_combined_keys(self, value: Value) -> List[OrderKey]:
        """Sorted priority keys of ``for_value(value)``, cached per bucket."""
        keys = self._sorted_keys_cache.get(value)
        if keys is None:
            keys = [
                record.prio_key
                for record in self._records_by_value.get(value, ())
            ]
            keys.extend(
                record.prio_key for record in self._records_uncond
            )
            keys.sort()
            self._sorted_keys_cache[value] = keys
        return keys

    def _bucket_len(self, value: Value) -> int:
        return len(self._by_value.get(value, _EMPTY))

    # -- counted consultation (fast paths) ----------------------------------

    def count_violated(self, view: AgentView, own_value: Value) -> int:
        """How many stored nogoods are violated with the owner at *own_value*."""
        if not self._adopt_and_sync(view):
            return super().count_violated(view, own_value)
        bucket_len = self._bucket_len(own_value)
        self.counter.bump(bucket_len + len(self._unconditional))
        violated_bucket = self._violated_bucket(own_value)
        violated_uncond = self._violated_uncond()
        if self._track_use:
            self._touch_records(violated_bucket, violated_uncond, bucket_len)
        return len(violated_bucket) + len(violated_uncond)

    def violated(self, view: AgentView, own_value: Value) -> List[Nogood]:
        """All violated nogoods, in the reference store's scan order."""
        if not self._adopt_and_sync(view):
            return super().violated(view, own_value)
        bucket_len = self._bucket_len(own_value)
        self.counter.bump(bucket_len + len(self._unconditional))
        ordered = [
            (record.position, record.nogood)
            for record in self._violated_bucket(own_value)
        ]
        ordered.extend(
            (bucket_len + record.position, record.nogood)
            for record in self._violated_uncond()
        )
        ordered.sort(key=_position_of_pair)
        if self._track_use:
            self._touch_sorted(ordered)
        return [nogood for _position, nogood in ordered]

    def is_consistent(self, view: AgentView, own_value: Value) -> bool:
        """True when nothing is violated; counts the short-circuit prefix."""
        if not self._adopt_and_sync(view):
            return super().is_consistent(view, own_value)
        bucket_len = self._bucket_len(own_value)
        total = bucket_len + len(self._unconditional)
        violated_bucket = self._violated_bucket(own_value)
        if violated_bucket:
            first_record = min(
                violated_bucket, key=_position_of_record
            )
            first = first_record.position
        else:
            violated_uncond = self._violated_uncond()
            if violated_uncond:
                first_record = min(
                    violated_uncond, key=_position_of_record
                )
                first = bucket_len + first_record.position
            else:
                self.counter.bump(total)
                return True
        # The reference scan stops at the first violated nogood, having
        # tested everything up to and including it — and touches only that
        # first violation.
        if self._track_use and self._retention is not None:
            self._retention.on_use(first_record.nogood)
        self.counter.bump(first + 1)
        return False

    def violated_higher(
        self,
        view: AgentView,
        own_value: Value,
        own_priority: int,
    ) -> List[Nogood]:
        """The violated higher nogoods, in the reference store's scan order.

        The reference runs one counted test per *higher* nogood in the
        bucket (lower ones are filtered by priority, uncounted); the bisect
        over the sorted key list reproduces that count without a scan.
        """
        if not self._adopt_and_sync(view):
            return super().violated_higher(view, own_value, own_priority)
        self._refresh_keys(view)
        my_key = order_key(own_priority, self.own_variable)
        keys = self._sorted_combined_keys(own_value)
        higher = len(keys) - bisect_right(keys, my_key)
        self.counter.bump(higher)
        if higher == 0:
            return []
        bucket_len = self._bucket_len(own_value)
        ordered = [
            (record.position, record.nogood)
            for record in self._violated_bucket(own_value)
            if record.prio_key > my_key
        ]
        ordered.extend(
            (bucket_len + record.position, record.nogood)
            for record in self._violated_uncond()
            if record.prio_key > my_key
        )
        ordered.sort(key=_position_of_pair)
        if self._track_use:
            self._touch_sorted(ordered)
        return [nogood for _position, nogood in ordered]

    def count_violated_higher(
        self,
        view: AgentView,
        own_value: Value,
        own_priority: int,
    ) -> int:
        """How many higher nogoods are violated with the owner at *own_value*.

        Counter bumps match :meth:`violated_higher` bump for bump (the same
        bisect over the sorted key list); without a use-tracking retention
        policy the count comes straight off the violated record sets with
        no list built at all. With one, the records are ordered and touched
        exactly as the returned list would have been.
        """
        if not self._adopt_and_sync(view):
            return super().count_violated_higher(
                view, own_value, own_priority
            )
        self._refresh_keys(view)
        my_key = order_key(own_priority, self.own_variable)
        keys = self._sorted_combined_keys(own_value)
        higher = len(keys) - bisect_right(keys, my_key)
        self.counter.bump(higher)
        if higher == 0:
            return 0
        if not self._track_use:
            count = 0
            for record in self._violated_bucket(own_value):
                if record.prio_key > my_key:
                    count += 1
            for record in self._violated_uncond():
                if record.prio_key > my_key:
                    count += 1
            return count
        higher_bucket = [
            record
            for record in self._violated_bucket(own_value)
            if record.prio_key > my_key
        ]
        higher_uncond = [
            record
            for record in self._violated_uncond()
            if record.prio_key > my_key
        ]
        self._touch_records(
            higher_bucket, higher_uncond, self._bucket_len(own_value)
        )
        return len(higher_bucket) + len(higher_uncond)

    def count_violated_lower(
        self,
        view: AgentView,
        own_value: Value,
        own_priority: int,
    ) -> int:
        """How many lower nogoods are violated with the owner at *own_value*."""
        if not self._adopt_and_sync(view):
            return super().count_violated_lower(view, own_value, own_priority)
        self._refresh_keys(view)
        my_key = order_key(own_priority, self.own_variable)
        keys = self._sorted_combined_keys(own_value)
        lower = bisect_right(keys, my_key)
        self.counter.bump(lower)
        if lower == 0:
            return 0
        lower_bucket = [
            record
            for record in self._violated_bucket(own_value)
            if record.prio_key <= my_key
        ]
        lower_uncond = [
            record
            for record in self._violated_uncond()
            if record.prio_key <= my_key
        ]
        if self._track_use:
            self._touch_records(
                lower_bucket, lower_uncond, self._bucket_len(own_value)
            )
        return len(lower_bucket) + len(lower_uncond)

    # -- counted batch consultation -----------------------------------------
    #
    # The base class implements the batch entry points by looping the
    # single-value methods, which re-syncs the bitset mirror, re-checks the
    # key freshness, and re-evaluates the unconditional suspects once per
    # candidate value. One ``ok?`` wave scans every candidate against the
    # same frozen view, so all of that is loop-invariant: do it once per
    # batch. The counter bumps are per value and identical to the base
    # loop's, so parity is preserved bump for bump.

    def violated_higher_batch(
        self,
        view: AgentView,
        values: Sequence[Value],
        own_priority: int,
    ) -> List[List[Nogood]]:
        if not self._adopt_and_sync(view):
            return super().violated_higher_batch(view, values, own_priority)
        self._refresh_keys(view)
        my_key = order_key(own_priority, self.own_variable)
        violated_uncond = self._violated_uncond()
        results: List[List[Nogood]] = []
        for own_value in values:
            keys = self._sorted_combined_keys(own_value)
            higher = len(keys) - bisect_right(keys, my_key)
            self.counter.bump(higher)
            if higher == 0:
                results.append([])
                continue
            bucket_len = self._bucket_len(own_value)
            ordered = [
                (record.position, record.nogood)
                for record in self._violated_bucket(own_value)
                if record.prio_key > my_key
            ]
            ordered.extend(
                (bucket_len + record.position, record.nogood)
                for record in violated_uncond
                if record.prio_key > my_key
            )
            ordered.sort(key=_position_of_pair)
            if self._track_use:
                self._touch_sorted(ordered)
            results.append([nogood for _position, nogood in ordered])
        return results

    def count_violated_higher_batch(
        self,
        view: AgentView,
        values: Sequence[Value],
        own_priority: int,
    ) -> List[int]:
        if not self._adopt_and_sync(view):
            return super().count_violated_higher_batch(
                view, values, own_priority
            )
        self._refresh_keys(view)
        my_key = order_key(own_priority, self.own_variable)
        violated_uncond = self._violated_uncond()
        uncond_higher = 0
        for record in violated_uncond:
            if record.prio_key > my_key:
                uncond_higher += 1
        results: List[int] = []
        for own_value in values:
            keys = self._sorted_combined_keys(own_value)
            higher = len(keys) - bisect_right(keys, my_key)
            self.counter.bump(higher)
            if higher == 0:
                results.append(0)
                continue
            if not self._track_use:
                count = uncond_higher
                for record in self._violated_bucket(own_value):
                    if record.prio_key > my_key:
                        count += 1
                results.append(count)
                continue
            bucket_len = self._bucket_len(own_value)
            ordered = [
                (record.position, record.nogood)
                for record in self._violated_bucket(own_value)
                if record.prio_key > my_key
            ]
            ordered.extend(
                (bucket_len + record.position, record.nogood)
                for record in violated_uncond
                if record.prio_key > my_key
            )
            ordered.sort(key=_position_of_pair)
            self._touch_sorted(ordered)
            results.append(len(ordered))
        return results

    def count_violated_lower_batch(
        self,
        view: AgentView,
        values: Sequence[Value],
        own_priority: int,
    ) -> List[int]:
        if not self._adopt_and_sync(view):
            return super().count_violated_lower_batch(
                view, values, own_priority
            )
        self._refresh_keys(view)
        my_key = order_key(own_priority, self.own_variable)
        lower_uncond = [
            record
            for record in self._violated_uncond()
            if record.prio_key <= my_key
        ]
        results: List[int] = []
        for own_value in values:
            keys = self._sorted_combined_keys(own_value)
            lower = bisect_right(keys, my_key)
            self.counter.bump(lower)
            if lower == 0:
                results.append(0)
                continue
            lower_bucket = [
                record
                for record in self._violated_bucket(own_value)
                if record.prio_key <= my_key
            ]
            if self._track_use:
                self._touch_records(
                    lower_bucket, lower_uncond, self._bucket_len(own_value)
                )
            results.append(len(lower_bucket) + len(lower_uncond))
        return results

    def count_violated_batch(
        self, view: AgentView, values: Sequence[Value]
    ) -> List[int]:
        if not self._adopt_and_sync(view):
            return super().count_violated_batch(view, values)
        violated_uncond = self._violated_uncond()
        uncond_total = len(self._unconditional)
        results: List[int] = []
        for own_value in values:
            bucket_len = self._bucket_len(own_value)
            self.counter.bump(bucket_len + uncond_total)
            violated_bucket = self._violated_bucket(own_value)
            if self._track_use:
                self._touch_records(
                    violated_bucket, violated_uncond, bucket_len
                )
            results.append(len(violated_bucket) + len(violated_uncond))
        return results

    def violated_batch(
        self, view: AgentView, values: Sequence[Value]
    ) -> List[List[Nogood]]:
        if not self._adopt_and_sync(view):
            return super().violated_batch(view, values)
        violated_uncond = self._violated_uncond()
        uncond_total = len(self._unconditional)
        results: List[List[Nogood]] = []
        for own_value in values:
            bucket_len = self._bucket_len(own_value)
            self.counter.bump(bucket_len + uncond_total)
            ordered = [
                (record.position, record.nogood)
                for record in self._violated_bucket(own_value)
            ]
            ordered.extend(
                (bucket_len + record.position, record.nogood)
                for record in violated_uncond
            )
            ordered.sort(key=_position_of_pair)
            if self._track_use:
                self._touch_sorted(ordered)
            results.append([nogood for _position, nogood in ordered])
        return results

    # -- introspection (for tests and benchmarks) ---------------------------

    def suspect_count(self) -> int:
        """How many records are currently suspects (hot set size)."""
        return len(self._suspects_uncond) + sum(
            len(bucket) for bucket in self._suspects.values()
        )

    def codec_width(self) -> int:
        """How many distinct pairs have been assigned bits."""
        return len(self._codec)
