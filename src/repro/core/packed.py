"""Bitset encodings of views and nogoods — the kernel's data layer.

The nogood check of the paper is a conjunction test: a nogood is violated
iff every one of its ``(variable, value)`` pairs is matched by the agent's
current knowledge. The pure-python reference implementation walks the pairs
with dict lookups; this module turns the same test into one machine
operation by encoding *pairs as bits*:

* a :class:`PairCodec` assigns each distinct pair a bit position the first
  time it is seen (append-only, so masks never need re-encoding);
* a nogood becomes a *mask* — the OR of its pairs' bits;
* an agent view becomes a bitset holding one bit per pair it currently
  matches (:class:`PackedView`), kept in sync with the mutable
  :class:`~repro.core.assignment.AgentView` incrementally via its change
  counters;
* "is this nogood violated?" becomes ``mask & bits == mask``.

With the paper's small domains the whole codec fits in one or two machine
words; beyond that Python ints degrade gracefully into bignums. The
:class:`~repro.core.watched.WatchedNogoodStore` builds its watched-pair
index on top of these bits; the codec and packed view are independently
reusable (e.g. for batch candidate evaluation).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .assignment import AgentView
from .nogood import Nogood
from .variables import Value, VariableId

#: One element of a nogood / one view fact: ``(variable, value)``.
Pair = Tuple[VariableId, Value]

#: Sentinel distinct from every legal value (None is a legal value).
_ABSENT = object()


class PairCodec:
    """An append-only mapping from ``(variable, value)`` pairs to bit masks.

    Bits are allocated on first use, so the codec only spends width on
    pairs that actually occur in stored nogoods — view facts about pairs no
    nogood mentions never allocate a bit (they cannot influence any
    violation test).
    """

    __slots__ = ("_bit_index", "_masks")

    def __init__(self) -> None:
        self._bit_index: Dict[Pair, int] = {}
        self._masks: Dict[Pair, int] = {}

    def __len__(self) -> int:
        return len(self._bit_index)

    def mask_of(self, pair: Pair) -> int:
        """The single-bit mask for *pair*, allocating a bit if it is new."""
        mask = self._masks.get(pair)
        if mask is None:
            index = len(self._bit_index)
            self._bit_index[pair] = index
            mask = 1 << index
            self._masks[pair] = mask
        return mask

    def peek(self, pair: Pair) -> Optional[int]:
        """The mask for *pair* if it already has a bit, else None."""
        return self._masks.get(pair)

    def bit_of(self, pair: Pair) -> int:
        """The bit index for *pair*, allocating if new."""
        self.mask_of(pair)
        return self._bit_index[pair]

    def encode(
        self,
        pairs: Iterable[Pair],
        skip_variable: Optional[VariableId] = None,
    ) -> int:
        """The OR-mask of *pairs*, allocating bits as needed.

        ``skip_variable`` omits pairs binding that variable — used to
        encode a nogood's *rest mask* (everything but the owner's pair,
        which the per-value bucket already fixes).
        """
        mask = 0
        for pair in pairs:
            if skip_variable is not None and pair[0] == skip_variable:
                continue
            mask |= self.mask_of(pair)
        return mask


def encode_assignment(
    codec: PairCodec, assignment: Dict[VariableId, Value]
) -> int:
    """Encode a plain assignment dict as a view bitset (allocating bits)."""
    mask = 0
    for variable, value in assignment.items():
        mask |= codec.mask_of((variable, value))
    return mask


class PackedView:
    """An integer-bitset mirror of one :class:`AgentView`.

    ``bits`` has the codec bit of every pair the view currently matches.
    :meth:`sync` is O(1) when the view has not changed (the common case
    between two candidate-value scans) and O(changed entries) otherwise,
    driven by the view's ``version``/``removals`` counters. Pairs *becoming*
    matched are reported through the optional ``on_match`` callback — the
    hook the watched-pair index uses to fire watches.

    The mirror also tracks codec growth: a nogood added after the view last
    changed may allocate bits for pairs the view already matches; those
    bits are folded in without firing ``on_match`` (no watch can predate
    the bit it would watch).
    """

    __slots__ = (
        "codec",
        "view",
        "bits",
        "on_match",
        "_shadow",
        "_synced_version",
        "_synced_removals",
        "_synced_codec_size",
    )

    def __init__(
        self,
        codec: PairCodec,
        view: AgentView,
        on_match: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.codec = codec
        self.view = view
        self.bits = 0
        self.on_match = on_match
        #: The view contents the bits currently reflect.
        self._shadow: Dict[VariableId, Value] = {}
        self._synced_version = -1
        self._synced_removals = view.removals
        self._synced_codec_size = len(codec)

    def matches(self, mask: int) -> bool:
        """True when every bit of *mask* is set (i.e. every pair matched)."""
        return mask & self.bits == mask

    def pair_matched(self, bit: int) -> bool:
        """True when the pair at codec *bit* is matched by the view."""
        return bool((self.bits >> bit) & 1)

    def sync(self) -> None:
        """Bring ``bits`` up to date with the view (and codec growth)."""
        codec = self.codec
        view = self.view
        if len(codec) != self._synced_codec_size:
            # New bits may exist for pairs already in the shadow; fold them
            # in silently (see class docstring).
            for variable, value in self._shadow.items():
                mask = codec.peek((variable, value))
                if mask is not None:
                    self.bits |= mask
            self._synced_codec_size = len(codec)
        if view.version == self._synced_version:
            return
        shadow = self._shadow
        peek = codec.peek
        fired: List[int] = []
        for variable, value in view.items():
            old = shadow.get(variable, _ABSENT)
            if old is value or old == value:
                continue
            if old is not _ABSENT:
                old_mask = peek((variable, old))
                if old_mask is not None:
                    self.bits &= ~old_mask
            shadow[variable] = value
            mask = peek((variable, value))
            if mask is not None:
                self.bits |= mask
                fired.append(mask.bit_length() - 1)
        if view.removals != self._synced_removals:
            gone = [var for var in shadow if not view.knows(var)]
            for variable in gone:
                old_mask = peek((variable, shadow.pop(variable)))
                if old_mask is not None:
                    self.bits &= ~old_mask
            self._synced_removals = view.removals
        self._synced_version = view.version
        if self.on_match is not None:
            for bit in fired:
                self.on_match(bit)

    def __repr__(self) -> str:
        return (
            f"PackedView({len(self._shadow)} vars, "
            f"{bin(self.bits) if self.bits < 2 ** 32 else '<bignum>'})"
        )


def _pair_order(pair: Tuple[VariableId, Value]) -> Tuple[VariableId, str]:
    """Deterministic (variable id, value repr) order for nogood pairs.

    Module-level (not a lambda at the ``sorted()`` call) so encoding a
    nogood allocates no closure (lint rule H4).
    """
    return (pair[0], repr(pair[1]))


def nogood_rest_bits(
    codec: PairCodec, nogood: Nogood, own_variable: VariableId
) -> Tuple[int, Tuple[int, ...]]:
    """Encode a nogood for consultation: ``(rest_mask, rest_bit_indices)``.

    The *rest* is every pair not binding ``own_variable`` — the owner's own
    pair is implied by the store bucket the nogood lives in. Bit indices
    come back in a deterministic order (sorted by variable id, then value
    repr) so watch selection is reproducible run to run.
    """
    rest_pairs = sorted(
        (pair for pair in nogood.pairs if pair[0] != own_variable),
        key=_pair_order,
    )
    bits = tuple(codec.bit_of(pair) for pair in rest_pairs)
    mask = 0
    for bit in bits:
        mask |= 1 << bit
    return mask, bits
