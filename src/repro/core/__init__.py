"""Core model: variables, domains, nogoods, agent views, priorities, problems.

This package defines the vocabulary shared by every other part of the
library. Import the common names directly from here::

    from repro.core import CSP, DisCSP, Domain, Nogood, NogoodStore
"""

from .assignment import AgentView, ViewEntry, merge_assignments
from .exceptions import (
    GenerationError,
    ModelError,
    ReproError,
    SimulationError,
    SolverError,
    UnsolvableError,
)
from .nogood import Nogood, Pair, union_nogoods
from .priorities import (
    TOP_KEY,
    OrderKey,
    nogood_priority_key,
    order_key,
    outranks,
)
from .packed import PackedView, PairCodec, encode_assignment, nogood_rest_bits
from .problem import CSP, AgentId, DisCSP, random_assignment
from .store import (
    STORE_BACKENDS,
    CheckCounter,
    LinearNogoodStore,
    NogoodStore,
    store_class_by_name,
)
from .watched import WatchedNogoodStore
from .variables import (
    BOOLEAN_DOMAIN,
    Domain,
    Value,
    VariableId,
    integer_domain,
)

__all__ = [
    "AgentId",
    "AgentView",
    "BOOLEAN_DOMAIN",
    "CSP",
    "CheckCounter",
    "DisCSP",
    "Domain",
    "GenerationError",
    "LinearNogoodStore",
    "ModelError",
    "Nogood",
    "NogoodStore",
    "OrderKey",
    "PackedView",
    "Pair",
    "PairCodec",
    "ReproError",
    "STORE_BACKENDS",
    "SimulationError",
    "SolverError",
    "TOP_KEY",
    "UnsolvableError",
    "Value",
    "VariableId",
    "ViewEntry",
    "WatchedNogoodStore",
    "encode_assignment",
    "integer_domain",
    "merge_assignments",
    "nogood_priority_key",
    "nogood_rest_bits",
    "order_key",
    "outranks",
    "random_assignment",
    "store_class_by_name",
    "union_nogoods",
]
