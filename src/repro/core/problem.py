"""Problem models: centralized CSPs and distributed CSPs.

A :class:`CSP` is the classical object — variables with finite domains plus
a set of nogoods. A :class:`DisCSP` wraps a CSP with an ownership map from
variables to agents (Section 2.1 of the paper: "a distributed CSP is a CSP
where variables and nogoods are distributed among multiple agents"). Each
agent's local problem consists of its own variables and *all nogoods
relevant to them*, including inter-agent nogoods — exactly the paper's
assumption — so the local view is derived, not stored separately.

The distribution of a DisCSP is part of the problem statement, not a solving
strategy: the paper is explicit that a distributed CSP must not be confused
with solving a CSP in a distributed manner.
"""

from __future__ import annotations

import random
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
        Tuple,
)

from .exceptions import ModelError
from .nogood import Nogood
from .variables import Domain, Value, VariableId

#: Agents are plain integer ids, like variables.
AgentId = int


class CSP:
    """A constraint satisfaction problem over nogood constraints."""

    __slots__ = ("_domains", "_variables", "_nogoods", "_by_variable")

    def __init__(
        self,
        domains: Mapping[VariableId, Domain],
        nogoods: Iterable[Nogood],
    ) -> None:
        if not domains:
            raise ModelError("a CSP needs at least one variable")
        self._domains: Dict[VariableId, Domain] = dict(domains)
        self._variables: Tuple[VariableId, ...] = tuple(sorted(self._domains))
        self._nogoods: Tuple[Nogood, ...] = tuple(nogoods)
        self._by_variable: Dict[VariableId, List[Nogood]] = {
            variable: [] for variable in self._variables
        }
        for nogood in self._nogoods:
            for variable in nogood.variables:
                if variable not in self._domains:
                    raise ModelError(
                        f"nogood {nogood!r} mentions undeclared variable "
                        f"{variable}"
                    )
                if nogood.value_of(variable) not in self._domains[variable]:
                    raise ModelError(
                        f"nogood {nogood!r} binds x{variable} to a value "
                        f"outside its domain"
                    )
                self._by_variable[variable].append(nogood)

    # -- structure ---------------------------------------------------------

    @property
    def variables(self) -> Tuple[VariableId, ...]:
        """All variable ids, ascending."""
        return self._variables

    @property
    def nogoods(self) -> Tuple[Nogood, ...]:
        """All constraints, in definition order."""
        return self._nogoods

    def domain_of(self, variable: VariableId) -> Domain:
        """The domain of *variable*."""
        try:
            return self._domains[variable]
        except KeyError:
            raise ModelError(f"unknown variable {variable}") from None

    def relevant_nogoods(self, variable: VariableId) -> Tuple[Nogood, ...]:
        """The nogoods mentioning *variable*, in definition order."""
        if variable not in self._by_variable:
            raise ModelError(f"unknown variable {variable}")
        return tuple(self._by_variable[variable])

    def neighbors_of(self, variable: VariableId) -> FrozenSet[VariableId]:
        """Variables sharing at least one nogood with *variable*."""
        linked = set()
        for nogood in self._by_variable[variable]:
            linked.update(nogood.variables)
        linked.discard(variable)
        return frozenset(linked)

    # -- semantics ---------------------------------------------------------

    def is_complete(self, assignment: Mapping[VariableId, Value]) -> bool:
        """True if *assignment* assigns every variable an in-domain value."""
        for variable in self._variables:
            if variable not in assignment:
                return False
            if assignment[variable] not in self._domains[variable]:
                return False
        return True

    def violated_nogoods(
        self, assignment: Mapping[VariableId, Value]
    ) -> List[Nogood]:
        """The nogoods violated by *assignment* (which may be partial)."""
        plain = dict(assignment)
        return [nogood for nogood in self._nogoods if nogood.prohibits(plain)]

    def is_solution(self, assignment: Mapping[VariableId, Value]) -> bool:
        """True if *assignment* is complete, in-domain, and violates nothing."""
        if not self.is_complete(assignment):
            return False
        plain = dict(assignment)
        return not any(nogood.prohibits(plain) for nogood in self._nogoods)

    def __repr__(self) -> str:
        return (
            f"CSP({len(self._variables)} variables, "
            f"{len(self._nogoods)} nogoods)"
        )


class DisCSP:
    """A CSP whose variables (and their relevant nogoods) belong to agents.

    The common case — one variable per agent, agent id equal to variable
    id — is built with :meth:`one_variable_per_agent`. The general
    constructor accepts any ownership map and supports the multi-variable
    extension of Section 5.
    """

    __slots__ = ("_csp", "_owner", "_agents", "_variables_of")

    def __init__(
        self,
        csp: CSP,
        owner: Mapping[VariableId, AgentId],
    ) -> None:
        missing = set(csp.variables) - set(owner)
        if missing:
            raise ModelError(f"variables without an owner: {sorted(missing)}")
        extra = set(owner) - set(csp.variables)
        if extra:
            raise ModelError(
                f"ownership map mentions unknown variables: {sorted(extra)}"
            )
        self._csp = csp
        self._owner: Dict[VariableId, AgentId] = dict(owner)
        variables_of: Dict[AgentId, List[VariableId]] = {}
        for variable in csp.variables:
            variables_of.setdefault(self._owner[variable], []).append(variable)
        self._variables_of: Dict[AgentId, Tuple[VariableId, ...]] = {
            agent: tuple(variables)
            for agent, variables in variables_of.items()
        }
        self._agents: Tuple[AgentId, ...] = tuple(sorted(self._variables_of))

    @classmethod
    def one_variable_per_agent(
        cls,
        domains: Mapping[VariableId, Domain],
        nogoods: Iterable[Nogood],
    ) -> "DisCSP":
        """Build the paper's standard setting: agent *i* owns variable *i*."""
        csp = CSP(domains, nogoods)
        return cls(csp, {variable: variable for variable in csp.variables})

    @classmethod
    def from_csp(
        cls, csp: CSP, owner: Optional[Mapping[VariableId, AgentId]] = None
    ) -> "DisCSP":
        """Distribute an existing CSP (default: one variable per agent)."""
        if owner is None:
            owner = {variable: variable for variable in csp.variables}
        return cls(csp, owner)

    # -- structure -----------------------------------------------------------

    @property
    def csp(self) -> CSP:
        """The underlying global CSP."""
        return self._csp

    @property
    def agents(self) -> Tuple[AgentId, ...]:
        """All agent ids, ascending."""
        return self._agents

    @property
    def variables(self) -> Tuple[VariableId, ...]:
        """All variable ids, ascending."""
        return self._csp.variables

    def owner_of(self, variable: VariableId) -> AgentId:
        """The agent that owns *variable*."""
        try:
            return self._owner[variable]
        except KeyError:
            raise ModelError(f"unknown variable {variable}") from None

    def variables_of(self, agent: AgentId) -> Tuple[VariableId, ...]:
        """The variables owned by *agent*."""
        try:
            return self._variables_of[agent]
        except KeyError:
            raise ModelError(f"unknown agent {agent}") from None

    def relevant_nogoods(self, variable: VariableId) -> Tuple[Nogood, ...]:
        """The nogoods mentioning *variable*, in definition order.

        The variable→constraint adjacency of the global CSP, exposed on the
        distributed problem so observers (e.g. the incremental solution
        detector) can re-evaluate only the constraints a value change can
        affect.
        """
        return self._csp.relevant_nogoods(variable)

    def local_nogoods(self, agent: AgentId) -> Tuple[Nogood, ...]:
        """All nogoods relevant to *agent*: those mentioning its variables.

        Inter-agent nogoods appear in the local set of every endpoint agent,
        per the paper's assumption that each local problem "includes all
        nogoods that are relevant to variables in P_i". Nogoods touching
        several of the agent's own variables are reported once.
        """
        seen = set()
        ordered: List[Nogood] = []
        for variable in self.variables_of(agent):
            for nogood in self._csp.relevant_nogoods(variable):
                if nogood not in seen:
                    seen.add(nogood)
                    ordered.append(nogood)
        return tuple(ordered)

    def neighbors_of(self, agent: AgentId) -> FrozenSet[AgentId]:
        """Agents sharing at least one nogood with *agent*."""
        linked = set()
        for nogood in self.local_nogoods(agent):
            for variable in nogood.variables:
                linked.add(self._owner[variable])
        linked.discard(agent)
        return frozenset(linked)

    def is_one_variable_per_agent(self) -> bool:
        """True if every agent owns exactly one variable."""
        return all(
            len(variables) == 1 for variables in self._variables_of.values()
        )

    # -- semantics -----------------------------------------------------------

    def is_solution(self, assignment: Mapping[VariableId, Value]) -> bool:
        """True if *assignment* solves the global CSP."""
        return self._csp.is_solution(assignment)

    def violated_nogoods(
        self, assignment: Mapping[VariableId, Value]
    ) -> List[Nogood]:
        """The globally violated nogoods under *assignment*."""
        return self._csp.violated_nogoods(assignment)

    def __repr__(self) -> str:
        return (
            f"DisCSP({len(self._agents)} agents, "
            f"{len(self.variables)} variables, "
            f"{len(self._csp.nogoods)} nogoods)"
        )


def random_assignment(
    problem: CSP, rng: "random.Random"
) -> Dict[VariableId, Value]:
    """Draw a uniform random complete assignment for *problem* using *rng*."""
    return {
        variable: rng.choice(problem.domain_of(variable).values)
        for variable in problem.variables
    }
