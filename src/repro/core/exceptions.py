"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch one base class. The sub-classes separate modelling mistakes (bad
problem definitions) from runtime conditions (an algorithm proving a problem
unsolvable, a simulation exceeding its cycle cap).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A problem definition is malformed.

    Raised when building variables, domains, nogoods, or problems from
    inconsistent inputs (e.g. an empty domain, a nogood mentioning a variable
    twice with different values, an agent owning an unknown variable).
    """


class GenerationError(ReproError):
    """A problem generator could not produce a valid instance.

    Raised for infeasible parameters (e.g. asking for more distinct arcs than
    a planted partition allows) or when an iterative generator exceeds its
    work bound.
    """


class UnsolvableError(ReproError):
    """An algorithm derived the empty nogood: the problem has no solution.

    Distributed algorithms that record all nogoods (AWC with unrestricted
    learning, ABT) are complete; deriving an empty nogood is their proof of
    insolubility. The simulator converts this into a terminated
    :class:`~repro.runtime.simulator.RunResult` rather than letting it
    propagate to callers.
    """

    def __init__(self, agent_id: int, message: str = "") -> None:
        detail = message or f"agent {agent_id} derived the empty nogood"
        super().__init__(detail)
        self.agent_id = agent_id


class SimulationError(ReproError):
    """The simulator was driven into an invalid state.

    This signals a bug or misuse (e.g. an agent sending a message to an
    unknown recipient), never a normal outcome like hitting the cycle cap.
    """


class SolverError(ReproError):
    """A centralized solver was used outside its supported inputs."""
