"""Per-agent nogood storage with the paper's cost accounting built in.

The paper's computational cost measure is the *nogood check*: every test of
"is this nogood violated under the current view?" counts as one check, and
``maxcck`` sums, over cycles, the per-cycle maximum of this count across
agents. To make that measure impossible to get wrong, every violation test
goes through :meth:`NogoodStore.is_violated`, which bumps a shared
:class:`CheckCounter` that the metrics layer samples once per cycle.

The store indexes nogoods by the value they bind the *owner's* variable to.
In the one-variable-per-agent setting every nogood relevant to agent *i*
mentions ``x_i`` (initial constraints do by construction; learned nogoods are
only sent to agents whose variable they mention), so testing a candidate
value ``d`` touches only the bucket for ``d``. Nogoods that do not mention
the owner (possible in multi-variable extensions) land in an unconditional
bucket consulted for every candidate.

Three interchangeable backends share this counted API (selected by the
``--store`` axis of the experiment harness, see
:func:`store_class_by_name`):

* :class:`NogoodStore` — the default dict/bucket index;
* :class:`LinearNogoodStore` — the unindexed ablation baseline;
* :class:`~repro.core.watched.WatchedNogoodStore` — the bitset kernel with
  watched-pair indexing (lazy consultation, identical counting).
"""

from __future__ import annotations

import weakref
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterator,
    List,
    NoReturn,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from .assignment import AgentView
from .exceptions import ModelError
from .nogood import Nogood
from .priorities import TOP_KEY, OrderKey, order_key
from .variables import Value, VariableId

if TYPE_CHECKING:  # retention imports core at runtime, not vice versa
    from ..retention.interner import NogoodInterner
    from ..retention.policy import RetentionPolicy


class CheckCounter:
    """A monotonically increasing count of nogood checks.

    One counter is shared between an agent's store and the metrics
    collector; the collector snapshots ``total`` at cycle boundaries and
    works with deltas.
    """

    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = 0

    def bump(self, amount: int = 1) -> None:
        """Record *amount* nogood checks."""
        self.total += amount

    def __repr__(self) -> str:
        return f"CheckCounter(total={self.total})"


class ReadOnlyBucket(List[Nogood]):
    """A list whose public mutators are disabled.

    :meth:`NogoodStore.for_value` hands out its internal per-value buckets
    directly on the hot path (copying them would cost O(bucket) per
    candidate-value scan). Making the buckets read-only guarantees a caller
    cannot corrupt the store's index through the returned reference; the
    store itself mutates buckets via ``list.append`` (the only sanctioned
    escape hatch). Iteration and indexing remain plain C-speed list
    operations.
    """

    __slots__ = ()

    def _refuse(self, *args: object, **kwargs: object) -> "NoReturn":
        raise TypeError(
            "NogoodStore buckets are read-only; add nogoods via "
            "NogoodStore.add()"
        )

    append = extend = insert = remove = pop = clear = _refuse
    sort = reverse = __setitem__ = __delitem__ = __iadd__ = __imul__ = _refuse


class _KeyCache:
    """One view's memoized priority keys, valid for one priority version."""

    __slots__ = ("version", "keys")

    def __init__(self, version: int) -> None:
        self.version = version
        self.keys: Dict[Nogood, OrderKey] = {}


class NogoodStore:
    """All nogoods relevant to one agent, indexed by the owner's value.

    The store deduplicates: :meth:`add` returns False for a nogood already
    present, and subsumed duplicates are *not* removed (the paper's
    algorithms do not prune subsumed nogoods; their cost shows up in
    ``maxcck`` exactly as it should).
    """

    __slots__ = (
        "own_variable",
        "counter",
        "_by_value",
        "_unconditional",
        "_all",
        "_insertion",
        "_combined_cache",
        "_key_caches",
        "key_cache_hits",
        "key_cache_misses",
        "_retention",
        "_track_use",
        "_interner",
        "_pinned",
        "_slot_pins",
        "_slot_pin_counts",
        "_learned_count",
        "evictions",
    )

    def __init__(
        self,
        own_variable: VariableId,
        counter: Optional[CheckCounter] = None,
    ) -> None:
        self.own_variable = own_variable
        self.counter = counter if counter is not None else CheckCounter()
        self._by_value: Dict[Value, ReadOnlyBucket] = {}
        self._unconditional: ReadOnlyBucket = ReadOnlyBucket()
        self._all: Set[Nogood] = set()
        #: Every nogood in add() order — the canonical store order used by
        #: :meth:`nogoods` (and by store-backend rebinding, which must
        #: replay adds in the original order to keep buckets bit-identical).
        self._insertion: ReadOnlyBucket = ReadOnlyBucket()
        #: value -> bucket+unconditional merged list, rebuilt lazily after
        #: adds. Without this, every candidate scan in the presence of
        #: unconditional nogoods allocated a fresh O(bucket) list.
        self._combined_cache: Dict[Value, ReadOnlyBucket] = {}
        # Priority keys depend only on the view's priorities, which change
        # far more rarely than checks happen; cache per view object (weakly,
        # so dropped views free their cache) and per priority version.
        # Keying on the view object itself — not a single latest-view slot —
        # means algorithms that consult several views, or rebuild views per
        # cycle, no longer thrash the cache.
        self._key_caches: "weakref.WeakKeyDictionary[AgentView, _KeyCache]"
        self._key_caches = weakref.WeakKeyDictionary()
        #: Cache-effectiveness counters (observational; tests assert the
        #: hit rate stays high across alternating views).
        self.key_cache_hits = 0
        self.key_cache_misses = 0
        # Retention state (see repro.retention). With no policy attached
        # the store behaves exactly as before the subsystem existed:
        # every add is kept forever and the hot path pays one flag test.
        self._retention: Optional["RetentionPolicy"] = None
        self._track_use = False
        self._interner: Optional["NogoodInterner"] = None
        #: Permanently pinned nogoods (the problem's initial constraints):
        #: they define soundness and are never evictable.
        self._pinned: Set[Nogood] = set()
        #: slot -> the nogood that slot currently protects. AWC/ABT pin
        #: the latest deadend resolvent per announcing agent here — the
        #: completeness rule ("same nogood as before → do nothing") is
        #: only sound while the recorded copy survives at the recipients.
        self._slot_pins: Dict[Hashable, Nogood] = {}
        #: nogood -> how many slots currently protect it (several agents
        #: may have announced the same structural nogood).
        self._slot_pin_counts: Dict[Nogood, int] = {}
        #: Learned (non-initial) nogoods currently stored; the quantity
        #: retention budgets bound.
        self._learned_count = 0
        #: How many nogoods have been evicted over this store's lifetime.
        self.evictions = 0

    # -- content management ------------------------------------------------

    def add(
        self,
        nogood: Nogood,
        *,
        pinned: bool = False,
        slot: Optional[Hashable] = None,
    ) -> bool:
        """Record *nogood*; returns False if it was already present.

        ``pinned`` marks the nogood permanently unevictable (used for the
        problem's initial constraints). ``slot`` additionally takes the
        rotating pin of that slot (see :meth:`pin_slot`) — applied before
        the retention policy runs, so a mandatory nogood can never be
        evicted in the same add that records it.
        """
        if self._interner is not None:
            nogood = self._interner.intern(nogood)
        if nogood in self._all:
            if slot is not None:
                self.pin_slot(slot, nogood)
            return False
        self._all.add(nogood)
        list.append(self._insertion, nogood)
        own_value = nogood.value_of(self.own_variable)
        if nogood.mentions(self.own_variable):
            bucket = self._by_value.setdefault(own_value, ReadOnlyBucket())
            list.append(bucket, nogood)
            if self._unconditional:
                self._combined_cache.pop(own_value, None)
        else:
            list.append(self._unconditional, nogood)
            self._combined_cache.clear()
        if pinned:
            self._pinned.add(nogood)
        else:
            self._learned_count += 1
        # Derived indexes (the watched kernel) must exist before the
        # retention policy runs: a policy may evict the nogood it was just
        # handed, and remove() dismantles those indexes.
        self._index_added(nogood)
        if slot is not None:
            self.pin_slot(slot, nogood)
        if self._retention is not None:
            victims = self._retention.on_add(self, nogood, not pinned)
            for victim in victims:
                self.remove(victim)
        return True

    def _index_added(self, nogood: Nogood) -> None:
        """Subclass hook: index *nogood* in backend-specific structures."""
        del nogood

    def remove(self, nogood: Nogood) -> bool:
        """Evict *nogood* from the store; returns False if it was absent.

        Raises :class:`~repro.core.exceptions.ModelError` for a pinned
        nogood — initial constraints and mandatory deadend resolvents
        must never leave the store (the completeness caveat), so even a
        buggy retention policy cannot drop them.

        Every derived structure is kept consistent: the per-value index,
        the insertion order, the ``for_value`` combined-list cache and
        the per-view priority-key caches all forget the nogood (a stale
        cached batch would otherwise keep serving the evicted nogood).
        """
        if nogood not in self._all:
            return False
        if nogood in self._pinned or nogood in self._slot_pin_counts:
            raise ModelError(
                f"refusing to evict pinned nogood {nogood!r}: pinned "
                "nogoods are completeness-critical (initial constraints "
                "and mandatory deadend resolvents)"
            )
        self._all.discard(nogood)
        list.remove(self._insertion, nogood)
        if nogood.mentions(self.own_variable):
            own_value = nogood.value_of(self.own_variable)
            bucket = self._by_value.get(own_value)
            if bucket is not None:
                list.remove(bucket, nogood)
                if not bucket:
                    del self._by_value[own_value]
            self._combined_cache.pop(own_value, None)
        else:
            list.remove(self._unconditional, nogood)
            self._combined_cache.clear()
        for cache in self._key_caches.values():
            cache.keys.pop(nogood, None)
        self._index_removed(nogood)
        self._learned_count -= 1
        self.evictions += 1
        if self._retention is not None:
            self._retention.on_remove(nogood)
        return True

    def _index_removed(self, nogood: Nogood) -> None:
        """Subclass hook: drop *nogood* from backend-specific structures."""
        del nogood

    # -- retention plumbing -------------------------------------------------

    @property
    def retention(self) -> Optional["RetentionPolicy"]:
        """The attached retention policy (None = keep everything)."""
        return self._retention

    def set_retention(self, policy: Optional["RetentionPolicy"]) -> None:
        """Attach *policy* (per-store instance; None detaches)."""
        self._retention = policy
        self._track_use = bool(policy is not None and policy.tracks_use)

    @property
    def interner(self) -> Optional["NogoodInterner"]:
        """The shared cross-agent interner, if one was adopted."""
        return self._interner

    def adopt_interner(self, interner: "NogoodInterner") -> None:
        """Intern future adds through *interner*; register current contents.

        Existing stored references are left in place (they stay
        structurally equal to the canonical instances), but registering
        them means every *other* agent that later records an equal
        nogood shares this store's object.
        """
        self._interner = interner
        for nogood in self._insertion:
            interner.intern(nogood)

    def pin_slot(self, slot: Hashable, nogood: Nogood) -> None:
        """Protect *nogood* from eviction until *slot* pins another one.

        One slot per announcing agent keeps the pin population bounded by
        the neighborhood size while guaranteeing the *latest* mandatory
        deadend resolvent from each peer survives. A nogood not in the
        store is ignored (e.g. one the recording policy dropped).
        """
        if nogood not in self._all:
            return
        previous = self._slot_pins.get(slot)
        if previous == nogood:
            return
        if previous is not None:
            count = self._slot_pin_counts[previous] - 1
            if count:
                self._slot_pin_counts[previous] = count
            else:
                del self._slot_pin_counts[previous]
        self._slot_pins[slot] = nogood
        self._slot_pin_counts[nogood] = (
            self._slot_pin_counts.get(nogood, 0) + 1
        )

    def is_pinned(self, nogood: Nogood) -> bool:
        """True when *nogood* is protected from eviction."""
        return nogood in self._pinned or nogood in self._slot_pin_counts

    def is_permanently_pinned(self, nogood: Nogood) -> bool:
        """True when *nogood* was added with ``pinned=True`` (initial)."""
        return nogood in self._pinned

    def slot_pins(self) -> Iterator[Tuple[Hashable, Nogood]]:
        """The rotating pins, in slot-establishment order."""
        return iter(self._slot_pins.items())

    def learned_count(self) -> int:
        """How many learned (non-initial) nogoods are currently stored."""
        return self._learned_count

    def evictable_nogoods(self) -> List[Nogood]:
        """The learned, unpinned nogoods, in insertion order.

        This is the candidate set retention policies choose victims
        from; its deterministic order makes tie-breaks reproducible.
        """
        pinned = self._pinned
        slot_pinned = self._slot_pin_counts
        return [
            nogood
            for nogood in self._insertion
            if nogood not in pinned and nogood not in slot_pinned
        ]

    def __contains__(self, nogood: Nogood) -> bool:
        return nogood in self._all

    def __len__(self) -> int:
        return len(self._all)

    def nogoods(self) -> Iterator[Nogood]:
        """All stored nogoods, in insertion order."""
        return iter(self._insertion)

    def for_value(self, value: Value) -> List[Nogood]:
        """The nogoods that could be violated when the owner takes *value*.

        This is the bucket binding the owner to *value* plus the
        unconditional bucket. Both the common path and the merged path
        return a :class:`ReadOnlyBucket` (attempted mutation raises instead
        of corrupting the index); the merged list is cached per value and
        invalidated by :meth:`add`, so repeated candidate scans allocate
        nothing.
        """
        bucket = self._by_value.get(value, _EMPTY)
        if not self._unconditional:
            return bucket
        combined = self._combined_cache.get(value)
        if combined is None:
            combined = ReadOnlyBucket(bucket)
            list.extend(combined, self._unconditional)
            self._combined_cache[value] = combined
        return combined

    # -- evaluation (cost-counted) ----------------------------------------

    def is_violated(
        self, nogood: Nogood, view: AgentView, own_value: Value
    ) -> bool:
        """Test *nogood* against *view* with the owner set to *own_value*.

        Counts exactly one nogood check. A nogood is violated when every one
        of its pairs is matched — by *own_value* for the owner's variable and
        by the view for others. Variables the view does not know cannot match,
        so a nogood over unknown variables is never violated (the agent will
        have requested those values; until they arrive the nogood is inert).
        """
        self.counter.bump()
        own_variable = self.own_variable
        for variable, value in nogood.pairs:
            if variable == own_variable:
                if value != own_value:
                    return False
            else:
                entry = view.entry(variable)
                if entry is None or entry.value != value:
                    return False
        # A confirmed violation is the retention notion of "use"; the flag
        # is only set for use-tracking policies, so keep-all runs pay one
        # falsy test here and nothing else.
        if self._track_use and self._retention is not None:
            self._retention.on_use(nogood)
        return True

    # -- priority classification (not cost-counted) ------------------------

    def priority_key_of(self, nogood: Nogood, view: AgentView) -> OrderKey:
        """The nogood's priority key under the priorities recorded in *view*.

        Defined by the paper as the lowest-ranked variable in the nogood
        other than the owner's. Unknown variables contribute priority 0.

        Keys are cached per (view, priority version): they are consulted on
        every candidate-value scan but only change when some priority does
        (i.e. on backtracks), which makes this the store's hottest cacheable
        computation by a wide margin.
        """
        cache = self._key_caches.get(view)
        if cache is None or cache.version != view.priority_version:
            cache = _KeyCache(view.priority_version)
            self._key_caches[view] = cache
        key = cache.keys.get(nogood)
        if key is None:
            self.key_cache_misses += 1
            # Scalar min loop over (priority, -variable) instead of
            # delegating to ``nogood_priority_key``: the genexp frame and
            # the per-variable input tuples were the store's single largest
            # transient allocation (lint rule H1). The one tuple built here
            # is the cached result itself, bit-identical to the helper's.
            own_variable = self.own_variable
            best_priority: Optional[int] = None
            best_neg = 0
            for variable in nogood.variables:
                if variable == own_variable:
                    continue
                priority = view.priority_of(variable)
                neg = -variable
                if (
                    best_priority is None
                    or priority < best_priority
                    or (priority == best_priority and neg < best_neg)
                ):
                    best_priority = priority
                    best_neg = neg
            if best_priority is None:
                key = TOP_KEY
            else:
                key = (best_priority, best_neg)
            cache.keys[nogood] = key
        else:
            self.key_cache_hits += 1
        return key

    def is_higher(
        self, nogood: Nogood, view: AgentView, own_priority: int
    ) -> bool:
        """True if *nogood* ranks higher than the owner's variable."""
        return self.priority_key_of(nogood, view) > order_key(
            own_priority, self.own_variable
        )

    # -- composite queries used by the algorithms ---------------------------

    def violated(self, view: AgentView, own_value: Value) -> List[Nogood]:
        """All stored nogoods violated with the owner at *own_value*.

        One check per consulted nogood, exactly like the explicit
        ``for_value`` + ``is_violated`` loop it replaces.
        """
        return [
            nogood
            for nogood in self.for_value(own_value)
            if self.is_violated(nogood, view, own_value)
        ]

    def is_consistent(self, view: AgentView, own_value: Value) -> bool:
        """True when no stored nogood is violated with the owner at *own_value*.

        Short-circuits on the first violation (and stops counting checks
        there), matching ABT's classical consistency scan.
        """
        for nogood in self.for_value(own_value):
            if self.is_violated(nogood, view, own_value):
                return False
        return True

    def violated_higher(
        self,
        view: AgentView,
        own_value: Value,
        own_priority: int,
    ) -> List[Nogood]:
        """The higher nogoods violated with the owner at *own_value*.

        Each violation test on a higher nogood costs one check; lower
        nogoods are filtered out by priority without a violation test (and
        without a check), matching the paper's rule that an agent "only
        performs this test for a nogood whose priority is higher".
        """
        my_key = order_key(own_priority, self.own_variable)
        violated = []
        for nogood in self.for_value(own_value):
            if self.priority_key_of(nogood, view) > my_key and self.is_violated(
                nogood, view, own_value
            ):
                violated.append(nogood)
        return violated

    def count_violated_higher(
        self,
        view: AgentView,
        own_value: Value,
        own_priority: int,
    ) -> int:
        """How many higher nogoods are violated with the owner at *own_value*.

        Exactly :meth:`violated_higher` without materialising the list —
        same scan, same per-higher-nogood check counting, same retention
        touches — for the callers that only test the result's truthiness
        (lint rule H1: the list was per-message garbage).
        """
        my_key = order_key(own_priority, self.own_variable)
        count = 0
        for nogood in self.for_value(own_value):
            if self.priority_key_of(nogood, view) > my_key and self.is_violated(
                nogood, view, own_value
            ):
                count += 1
        return count

    def count_violated_lower(
        self,
        view: AgentView,
        own_value: Value,
        own_priority: int,
    ) -> int:
        """How many lower nogoods are violated with the owner at *own_value*."""
        my_key = order_key(own_priority, self.own_variable)
        count = 0
        for nogood in self.for_value(own_value):
            if self.priority_key_of(nogood, view) <= my_key and self.is_violated(
                nogood, view, own_value
            ):
                count += 1
        return count

    def count_violated(self, view: AgentView, own_value: Value) -> int:
        """How many stored nogoods are violated with the owner at *own_value*."""
        count = 0
        for nogood in self.for_value(own_value):
            if self.is_violated(nogood, view, own_value):
                count += 1
        return count

    # -- batch entry points (one pass over a candidate-value list) ----------

    def violated_batch(
        self, view: AgentView, values: Sequence[Value]
    ) -> List[List[Nogood]]:
        """:meth:`violated` for every candidate value, in order.

        Check counting is positionally identical to calling the
        single-value method in a loop; kernel backends override the
        single-value methods, so batches amortize their per-call view sync.
        """
        return [self.violated(view, value) for value in values]

    def count_violated_batch(
        self, view: AgentView, values: Sequence[Value]
    ) -> List[int]:
        """:meth:`count_violated` for every candidate value, in order."""
        return [self.count_violated(view, value) for value in values]

    def violated_higher_batch(
        self, view: AgentView, values: Sequence[Value], own_priority: int
    ) -> List[List[Nogood]]:
        """:meth:`violated_higher` for every candidate value, in order."""
        return [
            self.violated_higher(view, value, own_priority)
            for value in values
        ]

    def count_violated_higher_batch(
        self, view: AgentView, values: Sequence[Value], own_priority: int
    ) -> List[int]:
        """:meth:`count_violated_higher` for every candidate value, in order.

        The list-of-lists shape of :meth:`violated_higher_batch` costs one
        list object per candidate even when every entry is empty; callers
        that only ask "is any higher nogood violated at this value?" get a
        flat int list instead (lint rule H2). The owner's key is hoisted
        out of the loop; counting is positionally identical to calling
        :meth:`count_violated_higher` per value.
        """
        my_key = order_key(own_priority, self.own_variable)
        results = []
        for own_value in values:
            count = 0
            for nogood in self.for_value(own_value):
                if self.priority_key_of(
                    nogood, view
                ) > my_key and self.is_violated(nogood, view, own_value):
                    count += 1
            results.append(count)
        return results

    def count_violated_lower_batch(
        self, view: AgentView, values: Sequence[Value], own_priority: int
    ) -> List[int]:
        """:meth:`count_violated_lower` for every candidate value, in order."""
        return [
            self.count_violated_lower(view, value, own_priority)
            for value in values
        ]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(x{self.own_variable}, "
            f"{len(self._all)} nogoods, {self.counter.total} checks)"
        )


_EMPTY: ReadOnlyBucket = ReadOnlyBucket()


class LinearNogoodStore(NogoodStore):
    """A store without the per-value index, for the ablation benchmark.

    Every candidate-value test scans all stored nogoods. Functionally
    identical to :class:`NogoodStore` (nogoods binding the owner to a
    different value simply fail their violation test), but each such failed
    test costs a check — this is what the per-value index saves, and
    ``benchmarks/bench_ablation_store.py`` measures the difference.
    """

    __slots__ = ()

    def for_value(self, value: Value) -> List[Nogood]:  # noqa: ARG002
        return self._insertion


#: The store backends selectable via ``--store`` (cf. the ``--backend``
#: execution-engine axis): the default dict/bucket index, the unindexed
#: ablation baseline, and the watched/bitset kernel.
STORE_BACKENDS = ("dict", "linear", "watched")


def store_class_by_name(name: str) -> Type[NogoodStore]:
    """Resolve a ``--store`` backend label to its store class."""
    if name == "dict":
        return NogoodStore
    if name == "linear":
        return LinearNogoodStore
    if name == "watched":
        from .watched import WatchedNogoodStore

        return WatchedNogoodStore
    raise ModelError(
        f"unknown store backend {name!r}; expected one of {STORE_BACKENDS}"
    )
