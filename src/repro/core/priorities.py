"""The total order on variables induced by dynamic priorities.

The AWC algorithm (Section 2.2 of the paper) attaches a non-negative integer
*priority* to every variable. Priorities change during search (a deadend
agent raises its own), and many decisions depend on comparing them:

* which nogoods are *higher* than a variable (and must therefore be
  satisfied) versus *lower* (merely to be minimized);
* which of two equally small candidate nogoods the resolvent rule prefers.

The paper resolves equal numeric priorities deterministically: "All ties in
priorities are broken due to the alphabetical order of variables' ids." We
use integer variable ids, ordered ascending, so between two variables with
the same numeric priority the one with the **smaller id ranks higher**.

Everything in this module is expressed through :func:`order_key`, which maps
``(priority, variable)`` to a tuple that compares the right way with plain
``<``/``>``: a greater key means a higher-ranked variable. The priority of a
*nogood* (the lowest-ranked variable among its members other than the owner)
is then just a ``min`` over keys.
"""

from __future__ import annotations

from typing import Iterable, Tuple

#: Order key type: compare with <, >, min, max. Greater key = higher rank.
OrderKey = Tuple[float, float]

#: Key greater than every real variable's key. Used as the priority of a
#: nogood with no variables besides the owner (a unary nogood on the owner's
#: own variable): such a nogood binds unconditionally, so it must rank higher
#: than any variable.
TOP_KEY: OrderKey = (float("inf"), float("inf"))


def order_key(priority: int, variable: int) -> OrderKey:
    """Return the comparison key of *variable* at *priority*.

    Keys compare such that greater means higher rank: a larger numeric
    priority always wins, and among equal priorities a smaller variable id
    wins (the paper's alphabetical tie-break).

    >>> order_key(2, 7) > order_key(1, 3)
    True
    >>> order_key(1, 3) > order_key(1, 5)   # tie: smaller id ranks higher
    True
    """
    return (priority, -variable)


def nogood_priority_key(
    member_priorities: Iterable[Tuple[int, int]],
) -> OrderKey:
    """Return the priority key of a nogood.

    *member_priorities* yields ``(priority, variable)`` pairs for every
    variable in the nogood **except the owner's own variable**. The paper
    defines the priority of a nogood as "the lowest priority among variables
    except x_i in the nogood", so the result is the minimum key, or
    :data:`TOP_KEY` when the iterable is empty (a unary nogood on the owner).
    """
    best: OrderKey = TOP_KEY
    for priority, variable in member_priorities:
        key = order_key(priority, variable)
        if key < best:
            best = key
    return best


def outranks(
    priority_a: int, variable_a: int, priority_b: int, variable_b: int
) -> bool:
    """Return True if variable *a* ranks strictly higher than variable *b*."""
    return order_key(priority_a, variable_a) > order_key(priority_b, variable_b)
