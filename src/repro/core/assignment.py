"""Agent views: what one agent currently believes about other variables.

Section 2.2 of the paper: "when an agent receives the latest information
from another agent, it updates an *agent_view*, a list of 3-tuples (agent's
id, variable's id, variable's value)". With one variable per agent the agent
id and variable id coincide; we key the view by variable id and also track
the variable's last known *priority*, which AWC needs for the higher/lower
nogood classification.

The module also provides small helpers over plain assignment dictionaries
(``{variable: value}``), which is the representation used for global
solution checking and for the centralized solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from .variables import Value, VariableId


@dataclass(frozen=True)
class ViewEntry:
    """The last known state of one remote variable."""

    value: Value
    priority: int = 0


class AgentView:
    """A mutable map from remote variable id to its last known state.

    Only ever updated from received ``ok?`` messages, so it reflects possibly
    stale information — that staleness is inherent to asynchronous search and
    exactly what nogoods are expressed against.
    """

    __slots__ = ("_entries", "priority_version", "version", "removals", "__weakref__")

    def __init__(self) -> None:
        self._entries: Dict[VariableId, ViewEntry] = {}
        #: Bumped whenever some variable's *priority* (not value) changes.
        #: Consumers that derive priority-dependent data (the nogood store's
        #: priority-key cache) use this to invalidate cheaply: priorities
        #: change on backtracks only, far more rarely than values.
        self.priority_version = 0
        #: Bumped on *every* observable change (value, priority, or
        #: membership). The packed-bitset mirror
        #: (:class:`repro.core.packed.PackedView`) compares this in O(1) to
        #: decide whether it must re-sync before a candidate-value scan.
        self.version = 0
        #: Bumped when a variable is *removed* (``forget``). Removals are
        #: rare (ABT backtracks only), so incremental consumers do the
        #: O(view) membership diff only when this counter moved.
        self.removals = 0

    def update(self, variable: VariableId, value: Value, priority: int) -> bool:
        """Record the latest ``(value, priority)`` for *variable*.

        Returns True if this changed the view (new variable, new value, or
        new priority).
        """
        entry = ViewEntry(value, priority)
        previous = self._entries.get(variable)
        if previous == entry:
            return False
        # An unknown variable reads as priority 0, so only a transition to
        # or from a non-zero priority is a priority change.
        old_priority = previous.priority if previous is not None else 0
        if old_priority != priority:
            self.priority_version += 1
        self._entries[variable] = entry
        self.version += 1
        return True

    def forget(self, variable: VariableId) -> None:
        """Drop *variable* from the view (ABT uses this when backtracking)."""
        previous = self._entries.pop(variable, None)
        if previous is not None:
            self.version += 1
            self.removals += 1
            if previous.priority != 0:
                self.priority_version += 1

    def knows(self, variable: VariableId) -> bool:
        """True if the view holds a value for *variable*."""
        return variable in self._entries

    def value_of(self, variable: VariableId) -> Optional[Value]:
        """The last known value of *variable*, or None if unknown."""
        entry = self._entries.get(variable)
        return entry.value if entry is not None else None

    def priority_of(self, variable: VariableId) -> int:
        """The last known priority of *variable* (0 if unknown).

        Zero is the correct default: every priority starts at zero and a
        variable we have never heard from cannot have raised it as far as we
        know.
        """
        entry = self._entries.get(variable)
        return entry.priority if entry is not None else 0

    def entry(self, variable: VariableId) -> Optional[ViewEntry]:
        """The full entry for *variable*, or None."""
        return self._entries.get(variable)

    def items(self) -> Iterator[Tuple[VariableId, Value]]:
        """Iterate ``(variable, value)`` pairs in view insertion order."""
        return ((var, entry.value) for var, entry in self._entries.items())

    def as_assignment(self) -> Dict[VariableId, Value]:
        """The view as a plain ``{variable: value}`` dictionary (a copy)."""
        return {var: entry.value for var, entry in self._entries.items()}

    def variables(self) -> Tuple[VariableId, ...]:
        """The variables currently in the view, in ascending id order."""
        return tuple(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[VariableId]:
        return iter(self._entries)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"x{var}={entry.value!r}@{entry.priority}"
            for var, entry in sorted(self._entries.items())
        )
        return f"AgentView({inner})"


def merge_assignments(
    *assignments: Dict[VariableId, Value],
) -> Dict[VariableId, Value]:
    """Merge assignment dicts left to right (later dicts win on conflicts)."""
    merged: Dict[VariableId, Value] = {}
    for assignment in assignments:
        merged.update(assignment)
    return merged
