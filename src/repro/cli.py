"""Command-line interface: regenerate the paper's tables and figure.

Examples::

    repro table 1                   # Table 1 at the default scale
    repro table 8 --scale quick     # smoke-scale comparison vs DB
    repro table 4                   # the redundancy experiment
    repro figure2                   # the efficiency model + crossover
    repro tables                    # everything (honours --scale)

The ``--scale paper`` option runs the paper's exact sizes and trial counts;
expect long runtimes in pure Python.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.figure2 import run_figure2
from .experiments.paper import (
    reference_for_table,
    run_table,
    run_table4,
    scale_by_name,
    scale_from_environment,
    TABLE_SPECS,
)
from .experiments.reference import FIGURE2_CROSSOVERS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=("quick", "default", "paperlite", "paper"),
        default=None,
        help="experiment scale (default: REPRO_SCALE or 'default')",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="omit the paper's values from the output",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for trial execution (0 = all cores; "
            "default: REPRO_JOBS or sequential). Results are identical "
            "to a sequential run."
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("sync", "events"),
        default="sync",
        help=(
            "trial execution engine: the paper's lockstep cycle simulator "
            "or the discrete-event engine (in parity mode the tables are "
            "identical; see docs/api.md on repro.runtime.events)"
        ),
    )
    _add_store_option(parser)
    _add_retention_option(parser)


def _add_store_option(parser: argparse.ArgumentParser) -> None:
    from .core.store import STORE_BACKENDS

    parser.add_argument(
        "--store",
        choices=STORE_BACKENDS,
        default="dict",
        help=(
            "nogood-store backend: dict (the per-value index), linear "
            "(unindexed ablation) or watched (the bitset/watched-pair "
            "kernel). Counted identically, so results are bit-identical; "
            "only wall-clock changes."
        ),
    )


def _add_retention_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retention",
        default=None,
        metavar="SPEC",
        help=(
            "nogood retention policy: keep-all (default; the paper's "
            "record-forever behaviour), lru[:CAP], decay[:CAP[:HALF_LIFE]] "
            "or subsume. Bounded policies evict learned nogoods but never "
            "pinned ones (initial constraints, latest resolvent per "
            "sender); see repro.retention."
        ),
    )


def _resolve_scale(name: Optional[str]):
    if name is None:
        return scale_from_environment()
    return scale_by_name(name)


def _print_table(number: int, args: argparse.Namespace) -> None:
    scale = _resolve_scale(args.scale)
    jobs = getattr(args, "jobs", None)
    backend = getattr(args, "backend", "sync")
    store = getattr(args, "store", "dict")
    retention = getattr(args, "retention", None)
    if number == 4:
        for table in run_table4(
            scale=scale,
            seed=args.seed,
            workers=jobs,
            backend=backend,
            store=store,
            retention=retention,
        ):
            print(table.format_text())
            print()
        if not args.no_reference:
            print("paper's Table 4 (mean redundant generations):")
            from .experiments.reference import TABLE4

            for (family, n, label), value in sorted(TABLE4.items()):
                print(f"  {family:5s} n={n:<4d} {label:15s} {value:>10.1f}")
        return
    table = run_table(
        number,
        scale=scale,
        seed=args.seed,
        workers=jobs,
        backend=backend,
        store=store,
        retention=retention,
    )
    reference = None if args.no_reference else reference_for_table(number)
    print(table.format_text(reference))


def _cmd_table(args: argparse.Namespace) -> int:
    _print_table(args.number, args)
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    for number in sorted(set(TABLE_SPECS) | {4}):
        _print_table(number, args)
        print()
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    from .analysis.textplot import Series, line_plot

    scale = _resolve_scale(args.scale)
    result = run_figure2(scale=scale, seed=args.seed)
    print(result.text)
    print()
    print(
        line_plot(
            [
                Series.from_function(
                    result.awc.label, result.delays, result.awc.total_time
                ),
                Series.from_function(
                    result.db.label, result.delays, result.db.total_time
                ),
            ],
            title="total time-units vs communication delay",
            x_label="communication delay (nogood-check time-units)",
            y_label="total",
        )
    )
    if result.crossover is not None:
        print(f"\nmeasured crossover delay: {result.crossover:.1f} time-units")
    if not args.no_reference:
        paper = FIGURE2_CROSSOVERS[("d3s1", 50)]
        print(f"paper's crossover (d3s1, n=50): around {paper:.0f} time-units")
    return 0


def _cmd_asynchrony(args: argparse.Namespace) -> int:
    from .experiments.asynchrony import (
        run_asynchrony_table,
        run_event_asynchrony_table,
    )

    scale = _resolve_scale(args.scale)
    if getattr(args, "backend", "sync") == "events":
        table = run_event_asynchrony_table(scale=scale, seed=args.seed)
        print(table.format_text())
        print(
            "\nEvent-driven backend: 'cycle' counts epochs (distinct "
            "delivery times) and maxcck sums per-epoch maxima — the "
            "logical-time analogues of the paper's measures (see "
            "EXPERIMENTS.md). The unit row is parity mode; every reported "
            "solution is verified."
        )
        return 0
    table = run_asynchrony_table(scale=scale, seed=args.seed)
    print(table.format_text())
    print(
        "\nThe fixed(d) rows realize Figure 2's delay axis: cycles should "
        "grow roughly d-fold over sync. Reorder rows exercise the harshest "
        "asynchrony; every reported solution is verified."
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.sweep import best_bound, sweep_size_bound

    scale = _resolve_scale(args.scale)
    for family in args.families:
        table = sweep_size_bound(family, scale=scale, seed=args.seed)
        print(table.format_text())
        print(f"empirical best bound: {best_bound(table)}\n")
    print(
        "The paper (Section 4.2): 'the optimal setting for k depends on "
        "problems ... it should be set empirically.' This is that "
        "procedure."
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .algorithms.registry import algorithm_by_name
    from .experiments.validation import validate_delay_model

    scale = _resolve_scale(args.scale)
    for name in args.algorithms:
        result = validate_delay_model(
            algorithm=algorithm_by_name(name),
            delays=tuple(args.delays),
            scale=scale,
            seed=args.seed,
        )
        print(result.format_text())
        print(
            f"worst deviation from the linear model: "
            f"{result.worst_ratio_error * 100:.0f}%\n"
        )
    print(
        "Figure 2 models total time as maxcck + cycle × delay; these runs "
        "realize the delay on an actual fixed-delay network and compare "
        "measured cycles against the model's cycle × delay term."
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import generate_report

    scale = _resolve_scale(args.scale)
    result = generate_report(
        scale=scale, seed=args.seed, include_extensions=args.extensions
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(result.text)
        print(
            f"wrote {args.output}: shape checks {result.passed}/"
            f"{result.total} passed"
        )
    else:
        print(result.text)
    return 0 if result.passed == result.total else 1


def _cmd_solve(args: argparse.Namespace) -> int:
    from .algorithms.registry import algorithm_by_name
    from .experiments.runner import run_trial
    from .problems.sat.dimacs import read_dimacs
    from .problems.sat.to_discsp import sat_to_discsp

    formula = read_dimacs(args.path)
    problem = sat_to_discsp(formula)
    print(f"loaded {formula} from {args.path}")
    tracer = None
    if args.trace_jsonl:
        from .runtime.trace import TraceRecorder

        tracer = TraceRecorder()
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    result = run_trial(
        problem,
        algorithm_by_name(args.algorithm),
        seed=args.seed,
        max_cycles=args.max_cycles,
        backend=args.backend,
        tracer=tracer,
        store=args.store,
        retention=args.retention,
    )
    if profiler is not None:
        import pstats

        profiler.disable()
        if args.profile == "-":
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(30)
        else:
            profiler.dump_stats(args.profile)
            print(
                f"wrote cProfile stats to {args.profile} "
                "(inspect with python -m pstats, or snakeviz)"
            )
    if tracer is not None:
        count = tracer.write_jsonl(args.trace_jsonl)
        print(f"wrote {count} trace records to {args.trace_jsonl}")
    if result.solved:
        literals = " ".join(
            str(variable if value else -variable)
            for variable, value in sorted(result.assignment.items())
        )
        print(f"s SATISFIABLE ({result.cycles} cycles, maxcck {result.maxcck})")
        print(f"v {literals} 0")
        return 0
    if result.unsolvable:
        print(f"s UNSATISFIABLE ({result.cycles} cycles)")
        return 0
    print(f"s UNKNOWN (stopped after {result.cycles} cycles)")
    return 2


def _cmd_generate(args: argparse.Namespace) -> int:
    from pathlib import Path

    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    for index in range(args.count):
        seed = f"{args.seed}-{index}"
        if args.family == "d3c":
            from .problems.coloring import random_coloring_instance
            from .problems.graphs import format_dimacs_graph

            instance = random_coloring_instance(args.n, seed=seed)
            path = out / f"coloring-n{args.n}-{index}.col"
            path.write_text(
                format_dimacs_graph(
                    instance.graph,
                    comment=(
                        f"planted 3-colorable graph, n={args.n}, "
                        f"m={instance.graph.num_edges}, seed={seed}"
                    ),
                )
            )
        else:
            from .problems.sat.dimacs import write_dimacs
            from .problems.sat.generators import (
                planted_3sat,
                unique_solution_3sat,
            )

            if args.family == "d3s":
                instance = planted_3sat(args.n, seed=seed)
                stem = "3sat"
            else:
                instance = unique_solution_3sat(args.n, seed=seed)
                stem = "3onesat"
            path = out / f"{stem}-n{args.n}-{index}.cnf"
            write_dimacs(
                instance.formula,
                path,
                comment=f"{stem} instance, n={args.n}, seed={seed}",
            )
        print(f"wrote {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import main as lint_main

    forwarded: List[str] = list(args.paths)
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    if args.write_baseline:
        forwarded.append("--write-baseline")
    if args.list_rules:
        forwarded.append("--list-rules")
    if args.format != "text":
        forwarded += ["--format", args.format]
    if args.output:
        forwarded += ["--output", args.output]
    for pattern in args.exclude or ():
        forwarded += ["--exclude", pattern]
    if args.check_trace:
        forwarded += ["--check-trace", args.check_trace]
    if args.no_fifo_check:
        forwarded.append("--no-fifo-check")
    return lint_main(forwarded)


def _cmd_verify(args: argparse.Namespace) -> int:
    from .verify.cli import main as verify_main

    forwarded: List[str] = []
    if args.explore:
        forwarded.append("--explore")
    for entry in args.only or ():
        forwarded += ["--only", entry]
    if args.budget is not None:
        forwarded += ["--budget", str(args.budget)]
    if args.naive_budget is not None:
        forwarded += ["--naive-budget", str(args.naive_budget)]
    if args.no_prune:
        forwarded.append("--no-prune")
    if args.no_naive:
        forwarded.append("--no-naive")
    if args.format != "text":
        forwarded += ["--format", args.format]
    if args.output:
        forwarded += ["--output", args.output]
    return verify_main(forwarded)


def _cmd_soak(args: argparse.Namespace) -> int:
    from .experiments.soak import (
        DEFAULT_BUDGET,
        DEFAULT_EPISODE_CYCLES,
        DEFAULT_EPISODES,
        DEFAULT_POLICIES,
        DEFAULT_POOL,
        run_soak,
    )

    if args.policy is None:
        policies = DEFAULT_POLICIES
    else:
        policies = tuple(
            name.strip() for name in args.policy.split(",") if name.strip()
        )
    budget = args.budget if args.budget is not None else DEFAULT_BUDGET
    report = run_soak(
        policies=policies,
        budget=budget,
        episodes=(
            args.episodes if args.episodes is not None else DEFAULT_EPISODES
        ),
        pool=args.pool if args.pool is not None else DEFAULT_POOL,
        family=args.family,
        n=args.n,
        learning=args.learning,
        store=args.store,
        seed=args.seed,
        max_cycles=(
            args.max_cycles
            if args.max_cycles is not None
            else DEFAULT_EPISODE_CYCLES
        ),
    )
    print(report.format_text())
    if args.output:
        report.write_json(args.output)
        print(f"wrote {args.output}")
    if not report.all_verified:
        print("FATAL: a solved episode failed solution re-verification")
        return 1
    if not report.all_within_budget:
        print(
            f"FATAL: a bounded policy exceeded the {budget}-nogood budget"
        )
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .experiments.bench import main as bench_main

    forwarded: List[str] = ["--axis", args.axis]
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.output:
        forwarded += ["--output", args.output]
    if args.gate is not None:
        forwarded.append("--gate")
        if args.gate:
            forwarded.append(args.gate)
    return bench_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'The Effect of Nogood Learning in "
            "Distributed Constraint Satisfaction' (Hirayama & Yokoo, ICDCS "
            "2000)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table = sub.add_parser("table", help="run one of the paper's tables")
    table.add_argument(
        "number", type=int, choices=sorted(set(TABLE_SPECS) | {4})
    )
    _add_common(table)
    table.set_defaults(func=_cmd_table)

    tables = sub.add_parser("tables", help="run every table")
    _add_common(tables)
    tables.set_defaults(func=_cmd_tables)

    figure = sub.add_parser("figure2", help="run the Figure 2 efficiency model")
    _add_common(figure)
    figure.set_defaults(func=_cmd_figure2)

    sweep = sub.add_parser(
        "sweep",
        help="size-bound (k) sweep: the paper's 'set k empirically' "
        "procedure",
    )
    sweep.add_argument(
        "families",
        nargs="*",
        default=["d3c", "d3s", "d3s1"],
        choices=("d3c", "d3s", "d3s1"),
        help="problem families to sweep (default: all three)",
    )
    _add_common(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    validate = sub.add_parser(
        "validate",
        help="empirically validate Figure 2's linear delay model on a "
        "fixed-delay network",
    )
    validate.add_argument(
        "--algorithms",
        nargs="*",
        default=["AWC+Rslv", "DB"],
        help="algorithm labels to validate (default: AWC+Rslv and DB)",
    )
    validate.add_argument(
        "--delays",
        nargs="*",
        type=int,
        default=[2, 3, 4],
        help="fixed per-message delays to measure (default: 2 3 4)",
    )
    _add_common(validate)
    validate.set_defaults(func=_cmd_validate)

    asynchrony = sub.add_parser(
        "asynchrony",
        help="extension experiment: the algorithms on delayed/asynchronous "
        "network models",
    )
    _add_common(asynchrony)
    asynchrony.set_defaults(func=_cmd_asynchrony)

    report = sub.add_parser(
        "report",
        help="run every experiment and render the Markdown report "
        "(paper vs measured, with shape checks)",
    )
    _add_common(report)
    report.add_argument(
        "-o", "--output", default=None, help="write the report to this file"
    )
    report.add_argument(
        "--extensions",
        action="store_true",
        help="also run the extension experiments (k-sweep, network models)",
    )
    report.set_defaults(func=_cmd_report)

    solve = sub.add_parser(
        "solve", help="solve a DIMACS CNF file as a distributed CSP"
    )
    solve.add_argument("path", help="path to a .cnf file")
    solve.add_argument(
        "--algorithm",
        default="AWC+Rslv",
        help="algorithm label (AWC+<learning>, DB, ABT); default AWC+Rslv",
    )
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--max-cycles", type=int, default=10_000)
    solve.add_argument(
        "--backend",
        choices=("sync", "events"),
        default="sync",
        help="execution engine (sync: lockstep cycles, events: "
        "discrete-event; default sync)",
    )
    solve.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="record the full message/value-change trace and write it "
        "to PATH as JSON Lines",
    )
    _add_store_option(solve)
    _add_retention_option(solve)
    solve.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="profile the trial with cProfile and dump the stats to PATH "
        "('-' prints the top cumulative entries to stdout)",
    )
    solve.set_defaults(func=_cmd_solve)

    generate = sub.add_parser(
        "generate",
        help="generate benchmark instances to disk "
        "(DIMACS graph / CNF formats)",
    )
    generate.add_argument(
        "family", choices=("d3c", "d3s", "d3s1"),
        help="d3c: 3-coloring, d3s: 3SAT-GEN, d3s1: unique-solution 3SAT",
    )
    generate.add_argument("n", type=int, help="variables / nodes")
    generate.add_argument("--count", type=int, default=1)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", default="instances")
    generate.set_defaults(func=_cmd_generate)

    lint = sub.add_parser(
        "lint",
        help="check the determinism / isolation / accounting invariants "
        "(see CONTRIBUTING.md)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/"],
        help="files or directories to lint (default: src/)",
    )
    lint.add_argument("--baseline", default=None)
    lint.add_argument("--write-baseline", action="store_true")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint.add_argument("--output", default=None, metavar="FILE")
    lint.add_argument("--exclude", action="append", default=None)
    lint.add_argument("--check-trace", default=None, metavar="JSONL")
    lint.add_argument("--no-fifo-check", action="store_true")
    lint.set_defaults(func=_cmd_lint)

    verify = sub.add_parser(
        "verify",
        help=(
            "interleaving verifier: handler commutativity matrix and "
            "DPOR schedule exploration of the event runtime"
        ),
    )
    verify.add_argument(
        "--explore",
        action="store_true",
        help="explore delivery schedules on the pinned corpus",
    )
    verify.add_argument(
        "--only", action="append", metavar="ENTRY",
        help="restrict to this corpus entry (repeatable)",
    )
    verify.add_argument(
        "--budget", type=int, default=None,
        help="max schedules the pruned search runs per entry",
    )
    verify.add_argument(
        "--naive-budget", type=int, default=None,
        help="max schedules the naive count runs per entry",
    )
    verify.add_argument(
        "--no-prune", action="store_true",
        help="disable commutativity pruning",
    )
    verify.add_argument(
        "--no-naive", action="store_true",
        help="skip the naive count (invariants only)",
    )
    verify.add_argument("--format", choices=("text", "json"), default="text")
    verify.add_argument(
        "--output", default=None, help="also write the JSON report here"
    )
    verify.set_defaults(func=_cmd_verify)

    soak = sub.add_parser(
        "soak",
        help="stream episodes through persistent agent populations "
        "under a nogood budget, one row per retention policy",
    )
    soak.add_argument(
        "--budget",
        type=int,
        default=None,
        help="learned-nogood cap per store for bounded policies "
        "(default 64)",
    )
    soak.add_argument(
        "--policy",
        default=None,
        metavar="SPECS",
        help="comma-separated retention policies "
        "(default keep-all,lru,decay,subsume; bare lru/decay get "
        "the budget as their cap)",
    )
    soak.add_argument(
        "--episodes",
        type=int,
        default=None,
        help="stream length (default 200)",
    )
    soak.add_argument(
        "--pool",
        type=int,
        default=None,
        help="distinct instances the stream cycles through (default 10)",
    )
    soak.add_argument(
        "--family",
        choices=("d3c", "d3s", "d3s1"),
        default="d3c",
        help="problem family of the pool (default d3c)",
    )
    soak.add_argument("--n", type=int, default=20, help="problem size")
    soak.add_argument(
        "--learning",
        default="Rslv",
        help="AWC learning method for the population (default Rslv)",
    )
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        help="per-episode cycle cap (default 1000)",
    )
    soak.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="also write the JSON report here",
    )
    _add_store_option(soak)
    soak.set_defaults(func=_cmd_soak)

    bench = sub.add_parser(
        "bench",
        help="smoke benchmarks: trial engine, event engine, lint "
        "analyzer, nogood-store kernel, interleaving verifier, "
        "retention subsystem, handler allocation churn (writes "
        "BENCH_*.json)",
    )
    bench.add_argument(
        "--axis",
        choices=(
            "workers", "backend", "lint", "store", "verify", "retention",
            "alloc",
        ),
        default="workers",
        help="what to compare (see repro.experiments.bench)",
    )
    bench.add_argument("--jobs", type=int, default=None)
    bench.add_argument("--output", default=None, metavar="PATH")
    bench.add_argument(
        "--gate",
        nargs="?",
        const="",
        default=None,
        metavar="BASELINE",
        help="(--axis store/verify) fail if the axis's throughput metric "
        "regressed more than 20%% vs the BASELINE report",
    )
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
