"""Machine-readable renderings of lint findings: JSON and SARIF.

The JSON format is the CLI's stable scripting surface (a flat list of
finding objects). SARIF 2.1.0 is what code-scanning UIs ingest — CI
uploads it so findings annotate pull requests at the offending line. Both
renderings are pure functions of the finding list, so the exit-code
contract (0 clean / 1 findings / 2 usage) is unchanged by ``--format``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Sequence

from .catalogue import ALL_RULES
from .findings import Finding

#: Tool metadata stamped into every SARIF log.
TOOL_NAME = "repro-lint"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_json(findings: Sequence[Finding]) -> str:
    """The findings as a JSON array of flat objects."""
    return json.dumps(
        [
            {
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "rule": finding.rule,
                "message": finding.message,
                "hint": finding.hint,
                "source": finding.source,
            }
            for finding in findings
        ],
        indent=2,
    )


def to_sarif(findings: Sequence[Finding]) -> Dict[str, Any]:
    """The findings as a SARIF 2.1.0 log (one run, one result per finding).

    Rule metadata comes from the live catalogue so the SARIF rule index is
    always in sync with the checker; partial fingerprints reuse the
    baseline identity (rule + path + source text), which is stable across
    line drift — exactly what code-scanning needs to track a finding
    across pushes.
    """
    rule_ids = sorted({finding.rule for finding in findings})
    known = {rule.id: rule for rule in ALL_RULES}
    rules_metadata: List[Dict[str, Any]] = []
    for rule_id in rule_ids:
        rule = known.get(rule_id)
        description = (
            (rule.__doc__ or "").strip().splitlines()[0]
            if rule is not None
            else "malformed repro-lint control comment"
        )
        rules_metadata.append(
            {
                "id": rule_id,
                "name": rule.title if rule is not None else "suppression hygiene",
                "shortDescription": {"text": description},
                "fullDescription": {
                    "text": "See CONTRIBUTING.md, section 'repro-lint rule "
                    "catalogue'."
                },
                "defaultConfiguration": {"level": "error"},
            }
        )
    index_of = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        message = finding.message
        if finding.hint:
            message += f" Fix: {finding.hint}"
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": index_of[finding.rule],
                "level": "error",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _relative_uri(finding.path),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.column,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproLintBaseline/v1": finding.fingerprint,
                },
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": rules_metadata,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }


def to_sarif_text(findings: Sequence[Finding]) -> str:
    """The SARIF log serialized deterministically (sorted keys)."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)


def _relative_uri(path: str) -> str:
    """A forward-slash, repo-relative rendering of a finding path."""
    normalized = os.path.relpath(path) if os.path.isabs(path) else path
    return normalized.replace(os.sep, "/")
