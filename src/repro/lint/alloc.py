"""Allocation dataflow: where garbage is born and whether it escapes.

The companion analysis to :mod:`repro.lint.dataflow` (seed taint, RNG
factories, send/mutation streams) and :mod:`repro.lint.effects` (handler
read/write footprints): this pass looks at one function at a time and
answers two questions the H rules need.

1. **Classification** — every allocation site in the function, by kind:
   list/set/dict/tuple displays, comprehensions and generator expressions,
   copy-constructor calls (``list(...)``, ``set(...)``, ...), ``sorted()``
   copies, dataclass constructions, closure creation (``lambda`` and
   nested ``def``), and ``+=`` string concatenation inside loops.
2. **Escape** — a fixpoint over alias, containment and store edges that
   separates allocations whose object can outlive the call (returned,
   yielded, written to an attribute/subscript, passed to a retaining call,
   captured by a closure, appended into an escaping container) from
   loop-local temporaries that die with the iteration — the hoistable,
   reuse-a-scratch-buffer cases H1 reports.

The analysis is name-based and deliberately conservative in the direction
that avoids false findings: anything it cannot prove local counts as
escaping. Calls are assumed to retain their arguments unless the callee is
a known read-only consumer — the builtin reducers (``len``, ``sum``,
``min``/``max``, ``any``/``all``), the copying constructors, and the store
consultation surface (:data:`~repro.lint.rules.COUNTED_CHECKS`), which
reads candidate buffers without keeping them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .graph import ModuleInfo, ProjectGraph
from .rules import COUNTED_CHECKS

# -- allocation kinds ----------------------------------------------------------

LIST_DISPLAY = "list-display"
SET_DISPLAY = "set-display"
DICT_DISPLAY = "dict-display"
TUPLE_DISPLAY = "tuple-display"
COMPREHENSION = "comprehension"
GENEXP = "genexp"
COPY_CALL = "copy-call"
SORTED_COPY = "sorted-copy"
DATACLASS_CTOR = "dataclass"
CLOSURE = "closure"
STR_CONCAT = "str-concat"

#: Kinds that build a container whose storage could be reused.
CONTAINER_KINDS = frozenset(
    {
        LIST_DISPLAY,
        SET_DISPLAY,
        DICT_DISPLAY,
        COMPREHENSION,
        COPY_CALL,
        SORTED_COPY,
    }
)

#: Builtins that read their arguments without retaining them. ``min``/
#: ``max`` over several containers alias their *result* to an argument;
#: that corner (rare, and never a container rebuilt per iteration in this
#: tree) is accepted as an approximation.
NON_RETAINING_FUNCS = frozenset(
    {
        "len", "sum", "min", "max", "any", "all", "bool", "sorted",
        "list", "tuple", "set", "frozenset", "dict", "enumerate", "zip",
        "reversed", "iter", "next", "repr", "str", "int", "float",
        "print", "isinstance", "range", "abs", "hash", "format", "id",
    }
)

#: Copying constructors (allocate, but do not retain the argument).
COPYING_FUNCS = frozenset({"list", "tuple", "set", "frozenset", "dict"})

#: Methods that read (or mutate in place) without retaining arguments;
#: the store consultation surface is exactly the batch/consult API the
#: hot paths feed candidate buffers into.
NON_RETAINING_METHODS = (
    frozenset(
        {
            "sort", "clear", "count", "index", "copy", "get", "keys",
            "values", "items", "remove", "discard", "pop", "popitem",
            "union", "intersection", "difference", "symmetric_difference",
            "issubset", "issuperset", "isdisjoint", "join", "split",
            "startswith", "endswith", "format", "mentions", "value_of",
            "priority_key_of", "for_value", "touch", "nogoods",
        }
    )
    | COUNTED_CHECKS
)

#: Methods that store argument 0 into their receiver.
_APPEND_ARG0 = frozenset({"append", "add", "appendleft", "extend", "update"})
#: Methods that store argument 1 into their receiver.
_APPEND_ARG1 = frozenset({"insert", "setdefault"})


@dataclass(frozen=True)
class LoopSpan:
    """Statement-index extent of one loop body (header included)."""

    node_id: int
    start: int
    end: int


@dataclass
class AllocSite:
    """One allocation expression inside the analyzed function."""

    node: ast.AST
    kind: str
    line: int
    column: int
    #: The plain local name the value is bound to, when the site is the
    #: whole right-hand side of ``name = ...`` (None for nested/unbound).
    name: Optional[str] = None
    #: ids of enclosing loop nodes, outermost first (empty: straight-line).
    loops: Tuple[int, ...] = ()
    #: Index of the statement containing the site.
    stmt_index: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = f" name={self.name}" if self.name else ""
        return f"AllocSite({self.kind}@{self.line}{bound})"


@dataclass
class FunctionAllocs:
    """Sites plus the escape verdicts for one function."""

    function: ast.AST
    sites: List[AllocSite] = field(default_factory=list)
    escaping: Set[str] = field(default_factory=set)
    loop_spans: Dict[int, LoopSpan] = field(default_factory=dict)
    #: name -> statement indices where the name is *read*.
    loads: Dict[str, List[int]] = field(default_factory=dict)

    def escapes(self, site: AllocSite) -> bool:
        """Can the allocated object outlive the call? Unbound sites are
        conservatively escaping (their flow is not tracked by name)."""
        if site.name is None:
            return True
        return site.name in self.escaping

    def iteration_local(self, site: AllocSite) -> bool:
        """Rebuilt-per-iteration and dead by the iteration's end?

        True when the site sits in a loop, its binding is fresh each
        iteration (no read of the name textually *before* the binding
        inside the loop, which would be a carry-over from the previous
        iteration), and the name is never read after the loop ends.
        """
        if not site.loops or site.name is None:
            return False
        span = self.loop_spans.get(site.loops[-1])
        if span is None:  # pragma: no cover - defensive
            return False
        for index in self.loads.get(site.name, ()):
            if index > span.end:
                return False  # read after the loop
            if span.start <= index <= site.stmt_index:
                return False  # carried over from the previous iteration
        return True


def analyze_function(
    function: ast.AST,
    module: Optional[ModuleInfo] = None,
    graph: Optional[ProjectGraph] = None,
) -> FunctionAllocs:
    """Classify allocation sites and run the escape fixpoint for one
    function/method definition node."""
    analysis = FunctionAllocs(function=function)
    walker = _Walker(analysis, module, graph)
    walker.run(function)
    _escape_fixpoint(analysis, walker)
    return analysis


def analyses_for(
    graph: ProjectGraph, function: ast.AST, module: ModuleInfo
) -> FunctionAllocs:
    """Graph-memoised :func:`analyze_function` (one entry per function)."""
    cache: Dict[int, FunctionAllocs] = graph.cached(  # type: ignore[assignment]
        "alloc-analyses", dict
    )
    key = id(function)
    if key not in cache:
        cache[key] = analyze_function(function, module, graph)
    return cache[key]


# -- the walk ------------------------------------------------------------------


class _Walker:
    """Single pass over a function body collecting sites and escape facts."""

    def __init__(
        self,
        analysis: FunctionAllocs,
        module: Optional[ModuleInfo],
        graph: Optional[ProjectGraph],
    ) -> None:
        self.analysis = analysis
        self.module = module
        self.graph = graph
        self.counter = 0
        self.loop_stack: List[int] = []
        #: symmetric alias pairs (a = b)
        self.aliases: List[Tuple[str, str]] = []
        #: (element name, container name): element escapes iff container does
        self.contained: List[Tuple[str, str]] = []

    # entry point

    def run(self, function: ast.AST) -> None:
        body = getattr(function, "body", [])
        self._statements(body)

    # statements

    def _statements(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        self.counter += 1
        index = self.counter
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, index)
            start = index
            self.loop_stack.append(id(stmt))
            self._statements(stmt.body)
            self.loop_stack.pop()
            self.analysis.loop_spans[id(stmt)] = LoopSpan(
                id(stmt), start, self.counter
            )
            self._statements(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test, index)
            start = index
            self.loop_stack.append(id(stmt))
            self._statements(stmt.body)
            self.loop_stack.pop()
            self.analysis.loop_spans[id(stmt)] = LoopSpan(
                id(stmt), start, self.counter
            )
            self._statements(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test, index)
            self._statements(stmt.body)
            self._statements(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr, index)
            self._statements(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._statements(stmt.body)
            for handler in stmt.handlers:
                self._statements(handler.body)
            self._statements(stmt.orelse)
            self._statements(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._closure_site(stmt, index)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt, index)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                target = (
                    stmt.target.id
                    if isinstance(stmt.target, ast.Name)
                    else None
                )
                self._bind(stmt.target, stmt.value, index, bound_name=target)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt, index)
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            value = stmt.value
            if isinstance(stmt, ast.Return) and value is not None:
                self.analysis.escaping |= _escaping_names_in(value)
            if value is not None:
                self._expr(value, index)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.analysis.escaping |= _escaping_names_in(stmt.exc)
                self._expr(stmt.exc, index)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            self.analysis.escaping.update(stmt.names)
        elif isinstance(stmt, ast.Assert):
            self._expr(stmt.test, index)
        elif isinstance(stmt, ast.Delete):
            pass
        else:  # Pass, Break, Continue, Import, ...
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._expr(value, index)

    def _assign(self, stmt: ast.Assign, index: int) -> None:
        single_name = (
            stmt.targets[0].id
            if len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            else None
        )
        for target in stmt.targets:
            self._bind(target, stmt.value, index, bound_name=single_name)

    def _bind(
        self,
        target: ast.expr,
        value: ast.expr,
        index: int,
        bound_name: Optional[str],
    ) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            # Stored into an object or container: the value escapes.
            self.analysis.escaping |= _escaping_names_in(value)
            self._expr(value, index)
            self._expr(target, index, store_target=True)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            # Unpacking: pair names positionally when shapes line up,
            # otherwise treat every value name as escaping (conservative).
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                target.elts
            ) == len(value.elts):
                for t, v in zip(target.elts, value.elts):
                    self._bind(t, v, index, bound_name=None)
                return
            self._expr(value, index)
            return
        if isinstance(target, ast.Name) and isinstance(value, ast.Name):
            self.aliases.append((target.id, value.id))
            self._load(value.id, index)
            return
        if isinstance(target, ast.Name) and isinstance(value, ast.IfExp):
            for branch in (value.body, value.orelse):
                if isinstance(branch, ast.Name):
                    self.aliases.append((target.id, branch.id))
            self._expr(value, index)
            return
        # name = <expression>: classify the RHS as a (possibly bound) site.
        self._expr(value, index, bound_name=bound_name)
        if isinstance(target, ast.Name):
            # Elements placed into a fresh container escape iff the
            # container itself does.
            if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
                for element in value.elts:
                    for name in _escaping_names_in(element):
                        self.contained.append((name, target.id))
            elif isinstance(value, ast.Dict):
                for element in list(value.keys) + list(value.values):
                    if element is None:
                        continue
                    for name in _escaping_names_in(element):
                        self.contained.append((name, target.id))

    def _aug_assign(self, stmt: ast.AugAssign, index: int) -> None:
        target = stmt.target
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self.analysis.escaping |= _escaping_names_in(stmt.value)
        elif isinstance(target, ast.Name):
            # acc += items folds items into acc.
            for name in _escaping_names_in(stmt.value):
                self.contained.append((name, target.id))
            self._load(target.id, index)
            if (
                self.loop_stack
                and isinstance(stmt.op, ast.Add)
                and _is_stringish(stmt.value)
            ):
                self._site(stmt, STR_CONCAT, index, name=target.id)
        self._expr(stmt.value, index)

    # expressions

    def _expr(
        self,
        node: ast.expr,
        index: int,
        bound_name: Optional[str] = None,
        store_target: bool = False,
    ) -> None:
        """Walk one expression tree: record loads, allocation sites and
        call-argument escapes. *bound_name* names the outermost node only."""
        if isinstance(node, ast.Name):
            if not store_target:
                self._load(node.id, index)
            return
        if isinstance(node, ast.Lambda):
            self._closure_site(node, index)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            self._site(node, COMPREHENSION, index, name=bound_name)
            self._comprehension_internals(node, index)
            return
        if isinstance(node, ast.GeneratorExp):
            self._site(node, GENEXP, index, name=bound_name)
            self._comprehension_internals(node, index)
            return
        if isinstance(node, ast.List):
            if node.elts:
                self._site(node, LIST_DISPLAY, index, name=bound_name)
        elif isinstance(node, ast.Set):
            self._site(node, SET_DISPLAY, index, name=bound_name)
        elif isinstance(node, ast.Dict):
            if node.keys:
                self._site(node, DICT_DISPLAY, index, name=bound_name)
        elif isinstance(node, ast.Tuple) and not store_target:
            if node.elts and not all(
                isinstance(e, ast.Constant) for e in node.elts
            ):
                self._site(node, TUPLE_DISPLAY, index, name=bound_name)
        elif isinstance(node, ast.Call):
            self._call(node, index, bound_name=bound_name)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, index)
            elif isinstance(child, ast.comprehension):  # pragma: no cover
                self._expr(child.iter, index)

    def _comprehension_internals(self, node: ast.expr, index: int) -> None:
        for generator in node.generators:  # type: ignore[attr-defined]
            self._expr(generator.iter, index)
            for condition in generator.ifs:
                self._expr(condition, index)
        for attr in ("elt", "key", "value"):
            inner = getattr(node, attr, None)
            if inner is not None:
                self._expr(inner, index)

    def _call(
        self, node: ast.Call, index: int, bound_name: Optional[str]
    ) -> None:
        func = node.func
        retaining = True
        if isinstance(func, ast.Name):
            if func.id == "sorted":
                self._site(node, SORTED_COPY, index, name=bound_name)
                retaining = False
            elif func.id in COPYING_FUNCS:
                if node.args or node.keywords:
                    self._site(node, COPY_CALL, index, name=bound_name)
                retaining = False
            elif func.id in NON_RETAINING_FUNCS:
                retaining = False
            elif self._is_dataclass_ctor(func.id):
                self._site(node, DATACLASS_CTOR, index, name=bound_name)
                retaining = True  # the instance holds its field arguments
        elif isinstance(func, ast.Attribute):
            self._expr(func.value, index)
            if func.attr in _APPEND_ARG0 or func.attr in _APPEND_ARG1:
                position = 0 if func.attr in _APPEND_ARG0 else 1
                if len(node.args) > position:
                    stored = _escaping_names_in(node.args[position])
                    receiver = func.value
                    if isinstance(receiver, ast.Name):
                        for name in stored:
                            self.contained.append((name, receiver.id))
                    else:
                        # appended into an attribute/subscript container:
                        # reachable beyond the call.
                        self.analysis.escaping |= stored
                retaining = False
            elif func.attr in NON_RETAINING_METHODS:
                retaining = False
        if retaining:
            for argument in list(node.args) + [
                keyword.value for keyword in node.keywords
            ]:
                self.analysis.escaping |= _escaping_names_in(argument)
        for argument in node.args:
            self._expr(argument, index)
        for keyword in node.keywords:
            self._expr(keyword.value, index)

    def _is_dataclass_ctor(self, name: str) -> bool:
        if self.module is None or self.graph is None:
            return False
        cls = self.graph.resolve_class(self.module, name)
        return cls is not None and cls.is_dataclass

    # bookkeeping

    def _load(self, name: str, index: int) -> None:
        self.analysis.loads.setdefault(name, []).append(index)

    def _site(
        self,
        node: ast.AST,
        kind: str,
        index: int,
        name: Optional[str] = None,
    ) -> None:
        self.analysis.sites.append(
            AllocSite(
                node=node,
                kind=kind,
                line=getattr(node, "lineno", 0),
                column=getattr(node, "col_offset", 0),
                name=name,
                loops=tuple(self.loop_stack),
                stmt_index=index,
            )
        )

    def _closure_site(self, node: ast.AST, index: int) -> None:
        self._site(node, CLOSURE, index)
        # Free names used inside the closure may outlive the call.
        params = set()
        args = getattr(node, "args", None)
        if args is not None:
            params = {
                a.arg
                for a in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                )
            }
            if args.vararg:
                params.add(args.vararg.arg)
            if args.kwarg:
                params.add(args.kwarg.arg)
        body = getattr(node, "body", None)
        body_nodes = body if isinstance(body, list) else [body]
        for part in body_nodes:
            for inner in ast.walk(part):
                if (
                    isinstance(inner, ast.Name)
                    and isinstance(inner.ctx, ast.Load)
                    and inner.id not in params
                ):
                    self.analysis.escaping.add(inner.id)


def _escape_fixpoint(analysis: FunctionAllocs, walker: _Walker) -> None:
    """Propagate escape through alias (symmetric) and containment edges."""
    escaping = analysis.escaping
    changed = True
    while changed:
        changed = False
        for left, right in walker.aliases:
            if left in escaping and right not in escaping:
                escaping.add(right)
                changed = True
            elif right in escaping and left not in escaping:
                escaping.add(left)
                changed = True
        for element, container in walker.contained:
            if container in escaping and element not in escaping:
                escaping.add(element)
                changed = True


def _escaping_names_in(node: ast.expr) -> Set[str]:
    """Names whose *object* flows out through expression *node*.

    ``return buf`` exposes ``buf``; ``return len(buf)`` does not — calls
    contribute nothing here because call-argument retention is judged at
    the call site itself by :meth:`_Walker._call`.
    """
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        names: Set[str] = set()
        for element in node.elts:
            names |= _escaping_names_in(element)
        return names
    if isinstance(node, ast.Dict):
        names = set()
        for element in list(node.keys) + list(node.values):
            if element is not None:
                names |= _escaping_names_in(element)
        return names
    if isinstance(node, ast.IfExp):
        return _escaping_names_in(node.body) | _escaping_names_in(node.orelse)
    if isinstance(node, ast.BinOp):
        # ``return left + right`` (list/tuple concatenation) copies both
        # operands' contents into the result; treating the operands as
        # escaping keeps their contained elements escaping too.
        return _escaping_names_in(node.left) | _escaping_names_in(node.right)
    if isinstance(node, ast.Starred):
        return _escaping_names_in(node.value)
    if isinstance(node, ast.Await):
        return _escaping_names_in(node.value)
    return set()


def _is_stringish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str)
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        return isinstance(func, ast.Name) and func.id in ("str", "repr")
    if isinstance(node, ast.BinOp):
        return _is_stringish(node.left) or _is_stringish(node.right)
    return False


def sites_of_kind(
    analysis: FunctionAllocs, kinds: Iterable[str]
) -> List[AllocSite]:
    """Convenience filter used by rules and tests."""
    wanted = frozenset(kinds)
    return [site for site in analysis.sites if site.kind in wanted]


__all__ = [
    "AllocSite",
    "FunctionAllocs",
    "LoopSpan",
    "CONTAINER_KINDS",
    "NON_RETAINING_FUNCS",
    "NON_RETAINING_METHODS",
    "analyze_function",
    "analyses_for",
    "sites_of_kind",
    "LIST_DISPLAY",
    "SET_DISPLAY",
    "DICT_DISPLAY",
    "TUPLE_DISPLAY",
    "COMPREHENSION",
    "GENEXP",
    "COPY_CALL",
    "SORTED_COPY",
    "DATACLASS_CTOR",
    "CLOSURE",
    "STR_CONCAT",
]
