"""Per-rule explanations for ``repro lint --explain RULE``.

Each entry pairs the catalogue rule with a rationale (why the invariant
matters for the reproduction) and a minimal bad/good example. The
examples are deliberately tiny — the point is the *shape* of the
violation and its idiomatic fix, not a realistic excerpt. CONTRIBUTING.md
carries the long-form catalogue; this module is the terminal-sized view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .catalogue import ALL_RULES


@dataclass(frozen=True)
class Explanation:
    rationale: str
    bad: str
    good: str


EXPLANATIONS: Dict[str, Explanation] = {
    "D1": Explanation(
        rationale=(
            "Process-global random.* calls draw from interpreter-wide "
            "state, so trial results depend on import order and on every "
            "other component that touched the global RNG. Each agent and "
            "each trial must own a seeded random.Random so runs replay "
            "bit-identically."
        ),
        bad="value = random.choice(self.domain.values)",
        good="value = self.rng.choice(self.domain.values)",
    ),
    "D2": Explanation(
        rationale=(
            "Wall-clock reads (time.time, datetime.now, perf counters) "
            "inside the simulated world leak host timing into results, "
            "breaking replay determinism. Simulated time is the cycle "
            "counter; host time belongs only to the harness."
        ),
        bad="started = time.time()",
        good="started_cycle = self.network.cycle",
    ),
    "D3": Explanation(
        rationale=(
            "Set iteration order varies with insertion history and hash "
            "randomization. Iterating a set to pick values or recipients "
            "makes the search trajectory depend on PYTHONHASHSEED."
        ),
        bad="for neighbor in self.neighbors: send(neighbor, msg)",
        good="for neighbor in sorted(self.neighbors): send(neighbor, msg)",
    ),
    "D4": Explanation(
        rationale=(
            "Every random.Random must be seeded from a value traceable to "
            "an explicit parameter (master seed, trial seed). An RNG built "
            "from a literal or from nothing silently re-uses one stream "
            "across trials and hides the seed from the experiment record."
        ),
        bad="self.rng = random.Random()",
        good="self.rng = random.Random(seed)",
    ),
    "P1": Explanation(
        rationale=(
            "Agents only interact through messages; a handler that "
            "mutates a received message reaches into another agent's "
            "state, which a real distributed system cannot do. Messages "
            "are frozen dataclasses — build a new one instead."
        ),
        bad="message.view[sender] = value",
        good="updated = replace(message, view=new_view)",
    ),
    "P2": Explanation(
        rationale=(
            "A payload mutated after send changes what the receiver "
            "observes retroactively — impossible over a real wire. "
            "Everything reachable from a sent message must be immutable "
            "from the send onward."
        ),
        bad="send(peer, OkMessage(self.agent_view)); self.agent_view[k] = v",
        good="send(peer, OkMessage(dict(self.agent_view)))",
    ),
    "A1": Explanation(
        rationale=(
            "Agent code that imports or references the transport layer "
            "couples the algorithm to the delivery model, so the same "
            "agent can no longer run under sync/async/dpor backends. "
            "Agents return outgoing (recipient, message) pairs; the "
            "network decides how they travel."
        ),
        bad="self.transport.deliver(peer, message)",
        good="outgoing.append((peer, message))",
    ),
    "A2": Explanation(
        rationale=(
            "Event-queue keys that tie (or that compare unlike types) "
            "make heap pop order depend on insertion order. Keys must be "
            "totally ordered and carry the agent id as the final "
            "tie-break so every backend pops identically."
        ),
        bad="heappush(queue, (deliver_at, message))",
        good="heappush(queue, (deliver_at, seq, agent_id, message))",
    ),
    "M1": Explanation(
        rationale=(
            "The paper's headline measure is constraint checks. A "
            "consistency test that bypasses the counted API "
            "(is_violated, counted store queries) silently deflates "
            "reported check counts and breaks cross-run comparability."
        ),
        bad="if all(view.get(v) != val for v, val in nogood.pairs): ...",
        good="if self.store.is_violated(nogood, view): ...",
    ),
    "R1": Explanation(
        rationale=(
            "Neighbor state carries a monotonic counter so stale "
            "messages cannot roll the view backwards. Writing the view "
            "dict directly bypasses the staleness guard."
        ),
        bad="self.view._values[sender] = value",
        good="self.view.update(sender, value, counter)",
    ),
    "R2": Explanation(
        rationale=(
            "Handlers that commit decisions (value changes, nogood "
            "sends) must produce the same outcome under any legal "
            "message reordering, or the DPOR explorer reports schedule-"
            "dependent results. Read all pending input before deciding."
        ),
        bad="def on_ok(self, msg): self.pick_value()  # per-message commit",
        good="def step(self, batch): ...; self.pick_value()  # once per cycle",
    ),
    "R3": Explanation(
        rationale=(
            "Methods named like consultations (violated_*, count_*, "
            "is_*) are called from paths that assume the store is "
            "unchanged afterwards; a mutation hidden inside one "
            "invalidates watched-literal indexes and replay parity."
        ),
        bad="def violated_higher(self, ...): self._cache.clear(); ...",
        good="def violated_higher(self, ...): ...  # read-only; mutate in add()",
    ),
    "H1": Explanation(
        rationale=(
            "A container allocated inside a hot per-message loop and "
            "dropped every iteration is pure allocator churn: the bytes "
            "are garbage before the next message arrives. Hoist the "
            "buffer to __init__ and clear() it, or restructure so no "
            "temporary is needed (e.g. a counted store query instead of "
            "building a list just to len() it)."
        ),
        bad=(
            "for message in messages:\n"
            "    conflicts = [n for n in self.store if violated(n)]\n"
            "    if conflicts: ..."
        ),
        good=(
            "if self.store.count_violated_higher(view, value, prio): ...\n"
            "# or: buf = self._scratch; buf.clear(); buf.extend(...)"
        ),
    ),
    "H2": Explanation(
        rationale=(
            "A container whose shape never changes — a literal display "
            "or a copy of a constant attribute — rebuilt on every "
            "dispatch allocates identical garbage per message. Build it "
            "once (module level or __init__) and reuse it."
        ),
        bad="def step(self, msgs):\n    values = list(self.domain)",
        good="def __init__(self):\n    self._values = list(self.domain)",
    ),
    "H3": Explanation(
        rationale=(
            "sorted() of maintained instance state on every dispatch "
            "re-copies and re-sorts data that changed at most once since "
            "the last call. Maintain the sorted form at mutation time, "
            "or cache it behind a dirty flag."
        ),
        bad="def step(self, msgs):\n    for peer in sorted(self.neighbors): ...",
        good=(
            "def add_neighbor(self, peer):\n"
            "    insort(self._sorted_neighbors, peer)"
        ),
    ),
    "H4": Explanation(
        rationale=(
            "A lambda or def inside hot dispatch allocates a fresh "
            "function object (and often a cell for its closure) per "
            "call. Hoist it to module level, or use operator.itemgetter/"
            "attrgetter which allocate nothing per call."
        ),
        bad="ranked = sorted(pairs, key=lambda p: p[1])",
        good=(
            "_BY_SCORE = itemgetter(1)  # module level\n"
            "ranked = sorted(pairs, key=_BY_SCORE)"
        ),
    ),
    "S1": Explanation(
        rationale=(
            "Everything that crosses a process boundary — message "
            "payloads, pool tasks, worker init arguments — must pickle. "
            "Lambdas, closures over locals, open file/socket handles and "
            "live RNG objects do not (or, for RNGs, ship state that then "
            "diverges), so they fail only at shard time, on a remote "
            "host. Ship plain data and registry names; rebuild behaviour "
            "on the receiving side."
        ),
        bad="pool.submit(lambda: solve(problem, rng))",
        good=(
            "pool.submit(solve_by_name, problem, algorithm_name, seed)\n"
            "# worker rebuilds the spec and derives its own RNG stream"
        ),
    ),
    "S2": Explanation(
        rationale=(
            "A blocking call (sleep, file or socket I/O, input) inside "
            "message-handler dispatch stalls the whole shard: one worker "
            "thread hosts many agents, and the simulated cycle cannot "
            "close until every handler returns. Handlers compute and "
            "return outgoing messages; I/O belongs to the harness."
        ),
        bad="def step(self, msgs):\n    time.sleep(0.01)  # throttle",
        good="def step(self, msgs):\n    return outgoing  # harness paces",
    ),
    "S3": Explanation(
        rationale=(
            "A mutable object aliased by two agents (a shared collector, "
            "list or dict that agent code mutates) only works because "
            "the agents happen to share a process; on the sharded "
            "runtime each process has its own copy and the writes "
            "silently diverge. Give each agent private state and merge "
            "at a harness-owned boundary."
        ),
        bad=(
            "for aid in problem.agents:\n"
            "    agents.append(Agent(aid, shared_metrics))  "
            "# agents mutate it"
        ),
        good=(
            "log = metrics.generation_log_for(aid)  # private per agent\n"
            "# collector merges logs at cycle boundaries"
        ),
    ),
    "S4": Explanation(
        rationale=(
            "id() values and unseeded hash() of str/bytes differ across "
            "processes and hosts (address layout, PYTHONHASHSEED), so a "
            "heap key, sort key or tie-break built from them makes "
            "shards disagree on ordering — and the run unreproducible. "
            "Order by stable domain keys: agent id, sequence number, "
            "cycle."
        ),
        bad="heappush(queue, (priority, id(message), message))",
        good="heappush(queue, (priority, seq, agent_id, message))",
    ),
    "S5": Explanation(
        rationale=(
            "An emitted message type with no handler is silently dropped "
            "at the receiver — on one host that shows up in a trace, "
            "across hosts it is just a hang (the APO completeness "
            "analyses show such protocol holes are fatal). A handler for "
            "a never-sent type is dead protocol surface that drifts out "
            "of date. Emit and dispatch sets must match exactly."
        ),
        bad=(
            "send(peer, ProbeMessage(...))  "
            "# no isinstance(ProbeMessage) anywhere"
        ),
        good=(
            "elif isinstance(message, ProbeMessage):\n"
            "    outgoing.extend(self._on_probe(message))"
        ),
    ),
    "X0": Explanation(
        rationale=(
            "A '# repro-lint: disable=RULE' without a ' -- reason' "
            "justification is an unreviewable suppression. The reason is "
            "the review artifact: it must say why the invariant does not "
            "apply here. X0 itself cannot be disabled."
        ),
        bad="x = random.random()  # repro-lint: disable=D1",
        good=(
            "x = random.random()  "
            "# repro-lint: disable=D1 -- harness-only jitter, not simulated"
        ),
    ),
}


def explain_rule(rule_id: str) -> Optional[str]:
    """Render the explanation block for *rule_id*, or None if unknown."""
    explanation = EXPLANATIONS.get(rule_id)
    if explanation is None:
        return None
    if rule_id == "X0":
        title = "control comments"
        doc = (
            "X0 — a disable= comment without justification is itself a "
            "finding."
        )
    else:
        rule = next(rule for rule in ALL_RULES if rule.id == rule_id)
        title = rule.title
        doc = (rule.__doc__ or "").strip().splitlines()[0]
    lines = [
        f"{rule_id}  {title}",
        f"  {doc}",
        "",
        "Why:",
    ]
    lines.extend(f"  {line}" for line in _wrap(explanation.rationale))
    lines.append("")
    lines.append("Bad:")
    lines.extend(f"  {line}" for line in explanation.bad.splitlines())
    lines.append("")
    lines.append("Good:")
    lines.extend(f"  {line}" for line in explanation.good.splitlines())
    return "\n".join(lines)


def _wrap(text: str, width: int = 70) -> list:
    words = text.split()
    lines, current = [], ""
    for word in words:
        if current and len(current) + 1 + len(word) > width:
            lines.append(current)
            current = word
        else:
            current = f"{current} {word}" if current else word
    if current:
        lines.append(current)
    return lines


__all__ = ["EXPLANATIONS", "Explanation", "explain_rule"]
