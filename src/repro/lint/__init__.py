"""repro-lint: AST-based checks for the invariants the paper's results rest on.

The simulator's correctness contract has three parts no unit test can pin
locally:

* **Determinism** — a run is a pure function of its seed. Rules D1 (no
  global/unseeded ``random``), D2 (no wall-clock reads in simulated code)
  and D3 (no order-sensitive iteration over sets) guard it.
* **Agent isolation** — agents communicate only through messages. Rule P1
  guards it (frozen message dataclasses; no mutation of received messages).
* **Metric accounting** — every nogood consistency test is counted toward
  ``maxcck``. Rule M1 guards it (no uncounted predicates in agent code).

Run as ``python -m repro.lint src/ tests/`` or ``repro lint``. Findings can
be suppressed per line with ``# repro-lint: disable=<RULE> -- <why>`` — the
justification is mandatory. See CONTRIBUTING.md for the rule catalogue.
"""

from .findings import Finding
from .engine import lint_paths, lint_file, lint_source, load_baseline
from .rules import ALL_RULES, rule_by_id
from .cli import main

__all__ = [
    "Finding",
    "ALL_RULES",
    "rule_by_id",
    "lint_paths",
    "lint_file",
    "lint_source",
    "load_baseline",
    "main",
]
