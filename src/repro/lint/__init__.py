"""repro-lint: whole-program checks for the invariants the paper rests on.

The simulator's correctness contract has four parts no unit test can pin
locally:

* **Determinism** — a run is a pure function of its seed. Rules D1 (no
  global/unseeded ``random``), D2 (no wall-clock reads in simulated code),
  D3 (no order-sensitive iteration over sets) and D4 (RNG master seeds
  must derive from an explicit parameter, traced across assignments,
  closures, dataclass fields and factory helpers) guard it.
* **Agent isolation** — agents communicate only through messages. Rules P1
  (frozen message dataclasses; no mutation of received messages) and P2
  (no mutation of a payload after it is sent; no mutable containers
  inside frozen payload dataclasses) guard it.
* **Protocol conformance** — the runtime's delivery machinery stays out of
  agent code and stays deterministic. Rules A1 (no transport/mailbox
  references from ``SimulatedAgent`` subclasses) and A2 (event-queue heap
  keys totally ordered: sequence tie-break before payload, agent id
  present) guard it.
* **Metric accounting** — every nogood consistency test is counted toward
  ``maxcck``. Rule M1 guards it (no uncounted predicates in agent code).
* **Allocation discipline** — the per-message dispatch paths the watched
  kernel made fast must not regrow Python-side garbage. Rules H1 (no
  loop-local temporaries in hot loops), H2 (no per-dispatch constant-shape
  containers), H3 (no repeated ``sorted()`` of maintained state) and H4
  (no closure allocation in hot dispatch) guard it, over a hot set derived
  from the committed ``hotpaths.toml`` plus the call-edge closure of the
  agent-handler and store-consultation surfaces (see
  :mod:`repro.lint.hotpaths` and the escape analysis in
  :mod:`repro.lint.alloc`).

File-local rules work from a single AST; the whole-program rules share a
:class:`ProjectGraph` (one parse per file, import resolution, subclass
closures, memoised dataflow). ``repro lint --check-trace run.jsonl``
additionally replays a recorded trace and asserts the runtime invariants
(clock monotonicity, causal delivery, the FIFO clamp).

Run as ``python -m repro.lint src/ tests/`` or ``repro lint``. Findings can
be suppressed per line with ``# repro-lint: disable=<RULE> -- <why>`` — the
justification is mandatory. See CONTRIBUTING.md for the rule catalogue.
"""

from .findings import Finding
from .engine import lint_paths, lint_file, lint_source, load_baseline
from .catalogue import ALL_RULES, rule_by_id
from .graph import ProjectGraph
from .dataflow import (
    FactorySummary,
    build_seed_env,
    collect_events,
    compute_factory_summaries,
)
from .trace_check import check_trace_file
from .output import to_json, to_sarif
from .cli import main
from .hotpaths import HotConfig, HotSet, hot_set_for, load_hot_config
from .alloc import AllocSite, FunctionAllocs, analyze_function

__all__ = [
    "Finding",
    "ALL_RULES",
    "rule_by_id",
    "ProjectGraph",
    "FactorySummary",
    "build_seed_env",
    "collect_events",
    "compute_factory_summaries",
    "lint_paths",
    "lint_file",
    "lint_source",
    "load_baseline",
    "check_trace_file",
    "to_json",
    "to_sarif",
    "main",
    "HotConfig",
    "HotSet",
    "hot_set_for",
    "load_hot_config",
    "AllocSite",
    "FunctionAllocs",
    "analyze_function",
]
