"""The assembled rule registry: file-local rules plus whole-program rules.

Lives in its own module so :mod:`repro.lint.rules_program` can import the
:class:`~repro.lint.rules.Rule` base without a cycle. Everything that needs
"all rules" (the engine, the CLI, suppression validation) imports from
here.
"""

from __future__ import annotations

from typing import Set, Tuple

from .rules import BASE_RULES, Rule
from .rules_alloc import ALLOC_RULES
from .rules_dist import DIST_RULES
from .rules_effects import EFFECT_RULES
from .rules_program import PROGRAM_RULES

ALL_RULES: Tuple[Rule, ...] = (
    BASE_RULES + PROGRAM_RULES + EFFECT_RULES + ALLOC_RULES + DIST_RULES
)

#: Rule ids accepted in disable= comments (X0 itself cannot be disabled:
#: a malformed suppression must be fixed, not suppressed).
KNOWN_RULE_IDS: Set[str] = {rule.id for rule in ALL_RULES}


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(rule_id)
