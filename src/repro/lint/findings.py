"""The finding record every lint rule produces.

A finding is a location plus two human-facing strings: what invariant the
code breaks, and a concrete *fix hint* — the checker refuses code, so it
owes the author the way out.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    hint: str = field(default="", compare=False)
    #: The stripped source line, used for baseline fingerprinting (line
    #: numbers drift; the offending text rarely does).
    source: str = field(default="", compare=False)
    #: Fingerprint anchor: the repro-relative scope (or the pragma-declared
    #: module) when known, set by the engine after rule checks. Falls back
    #: to the path, so fingerprints survive file renames and re-rooted
    #: checkouts whenever a stable scope exists.
    anchor: str = field(default="", compare=False)

    def format(self, show_hint: bool = True) -> str:
        text = f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"
        if show_hint and self.hint:
            text += f"\n    fix: {self.hint}"
        return text

    @property
    def fingerprint(self) -> str:
        """Baseline identity: rule + anchor + offending text.

        Line-number free (lines drift) and scope-anchored (paths drift
        with renames and lint roots); SARIF partialFingerprints and the
        baseline file both use exactly this string.
        """
        return f"{self.rule}\t{self.anchor or self.path}\t{self.source}"
