"""Walking files, applying rules, suppressions and the baseline.

Scoping: a rule like D1 only applies under ``algorithms/`` — the engine
computes every file's *repro-relative* path (the part after ``src/repro/``)
and hands it to the rules. Files outside the package (tests, tools) get no
scope, so only repo-wide checks (P1's frozen-message half) run there; a
``# repro-lint: module=<relpath>`` pragma can pin a scope explicitly, which
is how the fixture files under ``tests/lint/fixtures/`` exercise
directory-scoped rules.

The baseline file holds fingerprints (rule + path + offending source text,
line-number free) of findings that are *known and deliberately deferred*;
everything else fails the run. An empty or absent baseline means the tree
must be clean.
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
import os
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

from .catalogue import ALL_RULES, KNOWN_RULE_IDS
from .findings import Finding
from .graph import ProjectGraph
from .rules import Rule
from .suppressions import parse_suppressions

#: Path patterns skipped by default: lint-rule fixtures contain deliberate
#: violations (their tests lint them explicitly, one file at a time).
DEFAULT_EXCLUDES = ("*fixtures*",)

#: Default baseline filename, looked up in the current directory.
BASELINE_FILENAME = "repro-lint.baseline"


def scope_of(path: str) -> Optional[str]:
    """The repro-relative path of *path*, or None when outside the package.

    ``src/repro/algorithms/awc.py`` → ``algorithms/awc.py``;
    ``tests/lint/test_rules.py`` → None.
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            remainder = parts[index + 1:]
            if remainder:
                return "/".join(remainder)
    return None


def lint_source(
    source: str,
    path: str,
    scope: Optional[str] = None,
    rules: Sequence[Rule] = ALL_RULES,
    graph: Optional[ProjectGraph] = None,
) -> List[Finding]:
    """Lint one file's text; *scope* overrides the path-derived scope.

    When no *graph* is given a single-file graph is built on the fly, so
    the whole-program rules still run (seeing only this file) — that is
    what the fixture tests exercise. :func:`lint_paths` builds one shared
    graph over every file of the run instead.
    """
    suppressions = parse_suppressions(source, KNOWN_RULE_IDS)
    if scope is None:
        scope = suppressions.module_override or scope_of(path)
    if graph is None:
        graph = ProjectGraph.build_from_sources([(path, source, scope)])
    module = graph.module_at(path)
    if module is not None:
        tree = module.tree
    else:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 0) or 1,
                    rule="X0",
                    message=f"file does not parse: {error.msg}",
                    hint="repro-lint needs valid Python to check invariants",
                    source="",
                    anchor=scope or path.replace(os.sep, "/"),
                )
            ]
    lines = source.splitlines()
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies(scope):
            continue
        for finding in rule.check(tree, path, scope, lines, graph):
            if not suppressions.is_suppressed(finding.line, finding.rule):
                findings.append(finding)
    for bad in suppressions.bad:
        source_line = (
            lines[bad.line - 1].strip() if 0 < bad.line <= len(lines) else ""
        )
        findings.append(
            Finding(
                path=path,
                line=bad.line,
                column=bad.column + 1,
                rule="X0",
                message=bad.message,
                hint=(
                    "every suppression must say why the invariant holds "
                    "anyway; X0 itself cannot be disabled"
                ),
                source=source_line,
            )
        )
    anchor = scope if scope is not None else path.replace(os.sep, "/")
    findings = [
        dataclasses.replace(finding, anchor=anchor) for finding in findings
    ]
    findings.sort()
    return findings


def lint_file(
    path: str,
    rules: Sequence[Rule] = ALL_RULES,
    graph: Optional[ProjectGraph] = None,
) -> List[Finding]:
    """Lint one file on disk (against *graph* when part of a larger run)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, rules=rules, graph=graph)


def iter_python_files(
    paths: Iterable[str], excludes: Sequence[str] = DEFAULT_EXCLUDES
) -> List[str]:
    """Expand *paths* (files or directories) into sorted .py files."""
    selected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                selected.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs.sort()
            dirs[:] = [d for d in dirs if not d.startswith((".", "__pycache__"))]
            for name in sorted(files):
                if name.endswith(".py"):
                    selected.append(os.path.join(root, name))
    normalized = []
    for path in selected:
        display = path.replace(os.sep, "/")
        if any(fnmatch.fnmatch(display, pattern) for pattern in excludes):
            continue
        normalized.append(path)
    return normalized


def lint_paths(
    paths: Iterable[str],
    baseline: Optional[Set[str]] = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Finding]:
    """Lint every Python file under *paths*, minus baselined findings.

    Builds the :class:`~repro.lint.graph.ProjectGraph` **once** over every
    selected file and shares it across all rules and files — each file is
    parsed a single time, and whole-program analyses (the RNG-factory
    fixpoint) are memoised on the graph. This sharing is what keeps a
    full-tree run inside the bench budget (see ``BENCH_lint.json``).
    """
    findings: List[Finding] = []
    files = iter_python_files(paths, excludes)
    graph = ProjectGraph.build(files)
    for path in files:
        findings.extend(lint_file(path, rules=rules, graph=graph))
    if baseline:
        findings = [
            finding
            for finding in findings
            if _baseline_key(finding) not in baseline
        ]
    return findings


def _baseline_key(finding: Finding) -> str:
    # The engine stamps every finding with a scope anchor (repro-relative
    # path, or the pragma-declared module), so the baseline is stable
    # whether the tree is linted as `src/` or `src/repro/` or from another
    # working directory — and across file renames that keep the scope.
    if finding.anchor:
        return finding.fingerprint
    scope = scope_of(finding.path)
    anchor = scope if scope is not None else finding.path.replace(os.sep, "/")
    return f"{finding.rule}\t{anchor}\t{finding.source}"


#: Public name — ``--check-baseline-shrink`` compares these fingerprints
#: against the committed baseline to refuse any growth.
baseline_key = _baseline_key


def load_baseline(path: str) -> Set[str]:
    """Read a baseline file into a set of fingerprints (absent file: empty)."""
    entries: Set[str] = set()
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            entries.add(line)
    return entries


def format_baseline(findings: Sequence[Finding]) -> str:
    """Render *findings* as baseline file content."""
    header = (
        "# repro-lint baseline — findings deliberately deferred.\n"
        "# One line per finding: RULE<TAB>path<TAB>offending source text.\n"
        "# Regenerate with: python -m repro.lint <paths> --write-baseline\n"
        "# An empty baseline means the tree must be clean. Remove lines as\n"
        "# the code they point at gets fixed.\n"
    )
    body = "\n".join(
        sorted({_baseline_key(finding) for finding in findings})
    )
    return header + (body + "\n" if body else "")
