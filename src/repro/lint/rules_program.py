"""The whole-program rules: D4, P2, A1, A2.

These are the checks PR 2's file-local rules could not express — each one
consults the :class:`~repro.lint.graph.ProjectGraph` and the
:mod:`~repro.lint.dataflow` layer rather than a single AST:

=====  ======================================================================
D4     RNG provenance. Every RNG (or derived seed) created in simulated
       code must trace its master seed to an explicit parameter — across
       assignments, closures, dataclass fields, and factory helpers. A
       literal master ("``Random(42)``") silently couples every trial to
       one hidden stream; an entropy master ("``Random()``") destroys
       reproducibility outright. The taint engine sees through factories:
       ``build_agents(seed)`` → ``derive_rng(seed, ...)`` is fine, and
       ``build_agents(99)`` is flagged *at the call site* that launders
       the provenance.
P2     Mutation after send. A payload handed to ``send``/``post``/
       ``heappush`` is shared structure from that line on; mutating it
       afterwards rewrites a message already in flight — the in-process
       transport tolerates the aliasing, the socket transport's pickle
       boundary does not, and the two diverge. The second half flags
       *shallow* freezes: a ``frozen=True`` payload dataclass with a
       mutable-container field is the same bug one level down.
A1     Agent/transport separation. Agents interact with the world only
       through returned ``Outgoing`` pairs (see
       :class:`~repro.runtime.agent.SimulatedAgent`); any reference to a
       transport, mailbox, network, or inbox from agent code breaks the
       cost accounting and the read-phase discipline the simulators
       guarantee.
A2     Total heap order. Event-queue keys in ``runtime/`` must carry a
       deterministic tie-break (send sequence) *and* an agent id before
       any message payload; otherwise equal timestamps fall through to
       comparing payload objects — unorderable at best, hash-order
       nondeterminism at worst.
=====  ======================================================================
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, Optional, Sequence, Set, Tuple

from .dataflow import (
    NO_MASTER,
    SeedContext,
    _bind_arguments,
    _resolve_callable,
    build_seed_env,
    collect_events,
    factory_summaries,
    is_seed_derived,
    iter_functions,
    rng_master_of,
    summary_key,
)
from .findings import Finding
from .graph import ClassInfo, ModuleInfo, ProjectGraph
from .rules import RANDOM_SOURCE_MODULE, SIMULATED_DIRS, Rule, _in_dirs

#: Identifier fragments that mark transport-layer objects (A1).
TRANSPORT_FRAGMENTS = ("transport", "mailbox", "network", "inbox", "socket")

#: Identifier fragments marking a deterministic tie-break component (A2).
SEQUENCE_FRAGMENTS = ("seq", "count", "tick", "serial")

#: Identifiers naming an agent-id component of a heap key (A2).
AGENT_ID_NAMES = frozenset(
    {"sender", "recipient", "agent", "agent_id", "owner", "src", "dst",
     "origin", "target"}
)

#: Identifiers that look like a message payload inside a heap key (A2).
PAYLOAD_NAMES = frozenset({"message", "msg", "payload", "item", "event"})

#: Annotation heads that denote mutable containers (P2's shallow-freeze
#: half). ``Optional``/``Union`` are looked through.
MUTABLE_ANNOTATIONS = frozenset(
    {"list", "dict", "set", "List", "Dict", "Set", "DefaultDict",
     "defaultdict", "deque", "Deque", "bytearray", "Counter", "OrderedDict",
     "MutableMapping", "MutableSequence", "MutableSet"}
)

_WRAPPER_ANNOTATIONS = frozenset({"Optional", "Union", "Final", "ClassVar"})

_ElementPredicate = Callable[[str], bool]


def _function_calls(
    function: ast.AST,
) -> Iterator[ast.Call]:
    """Calls lexically in *function*'s own body, nested defs excluded
    (nested functions are visited as their own unit)."""

    def visit(node: ast.AST) -> Iterator[ast.Call]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.Call):
                yield child
            yield from visit(child)

    if isinstance(function, ast.Call):
        yield function
    yield from visit(function)


class RngProvenanceRule(Rule):
    """D4 — RNG master seeds must derive from an explicit parameter."""

    id = "D4"
    title = "RNG provenance taint"

    def applies(self, scope: Optional[str]) -> bool:
        return (
            _in_dirs(scope, SIMULATED_DIRS) and scope != RANDOM_SOURCE_MODULE
        )

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        module = graph.module_at(path)
        if module is None:
            return
        summaries = factory_summaries(graph)
        hint = (
            "thread the trial seed in as a parameter and derive the stream "
            "from it (derive_rng(seed, *tags)); a literal or implicit "
            "master detaches this RNG from the trial's reproducible state"
        )
        # Module level: statements outside any def share an empty seed env.
        ctx = SeedContext(
            module=module, graph=graph, summaries=summaries, names=set()
        )
        for call in _function_calls(module.tree):
            yield from self._check_call(call, ctx, path, lines, hint)
        for function, class_info, enclosing in iter_functions(module):
            env = build_seed_env(function.node, enclosing)  # type: ignore[arg-type]
            ctx = SeedContext(
                module=module,
                graph=graph,
                summaries=summaries,
                names=env,
                class_info=class_info,
            )
            for call in _function_calls(function.node):
                yield from self._check_call(call, ctx, path, lines, hint)

    def _check_call(
        self,
        call: ast.Call,
        ctx: SeedContext,
        path: str,
        lines: Sequence[str],
        hint: str,
    ) -> Iterator[Finding]:
        assert ctx.module is not None
        master = rng_master_of(call, ctx.module)
        if master is NO_MASTER:
            yield self._finding(
                call, path, lines,
                "RNG created with no master seed — it is seeded from OS "
                "entropy, so no two runs can agree",
                hint,
            )
            return
        if master is not None:
            if not is_seed_derived(master, ctx):  # type: ignore[arg-type]
                yield self._finding(
                    call, path, lines,
                    "RNG master seed does not derive from an explicit seed "
                    "parameter — provenance ends at "
                    f"'{ast.unparse(master)}'",  # type: ignore[arg-type]
                    hint,
                )
            return
        callee = _resolve_callable(call, ctx.module, ctx.graph)
        if callee is None:
            return
        summary = ctx.summaries.get(summary_key(callee))
        if summary is None or not summary.creates_rng:
            return
        if summary.unseeded:
            yield self._finding(
                call, path, lines,
                f"call to '{ast.unparse(call.func)}', which seeds an RNG "
                "from a non-parameter source — the nondeterminism is "
                "inherited here",
                hint,
            )
            return
        for param, argument in _bind_arguments(call, callee):
            if param in summary.seed_params and not is_seed_derived(
                argument, ctx
            ):
                yield self._finding(
                    call, path, lines,
                    f"'{ast.unparse(call.func)}' feeds parameter "
                    f"'{param}' into an RNG master seed, but the argument "
                    f"'{ast.unparse(argument)}' does not derive from a "
                    "seed parameter",
                    hint,
                )


class MutationAfterSendRule(Rule):
    """P2 — payloads are immutable from the send onward, all the way down."""

    id = "P2"
    title = "no mutation after send"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, SIMULATED_DIRS)

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        module = graph.module_at(path)
        if module is None:
            return
        escape_hint = (
            "a sent object is shared with the transport; copy before "
            "sending (copy-on-send) or rebuild the payload instead of "
            "mutating it — the socket transport pickles at send time and "
            "would silently disagree with the in-process one"
        )
        for function, _class_info, _enclosing in iter_functions(module):
            node = function.node
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            events = collect_events(node)
            for mutation, send in events.mutations_after_send():
                yield self._finding(
                    mutation.node, path, lines,
                    f"'{mutation.name}' is mutated ({mutation.verb}) after "
                    f"being sent on line {send.line} — the in-flight copy "
                    "changes underneath the transport",
                    escape_hint,
                )
        # The shallow-freeze half is scoped to where payloads actually
        # cross a transport (messages, reports, deliveries). Frozen
        # instance descriptors under problems/ are built once per trial
        # and never travel mid-run, so a Dict field there is fine.
        if _in_dirs(scope, ("runtime/", "algorithms/")):
            for cls in module.classes.values():
                yield from self._check_shallow_freeze(cls, path, lines)

    def _check_shallow_freeze(
        self, cls: ClassInfo, path: str, lines: Sequence[str]
    ) -> Iterator[Finding]:
        if not (cls.is_dataclass and cls.frozen):
            return
        for name, annotation in cls.fields.items():
            head = _annotation_head(annotation)
            if head in MUTABLE_ANNOTATIONS:
                yield self._finding(
                    annotation, path, lines,
                    f"frozen dataclass {cls.name} has a mutable-container "
                    f"field '{name}: {ast.unparse(annotation)}' — frozen is "
                    "shallow, so the container can still be mutated after "
                    "the instance is sent",
                    "freeze the collection too: a Tuple[...] (of pairs for "
                    "mappings) or frozenset keeps in-process and socket "
                    "transports byte-identical",
                )


def _annotation_head(annotation: ast.expr) -> Optional[str]:
    """The head identifier of an annotation, looking through
    Optional/Union/Final wrappers: ``Optional[Dict[int, str]]`` → Dict."""
    node: ast.expr = annotation
    for _ in range(6):
        if isinstance(node, ast.Subscript):
            head = _simple_name(node.value)
            if head in _WRAPPER_ANNOTATIONS:
                inner = node.slice
                elements = (
                    list(inner.elts)
                    if isinstance(inner, ast.Tuple)
                    else [inner]
                )
                for element in elements:
                    nested = _annotation_head(element)
                    if nested in MUTABLE_ANNOTATIONS:
                        return nested
                return None
            node = node.value
            continue
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotation: cheap textual head check.
            text = node.value.strip()
            for candidate in MUTABLE_ANNOTATIONS:
                if text.startswith(candidate + "[") or text == candidate:
                    return candidate
            return None
        return _simple_name(node)
    return None


def _simple_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class AgentTransportRule(Rule):
    """A1 — agent code never references the transport layer."""

    id = "A1"
    title = "agent/transport separation"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, ("algorithms/",))

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        module = graph.module_at(path)
        if module is None:
            return
        agent_classes: Set[str] = graph.cached(  # type: ignore[assignment]
            "simulated-agent-closure",
            lambda: graph.subclasses_of("SimulatedAgent"),
        )
        hint = (
            "agents communicate only through returned Outgoing pairs; the "
            "simulator owns delivery, timing, and the read phase — move "
            "transport interaction into the runtime layer"
        )
        for cls in module.classes.values():
            if cls.name not in agent_classes:
                continue
            for method in cls.methods.values():
                node = method.node
                for inner in ast.walk(node):
                    identifier: Optional[str] = None
                    if isinstance(inner, ast.Name):
                        identifier = inner.id
                    elif isinstance(inner, ast.Attribute):
                        identifier = inner.attr
                    elif isinstance(inner, ast.arg):
                        identifier = inner.arg
                    if identifier is None:
                        continue
                    lowered = identifier.lower()
                    if any(
                        fragment in lowered
                        for fragment in TRANSPORT_FRAGMENTS
                    ):
                        yield self._finding(
                            inner, path, lines,
                            f"agent method {cls.name}.{method.name} "
                            f"references transport-layer object "
                            f"'{identifier}' — agents must not touch the "
                            "delivery machinery (mailbox reads happen only "
                            "in the simulator's read phase)",
                            hint,
                        )


class HeapKeyOrderRule(Rule):
    """A2 — event-queue keys are totally ordered and carry an agent id."""

    id = "A2"
    title = "totally ordered heap keys"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, ("runtime/",))

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        hint = (
            "shape the key as (time, sequence, agent ids..., payload): the "
            "monotone send sequence makes the order total before comparison "
            "can ever reach the unorderable payload, and the agent id keeps "
            "it meaningful across transports"
        )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_push = (
                isinstance(func, ast.Attribute) and func.attr == "heappush"
            ) or (isinstance(func, ast.Name) and func.id == "heappush")
            if not is_push or len(node.args) < 2:
                continue
            key = node.args[1]
            if not isinstance(key, ast.Tuple):
                yield self._finding(
                    node, path, lines,
                    "heap key is not a tuple — ordering falls back to "
                    "comparing the pushed object itself, which is not "
                    "totally ordered across runs",
                    hint,
                )
                continue
            sequence_at = self._first_index(key, self._is_sequence_like)
            agent_at = self._first_index(key, self._is_agent_like)
            payload_at = self._first_index(key, self._is_payload_like)
            if sequence_at is None:
                yield self._finding(
                    node, path, lines,
                    "heap key has no deterministic tie-break component — "
                    "equal timestamps compare the remaining elements, and "
                    "nothing monotone separates them",
                    hint,
                )
            elif payload_at is not None and payload_at < sequence_at:
                yield self._finding(
                    node, path, lines,
                    "heap key compares the message payload before the "
                    "tie-break sequence — equal timestamps reach the "
                    "unorderable payload first",
                    hint,
                )
            if agent_at is None:
                yield self._finding(
                    node, path, lines,
                    "heap key does not include an agent id — deliveries "
                    "cannot be attributed deterministically per agent, and "
                    "cross-transport replays lose the channel identity",
                    hint,
                )

    @staticmethod
    def _first_index(
        key: ast.Tuple, predicate: _ElementPredicate
    ) -> Optional[int]:
        for index, element in enumerate(key.elts):
            name = _simple_name(element)
            if name is not None and predicate(name.lower()):
                return index
        return None

    @staticmethod
    def _is_sequence_like(name: str) -> bool:
        return any(fragment in name for fragment in SEQUENCE_FRAGMENTS)

    @staticmethod
    def _is_agent_like(name: str) -> bool:
        return name in AGENT_ID_NAMES or "agent" in name

    @staticmethod
    def _is_payload_like(name: str) -> bool:
        return name in PAYLOAD_NAMES


PROGRAM_RULES: Tuple[Rule, ...] = (
    RngProvenanceRule(),
    MutationAfterSendRule(),
    AgentTransportRule(),
    HeapKeyOrderRule(),
)
