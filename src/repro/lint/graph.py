"""The project symbol/import graph shared by every whole-program rule.

PR 2's rules were file-local: each saw one ``ast.Module`` and nothing
else. The bug classes that bite when the runtime goes distributed — RNG
seeds laundered through helper functions, payloads aliased across a
transport boundary, agent code reaching around the message protocol — are
*inter-procedural* by nature, so the analyzer needs one shared picture of
the whole tree:

* every file parsed **once** (the engine reuses these ASTs instead of
  re-parsing per rule — this cache is what keeps a full-tree run under the
  10-second budget);
* a symbol table per module: top-level functions, classes (with dataclass
  flags, ``frozen=``, and annotated fields), and methods;
* import resolution repro-relative: ``from ..runtime.random_source import
  derive_rng`` inside ``algorithms/awc.py`` resolves to the function object
  in ``runtime/random_source.py`` when that file is part of the run;
* a subclass closure, so a rule can ask "every class that is (transitively)
  a :class:`~repro.runtime.agent.SimulatedAgent`" without hard-coding the
  algorithm modules.

The graph is deliberately name-based and best-effort: unresolvable imports
(stdlib, third-party, files outside the run) resolve to ``None`` and rules
must treat that as "unknown", never as "safe" or "unsafe" on its own.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: The scope-pinning control comment (``module=<relpath>`` after the tool
#: marker), re-parsed here with a cheap regex — the suppression parser
#: tokenizes fully; the graph only needs the scope.
_MODULE_PRAGMA = re.compile(r"#\s*repro-lint:\s*module=(?P<path>\S+)")


def scope_of_path(path: str) -> Optional[str]:
    """The repro-relative path of *path*, or None outside the package."""
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            remainder = parts[index + 1:]
            if remainder:
                return "/".join(remainder)
    return None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    module: "ModuleInfo"
    #: Enclosing class name for methods, None for module-level functions.
    class_name: Optional[str] = None
    #: Lexically enclosing functions, outermost first (for closures).
    enclosing: Tuple["FunctionInfo", ...] = ()

    @property
    def params(self) -> List[str]:
        """Positional + keyword parameter names, ``self``/``cls`` included."""
        args = self.node.args  # type: ignore[attr-defined]
        names = [arg.arg for arg in args.posonlyargs]
        names += [arg.arg for arg in args.args]
        names += [arg.arg for arg in args.kwonlyargs]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return names

    def param_index(self, name: str) -> Optional[int]:
        """The positional index of parameter *name* (None for kw-only)."""
        args = self.node.args  # type: ignore[attr-defined]
        positional = [arg.arg for arg in args.posonlyargs] + [
            arg.arg for arg in args.args
        ]
        try:
            return positional.index(name)
        except ValueError:
            return None

    def __repr__(self) -> str:
        return f"FunctionInfo({self.module.scope or self.module.path}::{self.qualname})"


@dataclass
class ClassInfo:
    """One class definition with its dataclass metadata."""

    name: str
    node: ast.ClassDef
    module: "ModuleInfo"
    #: Base class simple names (``SingleVariableAgent``; dotted bases keep
    #: only the final attribute).
    bases: Tuple[str, ...] = ()
    is_dataclass: bool = False
    frozen: bool = False
    #: Class-level annotated assignments: field name -> annotation node.
    fields: Dict[str, ast.expr] = field(default_factory=dict)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"ClassInfo({self.module.scope or self.module.path}::{self.name})"


@dataclass
class ModuleInfo:
    """One parsed file: AST, scope, imports, and top-level symbols."""

    path: str
    scope: Optional[str]
    tree: ast.Module
    source: str
    lines: List[str]
    #: local alias -> imported module dotted name (``import x.y as z``)
    import_modules: Dict[str, str] = field(default_factory=dict)
    #: local name -> (source module repro-scope or dotted name, original name)
    import_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"ModuleInfo({self.scope or self.path})"


class ProjectGraph:
    """Symbols and import edges over every file of one lint run."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: repro-relative scope -> module (files outside the package or with
        #: colliding pragma scopes keep only path-keyed entries).
        self.by_scope: Dict[str, ModuleInfo] = {}
        self._analysis_cache: Dict[str, object] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, paths: Iterable[str]) -> "ProjectGraph":
        """Parse every file in *paths* into one graph; unreadable or
        unparseable files are skipped (the engine reports those itself)."""
        graph = cls()
        for path in paths:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError:
                continue
            graph.add_source(path, source)
        return graph

    @classmethod
    def build_from_sources(
        cls, sources: Sequence[Tuple[str, str, Optional[str]]]
    ) -> "ProjectGraph":
        """Build from in-memory ``(path, source, scope)`` triples."""
        graph = cls()
        for path, source, scope in sources:
            graph.add_source(path, source, scope=scope)
        return graph

    def add_source(
        self, path: str, source: str, scope: Optional[str] = None
    ) -> Optional[ModuleInfo]:
        """Parse and index one file; returns its ModuleInfo (None on
        syntax errors)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return None
        if scope is None:
            pragma = _MODULE_PRAGMA.search(source)
            scope = pragma.group("path") if pragma else scope_of_path(path)
        module = ModuleInfo(
            path=path,
            scope=scope,
            tree=tree,
            source=source,
            lines=source.splitlines(),
        )
        self._index_imports(module)
        self._index_symbols(module)
        self.modules[path] = module
        if scope is not None and scope not in self.by_scope:
            self.by_scope[scope] = module
        return module

    # -- indexing --------------------------------------------------------------

    def _index_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    module.import_modules[item.asname or item.name] = item.name
            elif isinstance(node, ast.ImportFrom):
                target = self._resolve_import_module(module, node)
                if target is None:
                    continue
                for item in node.names:
                    module.import_names[item.asname or item.name] = (
                        target,
                        item.name,
                    )

    @staticmethod
    def _resolve_import_module(
        module: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        """The repro-relative scope (``runtime/random_source.py``) a
        ``from ... import`` pulls from, or its absolute dotted name."""
        if node.level == 0:
            dotted = node.module or ""
            if dotted.startswith("repro."):
                return dotted[len("repro."):].replace(".", "/") + ".py"
            return dotted or None
        # Relative import: walk up from this module's package.
        if module.scope is None:
            return node.module
        package = module.scope.split("/")[:-1]
        ups = node.level - 1
        if ups > len(package):
            return node.module
        base = package[: len(package) - ups] if ups else package
        parts = base + (node.module.split(".") if node.module else [])
        if not parts:
            return None
        return "/".join(parts) + ".py"

    def _index_symbols(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    name=node.name,
                    qualname=node.name,
                    node=node,
                    module=module,
                )
                module.functions[node.name] = info
            elif isinstance(node, ast.ClassDef):
                module.classes[node.name] = self._index_class(module, node)

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        bases = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        is_dataclass, frozen = _dataclass_flags(node)
        info = ClassInfo(
            name=node.name,
            node=node,
            module=module,
            bases=tuple(bases),
            is_dataclass=is_dataclass,
            frozen=frozen,
        )
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                info.fields[item.target.id] = item.annotation
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = FunctionInfo(
                    name=item.name,
                    qualname=f"{node.name}.{item.name}",
                    node=item,
                    module=module,
                    class_name=node.name,
                )
        return info

    # -- queries ---------------------------------------------------------------

    def module_at(self, path: str) -> Optional[ModuleInfo]:
        return self.modules.get(path)

    def module_by_scope(self, scope: str) -> Optional[ModuleInfo]:
        return self.by_scope.get(scope)

    def resolve_function(
        self, module: ModuleInfo, name: str
    ) -> Optional[FunctionInfo]:
        """The FunctionInfo a bare *name* refers to inside *module*: a local
        definition, or a from-import into another module of the run."""
        local = module.functions.get(name)
        if local is not None:
            return local
        origin = module.import_names.get(name)
        if origin is None:
            return None
        target = self.by_scope.get(origin[0])
        if target is None:
            return None
        return target.functions.get(origin[1])

    def resolve_class(
        self, module: ModuleInfo, name: str
    ) -> Optional[ClassInfo]:
        """Like :meth:`resolve_function`, for classes."""
        local = module.classes.get(name)
        if local is not None:
            return local
        origin = module.import_names.get(name)
        if origin is None:
            return None
        target = self.by_scope.get(origin[0])
        if target is None:
            return None
        return target.classes.get(origin[1])

    def all_functions(self) -> List[FunctionInfo]:
        """Every module-level function and method in the run."""
        out: List[FunctionInfo] = []
        for module in self.modules.values():
            out.extend(module.functions.values())
            for cls in module.classes.values():
                out.extend(cls.methods.values())
        return out

    def all_classes(self) -> List[ClassInfo]:
        out: List[ClassInfo] = []
        for module in self.modules.values():
            out.extend(module.classes.values())
        return out

    def subclasses_of(self, base_name: str) -> Set[str]:
        """Names of classes that (transitively, by simple base name) derive
        from *base_name* — ``base_name`` itself included."""
        derived: Set[str] = {base_name}
        changed = True
        classes = self.all_classes()
        while changed:
            changed = False
            for info in classes:
                if info.name in derived:
                    continue
                if any(base in derived for base in info.bases):
                    derived.add(info.name)
                    changed = True
        return derived

    # -- shared analysis cache --------------------------------------------------

    def cached(self, key: str, compute: "object") -> object:
        """Memoise *compute()* under *key* for the lifetime of the graph.

        Rules share one graph per run; expensive whole-program analyses
        (the RNG-factory fixpoint, per-function dataflow) are computed once
        and reused by every rule and every file.
        """
        if key not in self._analysis_cache:
            self._analysis_cache[key] = compute()  # type: ignore[operator]
        return self._analysis_cache[key]


def _dataclass_flags(node: ast.ClassDef) -> Tuple[bool, bool]:
    """(is_dataclass, frozen) from the decorator list."""
    is_dataclass = False
    frozen = False
    for decorator in node.decorator_list:
        target = decorator
        keywords: List[ast.keyword] = []
        if isinstance(decorator, ast.Call):
            target = decorator.func
            keywords = decorator.keywords
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else None
        )
        if name != "dataclass":
            continue
        is_dataclass = True
        for keyword in keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                frozen = True
    return is_dataclass, frozen
