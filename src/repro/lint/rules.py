"""The rule catalogue: what each check protects and how it decides.

Every rule is a class with an ``id``, a scope predicate (:meth:`applies`)
over the file's *repro-relative* path (``algorithms/awc.py``), and a
:meth:`check` that yields :class:`~repro.lint.findings.Finding` objects.
The rules encode repo-specific knowledge on purpose — this is not a
general-purpose linter, it is the paper's invariants made executable:

=====  ======================================================================
D1     No process-global ``random`` in simulated code. A module-level
       ``random.random()`` call makes a trial's outcome depend on every
       draw any other code made before it — and on trial execution order,
       which ``--jobs N`` changes. Only explicit ``random.Random``
       instances (usually via ``derive_rng``) are allowed.
D2     No wall-clock reads in ``runtime/`` or ``algorithms/``. Simulated
       time is cycles; real time leaking into a decision breaks
       bit-reproducibility. The simulator's own ``sim_time`` accounting is
       allowlisted (it measures, it never decides).
D3     No order-sensitive iteration over sets in ``algorithms/``. Python
       set order depends on insertion history and value hashes; if it can
       reach a tie-breaking decision, two identical runs can diverge.
P1     Agent isolation: ``*Message`` dataclasses must be ``frozen=True``
       everywhere, and algorithm code must not mutate a received message.
       Messages in flight are shared structure; mutation is telepathy
       between agents the paper's model forbids.
M1     Metric accounting: agent code must not call uncounted consistency
       predicates (``Nogood.prohibits``) or ``is_violated`` on anything
       but a store. Every check must bump the ``CheckCounter`` that feeds
       ``maxcck`` (Section 4's cost measure).
X0     Malformed control comments (a ``disable=`` without justification is
       itself a finding — suppressions document why an invariant holds).
=====  ======================================================================
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .graph import ProjectGraph

#: Directories (repro-relative) whose code runs *inside* a simulated trial.
SIMULATED_DIRS = ("algorithms/", "problems/", "runtime/")

#: The one module allowed to own the process-global `random` module.
RANDOM_SOURCE_MODULE = "runtime/random_source.py"

#: Modules allowed to read the wall clock: the simulators' sim_time /
#: wall_time accounting (observational — the values never feed a simulated
#: decision), and the socket transport, whose whole point is wall-clock
#: concurrency (its results are documented as non-deterministic).
WALL_CLOCK_ALLOWLIST = (
    "runtime/simulator.py",
    "runtime/events/engine.py",
    "runtime/events/socket_transport.py",
)

#: `random` module functions that touch the hidden global Mersenne state.
#: (`Random` is the seedable class and is exactly what code *should* use.)
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random", "seed", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "betavariate", "expovariate",
        "gammavariate", "gauss", "getrandbits", "lognormvariate",
        "normalvariate", "paretovariate", "triangular", "vonmisesvariate",
        "weibullvariate", "binomialvariate", "randbytes", "getstate",
        "setstate",
    }
)

#: Wall-clock readers on the `time` module.
TIME_FUNCS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
        "clock_gettime", "clock_gettime_ns", "localtime", "gmtime",
    }
)

#: Wall-clock constructors on datetime classes.
DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: Attributes known (repo-wide) to hold set-typed values. This is the
#: repo-specific part of D3: `SingleVariableAgent.recipients` is a set of
#: agent ids, and `Nogood.variables` / `Nogood.pairs` are frozensets.
KNOWN_SET_ATTRS = frozenset({"recipients", "variables", "pairs"})

#: Builtins whose result does not depend on argument iteration order.
#: ``Nogood`` is repo-specific: its constructor normalizes pairs into a
#: frozenset, so feeding it an unordered iterable is safe.
ORDER_INSENSITIVE_SINKS = frozenset(
    {"set", "frozenset", "sorted", "sum", "min", "max", "any", "all", "len",
     "Nogood"}
)

#: Set methods whose result/effect does not depend on argument order.
ORDER_INSENSITIVE_METHODS = frozenset(
    {"update", "union", "intersection", "difference",
     "symmetric_difference", "intersection_update", "difference_update",
     "symmetric_difference_update", "issubset", "issuperset", "isdisjoint"}
)

#: Methods on a store object that perform *counted* consistency checks.
COUNTED_CHECKS = frozenset(
    {"is_violated", "violated_higher", "count_violated",
     "count_violated_higher", "count_violated_lower", "violated",
     "is_consistent", "violated_batch", "count_violated_batch",
     "violated_higher_batch", "count_violated_higher_batch",
     "count_violated_lower_batch"}
)


def _in_dirs(scope: Optional[str], dirs: Sequence[str]) -> bool:
    return scope is not None and scope.startswith(tuple(dirs))


class _Imports:
    """Module/name aliases for `random`, `time` and `datetime` in one file."""

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> imported module name
        self.modules: Dict[str, str] = {}
        #: local name -> (source module, original name)
        self.names: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    self.modules[item.asname or item.name] = item.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for item in node.names:
                    self.names[item.asname or item.name] = (
                        node.module,
                        item.name,
                    )

    def module_of(self, name: str) -> Optional[str]:
        return self.modules.get(name)


class Rule:
    """Base class: subclasses set ``id``/``title`` and implement check()."""

    id = "?"
    title = "?"

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def applies(self, scope: Optional[str]) -> bool:
        """Whether this rule runs for a file at *scope* (repro-relative)."""
        raise NotImplementedError

    def check(
        self, tree: ast.Module, path: str, scope: Optional[str],
        lines: Sequence[str], graph: "ProjectGraph",
    ) -> Iterator[Finding]:
        """Yield findings for one file. File-local rules ignore *graph*;
        the whole-program rules (D4/P2/A1/A2) consult it."""
        raise NotImplementedError

    def _finding(
        self, node: ast.AST, path: str, lines: Sequence[str],
        message: str, hint: str,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        source = (
            lines[line - 1].strip() if 0 < line <= len(lines) else ""
        )
        return Finding(
            path=path, line=line, column=column + 1, rule=self.id,
            message=message, hint=hint, source=source,
        )


class UnseededRandomRule(Rule):
    """D1 — no process-global ``random.*`` calls in simulated code."""

    id = "D1"
    title = "no unseeded global random"

    def applies(self, scope: Optional[str]) -> bool:
        return (
            _in_dirs(scope, SIMULATED_DIRS) and scope != RANDOM_SOURCE_MODULE
        )

    def check(
        self, tree: ast.Module, path: str, scope: Optional[str],
        lines: Sequence[str], graph: "ProjectGraph",
    ) -> Iterator[Finding]:
        imports = _Imports(tree)
        hint = (
            "thread an explicit random.Random through (usually "
            "repro.runtime.random_source.derive_rng(seed, ...)) and call "
            "methods on that instance"
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for item in node.names:
                    if item.name != "Random":
                        yield self._finding(
                            node, path, lines,
                            f"'from random import {item.name}' pulls in the "
                            "process-global RNG; runs would depend on hidden "
                            "interpreter state",
                            hint,
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and imports.module_of(func.value.id) == "random"
                    and func.attr in GLOBAL_RANDOM_FUNCS
                ):
                    yield self._finding(
                        node, path, lines,
                        f"call to process-global random.{func.attr}() — the "
                        "draw depends on every other draw the process made, "
                        "so results change under --jobs N",
                        hint,
                    )


class WallClockRule(Rule):
    """D2 — no wall-clock reads inside the simulated world."""

    id = "D2"
    title = "no wall-clock reads"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, ("runtime/", "algorithms/")) and (
            scope not in WALL_CLOCK_ALLOWLIST
        )

    def check(
        self, tree: ast.Module, path: str, scope: Optional[str],
        lines: Sequence[str], graph: "ProjectGraph",
    ) -> Iterator[Finding]:
        imports = _Imports(tree)
        hint = (
            "simulated code must measure cost in cycles and checks, never "
            "seconds; if this is runner-side accounting, move it next to "
            "the simulator's sim_time bookkeeping (see WALL_CLOCK_ALLOWLIST)"
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for item in node.names:
                        if item.name in TIME_FUNCS:
                            yield self._finding(
                                node, path, lines,
                                f"'from time import {item.name}' imports a "
                                "wall-clock reader into simulated code",
                                hint,
                            )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            # time.<reader>()
            if (
                isinstance(base, ast.Name)
                and imports.module_of(base.id) == "time"
                and func.attr in TIME_FUNCS
            ):
                yield self._finding(
                    node, path, lines,
                    f"wall-clock read time.{func.attr}() in simulated code — "
                    "real time must never influence a simulated run",
                    hint,
                )
            # datetime.datetime.now() / datetime.date.today() and the
            # from-import spellings datetime.now() / date.today().
            elif func.attr in DATETIME_FUNCS and self._is_datetime_class(
                base, imports
            ):
                yield self._finding(
                    node, path, lines,
                    f"wall-clock read {ast.unparse(func)}() in simulated "
                    "code — real time must never influence a simulated run",
                    hint,
                )

    @staticmethod
    def _is_datetime_class(base: ast.expr, imports: _Imports) -> bool:
        if isinstance(base, ast.Name):
            origin = imports.names.get(base.id)
            return origin is not None and origin[0] == "datetime"
        if isinstance(base, ast.Attribute) and isinstance(
            base.value, ast.Name
        ):
            return (
                imports.module_of(base.value.id) == "datetime"
                and base.attr in ("datetime", "date")
            )
        return False


class SetIterationRule(Rule):
    """D3 — no order-sensitive iteration over sets in algorithm code."""

    id = "D3"
    title = "no order-sensitive set iteration"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, ("algorithms/",))

    def check(
        self, tree: ast.Module, path: str, scope: Optional[str],
        lines: Sequence[str], graph: "ProjectGraph",
    ) -> Iterator[Finding]:
        hint = (
            "wrap the iterable in sorted(...) so every run visits elements "
            "in the same order (or keep the whole pipeline set-shaped if "
            "order provably cannot matter)"
        )
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        set_names = self._set_assigned_names(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                if self._is_set_typed(node.iter, set_names):
                    yield self._finding(
                        node, path, lines,
                        "for-loop over a set — iteration order is "
                        "arbitrary, and the loop body can carry it into a "
                        "tie-breaking decision",
                        hint,
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if not any(
                    self._is_set_typed(gen.iter, set_names)
                    for gen in node.generators
                ):
                    continue
                parent = parents.get(node)
                if self._is_order_insensitive_sink(parent, node):
                    continue
                yield self._finding(
                    node, path, lines,
                    "comprehension over a set produces an "
                    "arbitrarily-ordered sequence",
                    hint,
                )
            # SetComp / DictComp over a set are order-free by construction.

    @staticmethod
    def _set_assigned_names(tree: ast.Module) -> Set[str]:
        """Names assigned a syntactically set-typed value anywhere in the file.

        A deliberately simple single-pass approximation: it does not track
        rebinding, so a name counts as set-typed if *any* assignment makes
        it one.
        """
        names: Set[str] = set()
        for node in ast.walk(tree):
            value: Optional[ast.expr] = None
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None or not SetIterationRule._is_set_typed(
                value, names
            ):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _is_set_typed(node: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Attribute):
            return node.attr in KNOWN_SET_ATTRS
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return SetIterationRule._is_set_typed(
                node.left, set_names
            ) or SetIterationRule._is_set_typed(node.right, set_names)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference",
            ):
                return SetIterationRule._is_set_typed(func.value, set_names)
        return False

    @staticmethod
    def _is_order_insensitive_sink(
        parent: Optional[ast.AST], node: ast.AST
    ) -> bool:
        """True when *node*'s order cannot escape through *parent*."""
        if not isinstance(parent, ast.Call) or node not in parent.args:
            return False
        func = parent.func
        if isinstance(func, ast.Name):
            return func.id in ORDER_INSENSITIVE_SINKS
        if isinstance(func, ast.Attribute):
            return func.attr in ORDER_INSENSITIVE_METHODS
        return False


class AgentIsolationRule(Rule):
    """P1 — frozen messages everywhere; no message mutation in algorithms."""

    id = "P1"
    title = "agent isolation"

    def applies(self, scope: Optional[str]) -> bool:
        return True  # the frozen-dataclass half is repo-wide

    def check(
        self, tree: ast.Module, path: str, scope: Optional[str],
        lines: Sequence[str], graph: "ProjectGraph",
    ) -> Iterator[Finding]:
        yield from self._check_frozen_messages(tree, path, lines)
        if _in_dirs(scope, ("algorithms/",)):
            yield from self._check_message_mutation(tree, path, lines)

    # -- (a) every *Message dataclass is frozen -----------------------------

    def _check_frozen_messages(
        self, tree: ast.Module, path: str, lines: Sequence[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Message"):
                continue
            decorated = False
            frozen = False
            for decorator in node.decorator_list:
                target = decorator
                keywords: List[ast.keyword] = []
                if isinstance(decorator, ast.Call):
                    target = decorator.func
                    keywords = decorator.keywords
                name = (
                    target.id
                    if isinstance(target, ast.Name)
                    else target.attr
                    if isinstance(target, ast.Attribute)
                    else None
                )
                if name != "dataclass":
                    continue
                decorated = True
                for keyword in keywords:
                    if (
                        keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        frozen = True
            if decorated and not frozen:
                yield self._finding(
                    node, path, lines,
                    f"message dataclass {node.name} is not frozen — a "
                    "buffered message could be mutated after sending, which "
                    "is covert agent-to-agent communication",
                    "declare it @dataclass(frozen=True)",
                )

    # -- (b) algorithms never mutate a received message ---------------------

    def _check_message_mutation(
        self, tree: ast.Module, path: str, lines: Sequence[str]
    ) -> Iterator[Finding]:
        hint = (
            "messages are immutable once sent; build a new message "
            "(dataclasses.replace(...)) and send that instead"
        )
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            message_names = self._message_names(node)
            if not message_names:
                continue
            for inner in ast.walk(node):
                if isinstance(inner, (ast.Assign, ast.AugAssign)):
                    targets = (
                        inner.targets
                        if isinstance(inner, ast.Assign)
                        else [inner.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in message_names
                        ):
                            yield self._finding(
                                inner, path, lines,
                                f"assignment to attribute of received "
                                f"message '{target.value.id}'",
                                hint,
                            )
                elif isinstance(inner, ast.Delete):
                    for target in inner.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in message_names
                        ):
                            yield self._finding(
                                inner, path, lines,
                                f"deletion of attribute of received "
                                f"message '{target.value.id}'",
                                hint,
                            )
                elif isinstance(inner, ast.Call):
                    func = inner.func
                    is_setattr = (
                        isinstance(func, ast.Name) and func.id == "setattr"
                    )
                    is_object_setattr = (
                        isinstance(func, ast.Attribute)
                        and func.attr == "__setattr__"
                    )
                    if (
                        (is_setattr or is_object_setattr)
                        and inner.args
                        and isinstance(inner.args[0], ast.Name)
                        and inner.args[0].id in message_names
                    ):
                        yield self._finding(
                            inner, path, lines,
                            f"setattr on received message "
                            f"'{inner.args[0].id}' bypasses frozen-dataclass "
                            "protection",
                            hint,
                        )

    @staticmethod
    def _message_names(function: ast.AST) -> Set[str]:
        """Names in *function* that (heuristically) hold received messages.

        A name qualifies when it is a parameter with a ``*Message``
        annotation, the loop variable of ``for <name> in messages:``, or is
        isinstance-tested against a ``*Message`` class.
        """
        names: Set[str] = set()
        args = getattr(function, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                annotation = arg.annotation
                if annotation is not None and "Message" in ast.dump(
                    annotation
                ):
                    names.add(arg.arg)
        for node in ast.walk(function):
            if (
                isinstance(node, ast.For)
                and isinstance(node.target, ast.Name)
                and isinstance(node.iter, ast.Name)
                and node.iter.id == "messages"
            ):
                names.add(node.target.id)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
                and isinstance(node.args[0], ast.Name)
            ):
                classinfo = node.args[1]
                candidates = (
                    list(classinfo.elts)
                    if isinstance(classinfo, ast.Tuple)
                    else [classinfo]
                )
                for candidate in candidates:
                    name = (
                        candidate.id
                        if isinstance(candidate, ast.Name)
                        else candidate.attr
                        if isinstance(candidate, ast.Attribute)
                        else ""
                    )
                    if name.endswith("Message"):
                        names.add(node.args[0].id)
        return names


class UncountedCheckRule(Rule):
    """M1 — consistency checks in agent code must be counted."""

    id = "M1"
    title = "counted nogood checks only"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, ("algorithms/",))

    def check(
        self, tree: ast.Module, path: str, scope: Optional[str],
        lines: Sequence[str], graph: "ProjectGraph",
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "prohibits":
                yield self._finding(
                    node, path, lines,
                    "Nogood.prohibits() is an *uncounted* consistency "
                    "predicate — a check that bypasses the CheckCounter "
                    "silently understates maxcck",
                    "route the test through the agent's store "
                    "(store.is_violated / violated_higher / "
                    "count_violated*), which bumps the shared CheckCounter",
                )
            elif func.attr in COUNTED_CHECKS and not self._is_store(
                func.value
            ):
                yield self._finding(
                    node, path, lines,
                    f"{func.attr}() called on "
                    f"'{ast.unparse(func.value)}', which is not a store — "
                    "only NogoodStore methods bump the CheckCounter that "
                    "feeds maxcck",
                    "call the method on the agent's store (self.store or a "
                    "handler's .store)",
                )

    @staticmethod
    def _is_store(receiver: ast.expr) -> bool:
        if isinstance(receiver, ast.Name):
            return receiver.id == "store" or receiver.id.endswith("_store")
        if isinstance(receiver, ast.Attribute):
            return receiver.attr == "store" or receiver.attr.endswith(
                "_store"
            )
        return False


#: The file-local rules. The full registry (these plus the whole-program
#: rules) is assembled in :mod:`repro.lint.catalogue`.
BASE_RULES: Tuple[Rule, ...] = (
    UnseededRandomRule(),
    WallClockRule(),
    SetIterationRule(),
    AgentIsolationRule(),
    UncountedCheckRule(),
)
