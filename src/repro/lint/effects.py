"""Handler-effect analysis: read/write footprints and commutativity.

The event runtime only guarantees per-channel FIFO delivery — messages from
*distinct* senders may reach an agent in either order, and the Uniform /
reorder transports exercise exactly that freedom. Whether a reordering can
change a trial's outcome is a property of the *handlers*: two handler
invocations commute iff their state footprints do not conflict (neither
writes what the other reads or writes).

This module computes, for every message handler in the
:class:`~repro.runtime.agent.SimulatedAgent` closure, the set of agent
attributes it reads and writes — the *effect footprint* — and derives the
commutativity matrix over handler pairs. A *handler* is the body of an
``isinstance(message, SomeMessage)`` dispatch branch plus everything it
reaches through ``self._method()`` calls within the class (bases included,
resolved name-based through the project graph).

Two consumers share the result (memoised per
:class:`~repro.lint.graph.ProjectGraph` via :meth:`~ProjectGraph.cached`):

* the R1/R2/R3 lint rules (:mod:`repro.lint.rules_effects`), which flag
  statically-detectable interleaving hazards; and
* the DPOR schedule explorer (:mod:`repro.verify`), which uses the matrix
  to prune equivalent delivery orders — deliveries to the same agent whose
  handlers commute need only be explored in one order.

The analysis is deliberately conservative: an attribute method it cannot
classify as read-only counts as a write, so "commutes" is only reported
when it provably holds on the footprint level.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .graph import ClassInfo, FunctionInfo, ModuleInfo, ProjectGraph

#: Attribute methods that only consult state (no footprint write). The
#: counted store queries, the view accessors, and generic container reads.
READ_ONLY_METHODS = frozenset(
    {
        # store consultation (every counted check, single and batch)
        "is_violated", "violated", "is_consistent", "violated_higher",
        "count_violated", "count_violated_higher", "count_violated_lower",
        "violated_batch", "count_violated_batch", "violated_higher_batch",
        "count_violated_higher_batch", "count_violated_lower_batch",
        "for_value", "nogoods",
        "priority_key_of", "is_higher",
        # AgentView accessors
        "knows", "value_of", "priority_of", "entry", "items",
        "as_assignment", "variables",
        # problem/structure accessors (immutable per trial)
        "owner_of", "variables_of", "domain_of", "neighbors_of",
        "relevant_nogoods", "local_nogoods", "is_solution",
        # learning policy queries
        "should_record", "make_nogood",
        # generic containers / misc
        "get", "keys", "values", "copy", "count", "index", "issubset",
        "issuperset", "isdisjoint", "union", "intersection", "difference",
    }
)

#: Method-name prefixes assumed read-only when the name is unknown.
READ_ONLY_PREFIXES = ("is_", "has_", "count_", "sorted_")

#: Attribute methods that mutate their receiver (footprint write).
MUTATING_METHODS = frozenset(
    {
        "add", "update", "forget", "remove", "discard", "pop", "popitem",
        "clear", "append", "extend", "insert", "setdefault", "sort",
        "reverse", "appendleft", "extendleft", "push", "bump",
    }
)

#: Attributes whose writes *commit a decision* — the agent's announced
#: value or rank. A handler writing these inside the per-message dispatch
#: acts on possibly half-absorbed state; see rule R2.
DECISION_ATTRS = frozenset({"value", "priority", "phase"})

#: The base class whose subclass closure defines "agent code".
AGENT_BASE = "SimulatedAgent"

#: Message classes are recognized by this suffix (the repo convention:
#: OkMessage, NogoodMessage, ...). Name-based like the rest of the graph.
MESSAGE_SUFFIX = "Message"


@dataclass(frozen=True)
class HandlerEffect:
    """The effect footprint of one (agent class, message type) handler."""

    class_name: str
    message_type: str
    reads: FrozenSet[str]
    writes: FrozenSet[str]
    #: repro-relative scope and line of the dispatch branch (for findings).
    scope: Optional[str]
    path: str
    line: int

    @property
    def decision_writes(self) -> FrozenSet[str]:
        """The decision attributes this handler writes."""
        return self.writes & DECISION_ATTRS

    def conflicts_with(self, other: "HandlerEffect") -> FrozenSet[str]:
        """The attributes on which this handler conflicts with *other*.

        Standard footprint conflict: a write on one side meeting a read or
        write on the other. Empty means the two invocations commute.
        """
        return (self.writes & (other.reads | other.writes)) | (
            other.writes & self.reads
        )

    def commutes_with(self, other: "HandlerEffect") -> bool:
        return not self.conflicts_with(other)


#: (class name) -> {message type -> HandlerEffect}
EffectTable = Dict[str, Dict[str, HandlerEffect]]

#: (class name, message type A, message type B) -> commutes?
CommutativityMatrix = Dict[Tuple[str, str, str], bool]


def handler_effects(graph: ProjectGraph) -> EffectTable:
    """The effect table for every agent class in *graph* (memoised)."""

    def compute() -> EffectTable:
        return _compute_handler_effects(graph)

    return graph.cached("handler-effects", compute)  # type: ignore[return-value]


def commutativity_matrix(effects: EffectTable) -> CommutativityMatrix:
    """Pairwise commutativity over each class's handlers.

    Symmetric by construction; the diagonal ``(cls, M, M)`` covers two
    deliveries of the *same* message type from distinct senders, which the
    transport may also reorder.
    """
    matrix: CommutativityMatrix = {}
    for class_name, handlers in effects.items():
        types = sorted(handlers)
        for type_a in types:
            for type_b in types:
                matrix[(class_name, type_a, type_b)] = handlers[
                    type_a
                ].commutes_with(handlers[type_b])
    return matrix


def format_matrix(effects: EffectTable) -> str:
    """A human-readable rendering of footprints and the matrix."""
    matrix = commutativity_matrix(effects)
    out: List[str] = []
    for class_name in sorted(effects):
        handlers = effects[class_name]
        out.append(f"{class_name}:")
        for message_type in sorted(handlers):
            effect = handlers[message_type]
            out.append(
                f"  {message_type}: reads={sorted(effect.reads)} "
                f"writes={sorted(effect.writes)}"
            )
        types = sorted(handlers)
        for index, type_a in enumerate(types):
            for type_b in types[index:]:
                commutes = matrix[(class_name, type_a, type_b)]
                if not commutes:
                    conflict = handlers[type_a].conflicts_with(
                        handlers[type_b]
                    )
                    out.append(
                        f"  {type_a} × {type_b}: CONFLICT on "
                        f"{sorted(conflict)}"
                    )
                else:
                    out.append(f"  {type_a} × {type_b}: commute")
    return "\n".join(out)


# -- extraction ---------------------------------------------------------------


def _compute_handler_effects(graph: ProjectGraph) -> EffectTable:
    agent_classes: Set[str] = graph.cached(  # type: ignore[assignment]
        "simulated-agent-closure",
        lambda: graph.subclasses_of(AGENT_BASE),
    )
    table: EffectTable = {}
    for module in graph.modules.values():
        for cls in module.classes.values():
            if cls.name not in agent_classes or cls.name == AGENT_BASE:
                continue
            handlers = _class_handler_effects(graph, module, cls)
            if handlers:
                table[cls.name] = handlers
    return table


def _class_handler_effects(
    graph: ProjectGraph, module: ModuleInfo, cls: ClassInfo
) -> Dict[str, HandlerEffect]:
    handlers: Dict[str, HandlerEffect] = {}
    for method in cls.methods.values():
        for branch in _dispatch_branches(method):
            footprint = _Footprint()
            _collect_statements(branch.body, footprint)
            _expand_self_calls(graph, module, cls, footprint)
            for message_type in branch.message_types:
                merged = handlers.get(message_type)
                effect = HandlerEffect(
                    class_name=cls.name,
                    message_type=message_type,
                    reads=frozenset(footprint.reads),
                    writes=frozenset(footprint.writes),
                    scope=module.scope,
                    path=module.path,
                    line=branch.line,
                )
                if merged is not None:
                    effect = HandlerEffect(
                        class_name=cls.name,
                        message_type=message_type,
                        reads=merged.reads | effect.reads,
                        writes=merged.writes | effect.writes,
                        scope=merged.scope,
                        path=merged.path,
                        line=merged.line,
                    )
                handlers[message_type] = effect
    return handlers


@dataclass(frozen=True)
class _DispatchBranch:
    message_types: Tuple[str, ...]
    body: Tuple[ast.stmt, ...]
    line: int


def _dispatch_branches(method: FunctionInfo) -> Iterator[_DispatchBranch]:
    """``isinstance(x, SomeMessage)`` branches anywhere in *method*."""
    node = method.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for inner in ast.walk(node):
        if not isinstance(inner, ast.If):
            continue
        types = _isinstance_message_types(inner.test)
        if types:
            yield _DispatchBranch(
                message_types=types,
                body=tuple(inner.body),
                line=inner.lineno,
            )


def _isinstance_message_types(test: ast.expr) -> Tuple[str, ...]:
    """Message class names if *test* is ``isinstance(_, <message types>)``."""
    if not (
        isinstance(test, ast.Call)
        and isinstance(test.func, ast.Name)
        and test.func.id == "isinstance"
        and len(test.args) == 2
    ):
        return ()
    spec = test.args[1]
    candidates = spec.elts if isinstance(spec, ast.Tuple) else [spec]
    names: List[str] = []
    for candidate in candidates:
        name: Optional[str] = None
        if isinstance(candidate, ast.Name):
            name = candidate.id
        elif isinstance(candidate, ast.Attribute):
            name = candidate.attr
        if name is not None and name.endswith(MESSAGE_SUFFIX):
            names.append(name)
    return tuple(names)


class _Footprint:
    """Mutable read/write attribute sets plus pending self-calls."""

    def __init__(self) -> None:
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.self_calls: Set[str] = set()


def _collect_statements(
    statements: Sequence[ast.stmt], footprint: _Footprint
) -> None:
    for statement in statements:
        _collect_node(statement, footprint)


def _collect_node(node: ast.AST, footprint: _Footprint) -> None:
    # First pass: calls. A `self._method(...)` consumes its func attribute
    # (the method name is not agent *state*), so it is excluded from the
    # read set in the second pass.
    consumed: Set[int] = set()
    for inner in ast.walk(node):
        if isinstance(inner, ast.Call):
            func_node = _collect_call(inner, footprint)
            if func_node is not None:
                consumed.add(id(func_node))
    for inner in ast.walk(node):
        if isinstance(inner, ast.Attribute):
            if id(inner) in consumed:
                continue
            attr = _self_attribute(inner)
            if attr is None:
                continue
            if isinstance(inner.ctx, (ast.Store, ast.Del)):
                footprint.writes.add(attr)
            else:
                footprint.reads.add(attr)
        elif isinstance(inner, ast.Subscript):
            # self.attr[key] = ... / del self.attr[key] mutate the container.
            attr = _self_attribute(inner.value)
            if attr is not None and isinstance(
                inner.ctx, (ast.Store, ast.Del)
            ):
                footprint.writes.add(attr)


def _collect_call(call: ast.Call, footprint: _Footprint) -> Optional[ast.AST]:
    """Classify one call; returns the consumed ``self._method`` func node."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    receiver = func.value
    # self._method(...): record for transitive expansion.
    if isinstance(receiver, ast.Name) and receiver.id == "self":
        footprint.self_calls.add(func.attr)
        return func
    attr = _self_attribute(receiver)
    if attr is None:
        # One level deeper: self.attr[key].method(...) — treat a mutator on
        # an element as a write to the container attribute.
        if isinstance(receiver, ast.Subscript):
            attr = _self_attribute(receiver.value)
        if attr is None:
            return None
    footprint.reads.add(attr)
    if func.attr in READ_ONLY_METHODS or func.attr.startswith(
        READ_ONLY_PREFIXES
    ):
        return None
    # Unknown or known-mutating method on agent state: conservatively a
    # write. "Commutes" must only ever be claimed when it provably holds.
    footprint.writes.add(attr)
    return None


def _self_attribute(node: ast.expr) -> Optional[str]:
    """``attr`` if *node* is exactly ``self.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _expand_self_calls(
    graph: ProjectGraph,
    module: ModuleInfo,
    cls: ClassInfo,
    footprint: _Footprint,
) -> None:
    """Fold the footprints of transitively reached self-methods in."""
    visited: Set[str] = set()
    queue = sorted(footprint.self_calls)
    while queue:
        name = queue.pop()
        if name in visited:
            continue
        visited.add(name)
        method = _resolve_method(graph, module, cls, name)
        if method is None:
            continue
        local = _Footprint()
        node = method.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        _collect_statements(node.body, local)
        footprint.reads |= local.reads
        footprint.writes |= local.writes
        queue.extend(
            call for call in sorted(local.self_calls) if call not in visited
        )


def method_footprint(
    graph: ProjectGraph, module: ModuleInfo, cls: ClassInfo, name: str
) -> Optional[Tuple[FrozenSet[str], FrozenSet[str], Set[str]]]:
    """The transitive (reads, writes, visited methods) of one method.

    Used by rule R3 to check consultation paths; returns None when the
    method cannot be resolved in the class or its graph-visible bases.
    """
    method = _resolve_method(graph, module, cls, name)
    if method is None:
        return None
    footprint = _Footprint()
    node = method.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    _collect_statements(node.body, footprint)
    visited: Set[str] = {name}
    queue = sorted(footprint.self_calls)
    while queue:
        callee = queue.pop()
        if callee in visited:
            continue
        visited.add(callee)
        target = _resolve_method(graph, module, cls, callee)
        if target is None:
            continue
        local = _Footprint()
        target_node = target.node
        assert isinstance(
            target_node, (ast.FunctionDef, ast.AsyncFunctionDef)
        )
        _collect_statements(target_node.body, local)
        footprint.reads |= local.reads
        footprint.writes |= local.writes
        queue.extend(sorted(local.self_calls))
    return frozenset(footprint.reads), frozenset(footprint.writes), visited


def _resolve_method(
    graph: ProjectGraph,
    module: ModuleInfo,
    cls: ClassInfo,
    name: str,
    depth: int = 0,
) -> Optional[FunctionInfo]:
    """*name* in *cls* or (name-based, graph-visible) base classes."""
    local = cls.methods.get(name)
    if local is not None:
        return local
    if depth >= 5:
        return None
    for base_name in cls.bases:
        base = graph.resolve_class(module, base_name)
        if base is None:
            continue
        found = _resolve_method(
            graph, base.module, base, name, depth=depth + 1
        )
        if found is not None:
            return found
    return None
