"""Cross-validation of recorded traces: ``repro lint --check-trace``.

The static rules (D4/P2/A1/A2) argue the runtime *should* be deterministic
and causally ordered; this module checks the claim against runtime
evidence. It replays a :class:`~repro.runtime.trace.TraceRecorder` JSONL
file and asserts the invariants the event-driven runtime promises:

* **Clock monotonicity** — the logical timestamps of the merged event log
  never decrease (the Lamport-style property: the recorder emits events in
  cycle order, and the engine only moves time forward).
* **Send-sequence monotonicity** — the transport's send counter, when the
  backend stamps it onto message records, strictly increases.
* **Causal delivery** — every delivery names a recorded send (same
  sequence, same channel) and arrives strictly *after* it (latency models
  must return delays ≥ 1).
* **FIFO clamp** — per ``(sender, recipient)`` channel, deliveries occur
  in send order with non-decreasing arrival times. The in-process
  transport enforces this with an arrival clamp when ``fifo=True``;
  traces recorded with ``fifo=False`` are validated with
  ``--no-fifo-check``.
* **Value-change chaining** — per variable, each change's ``old_value``
  equals the previous change's ``new_value``.
* **Summary conservation** — the trailing summary record's counts match
  the records actually present (when nothing was dropped).

A violation is a plain sentence with a 1-based line number, suitable for
printing next to lint findings; an empty list means the trace upholds
every invariant it carries evidence for (a synchronous-simulator trace has
no deliveries or sequences, so those checks are vacuous there).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

#: Record types the validator understands.
KNOWN_EVENTS = ("message", "delivery", "value_change", "summary")


def check_trace_file(path: str, fifo: bool = True) -> List[str]:
    """Validate the trace at *path*; returns violations (empty = valid)."""
    records: List[Tuple[int, Dict[str, Any]]] = []
    violations: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as error:
                    violations.append(
                        f"line {number}: not valid JSON ({error.msg})"
                    )
                    continue
                if not isinstance(payload, dict):
                    violations.append(
                        f"line {number}: record is not a JSON object"
                    )
                    continue
                records.append((number, payload))
    except OSError as error:
        return [f"cannot read trace: {error}"]
    if violations:
        return violations
    return check_trace_records(records, fifo=fifo)


def check_trace_records(
    records: List[Tuple[int, Dict[str, Any]]], fifo: bool = True
) -> List[str]:
    """Validate parsed ``(line number, record)`` pairs."""
    violations: List[str] = []
    if not records:
        return ["trace is empty — a recorded run always has a summary"]

    for number, record in records:
        event = record.get("event")
        if event not in KNOWN_EVENTS:
            violations.append(
                f"line {number}: unknown event type {event!r} "
                f"(expected one of {', '.join(KNOWN_EVENTS)})"
            )
    if violations:
        return violations

    violations.extend(_check_summary_placement(records))
    body = [
        (number, record)
        for number, record in records
        if record["event"] != "summary"
    ]
    violations.extend(_check_clock_monotone(body))
    violations.extend(_check_sequences(body))
    violations.extend(_check_deliveries(body, records))
    if fifo:
        violations.extend(_check_fifo(body))
    violations.extend(_check_value_chains(body))
    violations.extend(_check_summary_counts(records))
    return violations


def _check_summary_placement(
    records: List[Tuple[int, Dict[str, Any]]]
) -> List[str]:
    summaries = [
        (number, record)
        for number, record in records
        if record["event"] == "summary"
    ]
    if not summaries:
        return ["trace has no summary record — it was truncated mid-write"]
    out: List[str] = []
    if len(summaries) > 1:
        extra = ", ".join(str(number) for number, _ in summaries[:-1])
        out.append(
            f"trace has {len(summaries)} summary records (lines {extra} "
            "are not last) — summaries terminate a trace"
        )
    last_number, last_record = records[-1]
    if last_record["event"] != "summary":
        out.append(
            f"line {last_number}: last record is "
            f"'{last_record['event']}', not the summary — the trace "
            "continued past its totals"
        )
    return out


def _check_clock_monotone(
    body: List[Tuple[int, Dict[str, Any]]]
) -> List[str]:
    out: List[str] = []
    previous: Optional[int] = None
    previous_line = 0
    for number, record in body:
        cycle = record.get("cycle")
        if not isinstance(cycle, int) or cycle < 0:
            out.append(
                f"line {number}: '{record['event']}' has no valid "
                f"non-negative integer cycle (got {cycle!r})"
            )
            continue
        if previous is not None and cycle < previous:
            out.append(
                f"line {number}: clock went backwards — cycle {cycle} "
                f"after cycle {previous} (line {previous_line}); the "
                "recorder emits events in logical-time order"
            )
        previous = cycle
        previous_line = number
    return out


def _check_sequences(body: List[Tuple[int, Dict[str, Any]]]) -> List[str]:
    out: List[str] = []
    previous: Optional[int] = None
    previous_line = 0
    for number, record in body:
        if record["event"] != "message" or "sequence" not in record:
            continue
        sequence = record["sequence"]
        if not isinstance(sequence, int) or sequence < 0:
            out.append(
                f"line {number}: message sequence is not a non-negative "
                f"integer (got {sequence!r})"
            )
            continue
        if previous is not None and sequence <= previous:
            out.append(
                f"line {number}: send sequence {sequence} does not "
                f"increase past {previous} (line {previous_line}) — the "
                "transport's send counter is monotone"
            )
        previous = sequence
        previous_line = number
    return out


def _check_deliveries(
    body: List[Tuple[int, Dict[str, Any]]],
    records: List[Tuple[int, Dict[str, Any]]],
) -> List[str]:
    out: List[str] = []
    dropped = _summary_of(records).get("dropped", 0)
    sends: Dict[int, Tuple[int, Dict[str, Any]]] = {}
    for number, record in body:
        if record["event"] == "message" and isinstance(
            record.get("sequence"), int
        ):
            sends[record["sequence"]] = (number, record)
    for number, record in body:
        if record["event"] != "delivery":
            continue
        sequence = record.get("sequence")
        if not isinstance(sequence, int):
            out.append(
                f"line {number}: delivery has no integer sequence "
                f"(got {sequence!r})"
            )
            continue
        send = sends.get(sequence)
        if send is None:
            if not dropped:
                out.append(
                    f"line {number}: delivery of sequence {sequence} has "
                    "no matching message record — nothing was dropped, so "
                    "every delivery must complete a recorded send"
                )
            continue
        send_line, send_record = send
        for role in ("sender", "recipient"):
            if record.get(role) != send_record.get(role):
                out.append(
                    f"line {number}: delivery of sequence {sequence} "
                    f"names {role} {record.get(role)!r} but the send "
                    f"(line {send_line}) names {send_record.get(role)!r}"
                )
        if record.get("cycle", 0) <= send_record.get("cycle", 0):
            out.append(
                f"line {number}: delivery of sequence {sequence} at cycle "
                f"{record.get('cycle')} does not happen strictly after its "
                f"send at cycle {send_record.get('cycle')} (line "
                f"{send_line}) — latency must be at least 1"
            )
    return out


def _check_fifo(body: List[Tuple[int, Dict[str, Any]]]) -> List[str]:
    """Per channel, deliveries must occur in send order (no overtaking)
    with non-decreasing arrival cycles — the FIFO clamp's guarantee."""
    out: List[str] = []
    last_by_channel: Dict[Tuple[Any, Any], Tuple[int, int, int]] = {}
    for number, record in body:
        if record["event"] != "delivery":
            continue
        sequence = record.get("sequence")
        cycle = record.get("cycle")
        if not isinstance(sequence, int) or not isinstance(cycle, int):
            continue  # reported by the structural checks
        channel = (record.get("sender"), record.get("recipient"))
        previous = last_by_channel.get(channel)
        if previous is not None:
            previous_line, previous_sequence, previous_cycle = previous
            if sequence < previous_sequence:
                out.append(
                    f"line {number}: FIFO violation on channel "
                    f"{channel[0]} -> {channel[1]} — sequence {sequence} "
                    f"delivered after sequence {previous_sequence} (line "
                    f"{previous_line}); same-channel messages must not "
                    "overtake (run with --no-fifo-check for fifo=False "
                    "traces)"
                )
            if cycle < previous_cycle:
                out.append(
                    f"line {number}: FIFO clamp violation on channel "
                    f"{channel[0]} -> {channel[1]} — arrival cycle "
                    f"{cycle} precedes the previous arrival at cycle "
                    f"{previous_cycle} (line {previous_line})"
                )
        last_by_channel[channel] = (number, sequence, cycle)
    return out


def _check_value_chains(
    body: List[Tuple[int, Dict[str, Any]]]
) -> List[str]:
    out: List[str] = []
    last_value: Dict[Any, Tuple[int, Any]] = {}
    for number, record in body:
        if record["event"] != "value_change":
            continue
        variable = record.get("variable")
        previous = last_value.get(variable)
        if previous is not None:
            previous_line, previous_new = previous
            if record.get("old_value") != previous_new:
                out.append(
                    f"line {number}: value chain broken for variable "
                    f"{variable} — old_value {record.get('old_value')!r} "
                    f"does not match the previous new_value "
                    f"{previous_new!r} (line {previous_line})"
                )
        last_value[variable] = (number, record.get("new_value"))
    return out


def _check_summary_counts(
    records: List[Tuple[int, Dict[str, Any]]]
) -> List[str]:
    summary = _summary_of(records)
    if not summary or summary.get("dropped", 0):
        return []  # dropped events legitimately break conservation
    out: List[str] = []
    counts = {"message": 0, "delivery": 0, "value_change": 0}
    for _number, record in records:
        if record["event"] in counts:
            counts[record["event"]] += 1
    expectations = [
        ("messages", counts["message"]),
        ("value_changes", counts["value_change"]),
    ]
    if "deliveries" in summary:
        expectations.append(("deliveries", counts["delivery"]))
    for key, actual in expectations:
        claimed = summary.get(key)
        if claimed != actual:
            out.append(
                f"summary claims {key}={claimed!r} but the trace holds "
                f"{actual} such record(s) — counts must conserve when "
                "nothing was dropped"
            )
    return out


def _summary_of(
    records: List[Tuple[int, Dict[str, Any]]]
) -> Dict[str, Any]:
    for _number, record in reversed(records):
        if record["event"] == "summary":
            return record
    return {}
