"""Process-boundary analysis: what crosses, and what agents share.

The sharded runtime (ROADMAP: thousands of agents across worker processes
and hosts) changes two ground rules the in-process simulators never
enforce: everything handed to a transport or executor must *serialize*,
and no two agents may reach the same mutable object. This module computes
both properties statically over the :class:`~repro.lint.graph.ProjectGraph`
and memoises them per graph (``graph.cached``), so the S-rules
(:mod:`repro.lint.rules_dist`) and the bench-side pickle round-trip audit
share one analysis:

* :func:`boundary_closures` — every expression that crosses a process or
  serialization boundary (transport/mailbox ``send``, ``pickle.dumps``,
  executor ``submit``, ``Process`` spawn, pool ``initargs``, message
  payload construction), with the transitive *hazard closure* of the
  values it can carry: lambdas, closures over locals, open OS handles,
  RNG streams, generators, thread primitives. Rule S1 reports crossings
  whose closure is non-empty; the lint bench's dynamic cross-validation
  pickles every payload actually sent in a pinned trial corpus and checks
  the observed behaviour against this closure.
* :func:`transported_payload_types` — the message classes the analysis
  saw being constructed as payloads; the dynamic audit asserts every
  message type observed on the wire is in this set (static coverage is a
  superset of runtime reality).
* :func:`shared_agent_state` — an alias fixpoint over agent builders: a
  mutable object passed loop-invariantly into more than one
  :class:`~repro.runtime.agent.SimulatedAgent` constructor, stored as
  agent state, and mutated by agent code is reachable from two agents at
  once — it only works because the agents share a process. Rule S3
  reports each such (builder, class, attribute) triple.

Like the rest of the lint layer the analysis is name-based and
conservative in one direction only: a hazard is reported when the value's
construction is visible; values of unknown provenance are assumed clean
(S1 certifies what it can see, the runtime audit catches what it cannot).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .dataflow import _bind_arguments, iter_functions
from .effects import (
    AGENT_BASE,
    MESSAGE_SUFFIX,
    MUTATING_METHODS,
    READ_ONLY_METHODS,
    READ_ONLY_PREFIXES,
    _resolve_method,
)
from .graph import ClassInfo, FunctionInfo, ModuleInfo, ProjectGraph

#: Receiver-identifier fragments that mark a serializing channel: calling
#: ``.send(...)`` on one of these hands the arguments to another process.
CHANNEL_FRAGMENTS = ("transport", "mailbox", "sock", "conn", "pipe", "channel")

#: Receiver-identifier fragments that mark an executor (``.submit`` /
#: ``.map`` ship the callable and its arguments to a worker process).
EXECUTOR_FRAGMENTS = ("pool", "executor")

#: Hazard kinds, ordered by how categorically they break serialization.
HAZARD_KINDS = ("lambda", "closure", "handle", "rng", "generator", "lock")

#: Call heads (terminal name or attribute) that create an OS handle.
_HANDLE_CALLS = frozenset(
    {"open", "socket", "create_connection", "socketpair", "urlopen",
     "Popen", "TemporaryFile", "NamedTemporaryFile", "memory_map", "mmap"}
)

#: Call heads that create (or derive) an RNG stream. A stream duplicated
#: across a process boundary forks — both sides draw the same numbers,
#: which silently breaks trial reproducibility even though the object
#: itself pickles.
_RNG_CALLS = frozenset({"Random", "derive_rng", "SystemRandom", "getstate"})

#: Call heads that create thread-synchronization primitives.
_LOCK_CALLS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
     "Event", "Barrier"}
)

#: Identifier spellings treated as an RNG value wherever they appear in a
#: crossing expression (``self.rng``, ``rng``, ``agent_rng`` ...).
_RNG_NAME_SUFFIXES = ("rng",)

_FunctionNode = ast.AST  # FunctionDef | AsyncFunctionDef | Module


@dataclass(frozen=True)
class Hazard:
    """One unserializable (or fork-hazardous) value inside a closure."""

    kind: str
    detail: str


@dataclass(frozen=True)
class Crossing:
    """One boundary-crossing call site and its hazard closure."""

    path: str
    scope: Optional[str]
    line: int
    #: "send" | "submit" | "spawn" | "pickle" | "initargs" | "payload"
    kind: str
    #: Human-readable call head, e.g. ``mailbox.send`` or ``OkMessage``.
    label: str
    node: ast.Call
    hazards: Tuple[Hazard, ...]


@dataclass(frozen=True)
class SharedMutable:
    """A mutable object aliased by every agent a builder loop creates."""

    path: str
    scope: Optional[str]
    line: int
    builder: str
    class_name: str
    attr: str
    param: str
    argument: str
    node: ast.Call
    #: ``Class.method -> self.attr.mutator`` descriptions, sorted.
    mutations: Tuple[str, ...]


# -- hazard classification ----------------------------------------------------


def _call_head(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_rng_name(identifier: str) -> bool:
    lowered = identifier.lower()
    return any(
        lowered == suffix or lowered.endswith("_" + suffix)
        for suffix in _RNG_NAME_SUFFIXES
    )


class _ValueEnv:
    """Name -> hazard kinds, built by one forward pass over a function."""

    def __init__(self) -> None:
        self.kinds: Dict[str, FrozenSet[str]] = {}

    def bind(self, name: str, kinds: FrozenSet[str]) -> None:
        if kinds:
            self.kinds[name] = kinds
        else:
            self.kinds.pop(name, None)


def _shallow_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk *root* without descending into nested def/class bodies.

    The nested definitions themselves are yielded (so an env pass can bind
    their names); their bodies belong to other analysis units —
    :func:`~repro.lint.dataflow.iter_functions` hands each function out
    exactly once.
    """
    queue: List[ast.AST] = [root]
    while queue:
        node = queue.pop()
        yield node
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        queue.extend(ast.iter_child_nodes(node))


def _build_env(
    function: _FunctionNode, graph: ProjectGraph, module: ModuleInfo
) -> _ValueEnv:
    env = _ValueEnv()
    for statement in _shallow_walk(function):
        if statement is not function and isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            # A def nested in a function is a closure over its locals —
            # module-level functions pickle by reference, these do not.
            if isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                env.bind(statement.name, frozenset({"closure"}))
            continue
        if isinstance(statement, ast.Assign):
            kinds = classify_expr(statement.value, env, graph, module)
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    env.bind(target.id, kinds)
        elif isinstance(statement, ast.AnnAssign) and statement.value:
            if isinstance(statement.target, ast.Name):
                env.bind(
                    statement.target.id,
                    classify_expr(statement.value, env, graph, module),
                )
        elif isinstance(statement, ast.With):
            for item in statement.items:
                kinds = classify_expr(
                    item.context_expr, env, graph, module
                )
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    env.bind(item.optional_vars.id, kinds)
    return env


def classify_expr(
    expr: ast.expr,
    env: _ValueEnv,
    graph: ProjectGraph,
    module: ModuleInfo,
    _depth: int = 0,
) -> FrozenSet[str]:
    """The hazard kinds *expr* may evaluate to (empty = assumed clean)."""
    if _depth > 4:
        return frozenset()
    if isinstance(expr, ast.Lambda):
        return frozenset({"lambda"})
    if isinstance(expr, (ast.GeneratorExp,)):
        return frozenset({"generator"})
    if isinstance(expr, ast.Name):
        kinds = env.kinds.get(expr.id)
        if kinds:
            return kinds
        if _is_rng_name(expr.id):
            return frozenset({"rng"})
        return frozenset()
    if isinstance(expr, ast.Attribute):
        if _is_rng_name(expr.attr):
            return frozenset({"rng"})
        return frozenset()
    if isinstance(expr, ast.Starred):
        return classify_expr(expr.value, env, graph, module, _depth)
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        kinds: Set[str] = set()
        for element in expr.elts:
            kinds |= classify_expr(element, env, graph, module, _depth + 1)
        return frozenset(kinds)
    if isinstance(expr, ast.Dict):
        kinds = set()
        for value in expr.values:
            if value is not None:
                kinds |= classify_expr(value, env, graph, module, _depth + 1)
        return frozenset(kinds)
    if isinstance(expr, ast.IfExp):
        return classify_expr(
            expr.body, env, graph, module, _depth + 1
        ) | classify_expr(expr.orelse, env, graph, module, _depth + 1)
    if isinstance(expr, ast.Call):
        head = _call_head(expr.func)
        if head is None:
            return frozenset()
        if head in _HANDLE_CALLS:
            return frozenset({"handle"})
        if head in _RNG_CALLS:
            return frozenset({"rng"})
        if head in _LOCK_CALLS:
            return frozenset({"lock"})
        # A call to a project function: fold the hazards of its returns
        # (one-level summaries, depth-limited — the serialization closure).
        if isinstance(expr.func, ast.Name):
            target = graph.resolve_function(module, expr.func.id)
            if target is not None:
                return _return_hazards(target, graph, _depth + 1)
            # Constructing a project class whose fields we do not model:
            # assumed clean (the runtime audit covers instances).
        return frozenset()
    return frozenset()


def _return_hazards(
    function: FunctionInfo, graph: ProjectGraph, depth: int
) -> FrozenSet[str]:
    """Hazards of every ``return`` expression of *function* (memoised)."""
    memo: Dict[str, FrozenSet[str]] = graph.cached(  # type: ignore[assignment]
        "boundary-return-hazards", dict
    )
    key = f"{function.module.path}:{function.qualname}"
    if key in memo:
        return memo[key]
    memo[key] = frozenset()  # cycle guard
    node = function.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return frozenset()
    env = _build_env(node, graph, function.module)
    kinds: Set[str] = set()
    for inner in ast.walk(node):
        if isinstance(inner, ast.Return) and inner.value is not None:
            kinds |= classify_expr(
                inner.value, env, graph, function.module, depth
            )
    result = frozenset(kinds)
    memo[key] = result
    return result


# -- crossing discovery -------------------------------------------------------


def _identifier_of(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _crossing_exprs(call: ast.Call) -> Optional[Tuple[str, List[ast.expr]]]:
    """(kind, expressions that cross) if *call* is a boundary site."""
    func = call.func
    if isinstance(func, ast.Attribute):
        receiver = _identifier_of(func.value)
        lowered = (receiver or "").lower()
        if func.attr == "send" and any(
            fragment in lowered for fragment in CHANNEL_FRAGMENTS
        ):
            return "send", list(call.args)
        if func.attr in ("submit", "map") and any(
            fragment in lowered for fragment in EXECUTOR_FRAGMENTS
        ):
            return "submit", list(call.args)
        if func.attr == "dumps" and receiver == "pickle":
            return "pickle", list(call.args[:1])
    head = _call_head(func)
    if head == "Process":
        crossing: List[ast.expr] = []
        for keyword in call.keywords:
            if keyword.arg == "target":
                crossing.append(keyword.value)
            elif keyword.arg in ("args", "kwargs"):
                crossing.extend(_unpack_display(keyword.value))
        if crossing:
            return "spawn", crossing
    for keyword in call.keywords:
        if keyword.arg == "initargs":
            crossing = list(_unpack_display(keyword.value))
            for other in call.keywords:
                if other.arg == "initializer":
                    crossing.append(other.value)
            return "initargs", crossing
    if (
        head is not None
        and head.endswith(MESSAGE_SUFFIX)
        and head != MESSAGE_SUFFIX
    ):
        crossing = list(call.args) + [
            keyword.value
            for keyword in call.keywords
            if keyword.arg is not None
        ]
        return "payload", crossing
    return None


def _unpack_display(expr: ast.expr) -> Iterator[ast.expr]:
    if isinstance(expr, (ast.Tuple, ast.List)):
        yield from expr.elts
    else:
        yield expr


def _module_crossings(
    graph: ProjectGraph, module: ModuleInfo
) -> List[Crossing]:
    crossings: List[Crossing] = []
    units: List[Tuple[_FunctionNode, _ValueEnv]] = [
        (module.tree, _build_env(module.tree, graph, module))
    ]
    for function, _cls, _enclosing in iter_functions(module):
        node = function.node
        units.append((node, _build_env(node, graph, module)))
    seen: Set[int] = set()
    for unit, env in units:
        # Shallow: every call is scanned exactly once, under the env of
        # the function (or module) that owns it — nested defs are their
        # own units via iter_functions.
        for inner in _shallow_walk(unit):
            if not isinstance(inner, ast.Call) or id(inner) in seen:
                continue
            matched = _crossing_exprs(inner)
            if matched is None:
                continue
            seen.add(id(inner))
            kind, exprs = matched
            hazards: List[Hazard] = []
            for expr in exprs:
                for hazard_kind in sorted(
                    classify_expr(expr, env, graph, module)
                ):
                    hazards.append(
                        Hazard(
                            kind=hazard_kind,
                            detail=ast.unparse(expr),
                        )
                    )
            crossings.append(
                Crossing(
                    path=module.path,
                    scope=module.scope,
                    line=inner.lineno,
                    kind=kind,
                    label=ast.unparse(inner.func),
                    node=inner,
                    hazards=tuple(hazards),
                )
            )
    return crossings


def boundary_closures(graph: ProjectGraph) -> List[Crossing]:
    """Every boundary crossing in *graph*, with hazard closures (memoised)."""

    def compute() -> List[Crossing]:
        crossings: List[Crossing] = []
        for path in sorted(graph.modules):
            crossings.extend(
                _module_crossings(graph, graph.modules[path])
            )
        return crossings

    return graph.cached("boundary-closures", compute)  # type: ignore[return-value]


def transported_payload_types(graph: ProjectGraph) -> FrozenSet[str]:
    """Message class names the static analysis saw crossing a boundary.

    The dynamic pickle audit checks that every message type observed on
    the wire during the pinned trial corpus is in this set — i.e. the
    static serialization closure covers runtime reality.
    """
    names: Set[str] = set()
    for crossing in boundary_closures(graph):
        if crossing.kind == "payload":
            head = _call_head(crossing.node.func)
            if head is not None:
                names.add(head)
        else:
            # Wire frames: Envelope(..., message, ...) style wrappers
            # constructed directly in the send argument.
            for argument in crossing.node.args:
                if isinstance(argument, ast.Call):
                    head = _call_head(argument.func)
                    if head is not None and head[:1].isupper():
                        names.add(head)
    return frozenset(names)


# -- agent alias analysis -----------------------------------------------------


def _agent_classes(graph: ProjectGraph) -> Set[str]:
    return graph.cached(  # type: ignore[return-value]
        "simulated-agent-closure",
        lambda: graph.subclasses_of(AGENT_BASE),
    )


def _loop_bound_names(loop: ast.AST) -> Set[str]:
    """Names rebound on every iteration of *loop* (target + body stores)."""
    bound: Set[str] = set()
    targets: List[ast.expr] = []
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        targets.append(loop.target)
    elif isinstance(loop, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        targets.extend(gen.target for gen in loop.generators)
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                bound.add(node.id)
    for node in ast.walk(loop):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
    return bound


def _init_param_attrs(
    graph: ProjectGraph, cls: ClassInfo, _depth: int = 0
) -> Dict[str, str]:
    """param name -> stored ``self.<attr>`` for *cls*'s constructor.

    Follows ``super().__init__(...)`` positionally (depth-limited) so
    state stored by a base constructor is attributed to the derived
    class's parameters too.
    """
    if _depth > 3:
        return {}
    init = _resolve_method(graph, cls.module, cls, "__init__")
    if init is None:
        return {}
    node = init.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return {}
    params = [name for name in init.params if name not in ("self", "cls")]
    mapping: Dict[str, str] = {}
    for statement in ast.walk(node):
        if (
            isinstance(statement, ast.Assign)
            and isinstance(statement.value, ast.Name)
            and statement.value.id in params
        ):
            for target in statement.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    mapping[statement.value.id] = target.attr
        elif isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Call
        ):
            call = statement.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "__init__"
                and isinstance(call.func.value, ast.Call)
                and isinstance(call.func.value.func, ast.Name)
                and call.func.value.func.id == "super"
            ):
                for base_name in cls.bases:
                    base = graph.resolve_class(cls.module, base_name)
                    if base is None:
                        continue
                    base_map = _init_param_attrs(graph, base, _depth + 1)
                    base_init = _resolve_method(
                        graph, base.module, base, "__init__"
                    )
                    if base_init is None:
                        continue
                    base_params = [
                        name
                        for name in base_init.params
                        if name not in ("self", "cls")
                    ]
                    for index, argument in enumerate(call.args):
                        if (
                            isinstance(argument, ast.Name)
                            and argument.id in params
                            and index < len(base_params)
                        ):
                            attr = base_map.get(base_params[index])
                            if attr is not None:
                                mapping.setdefault(argument.id, attr)
                    for keyword in call.keywords:
                        if (
                            keyword.arg is not None
                            and isinstance(keyword.value, ast.Name)
                            and keyword.value.id in params
                        ):
                            attr = base_map.get(keyword.arg)
                            if attr is not None:
                                mapping.setdefault(keyword.value.id, attr)
                    break
    return mapping


def _attr_mutations(
    graph: ProjectGraph, cls: ClassInfo, attr: str
) -> List[str]:
    """``Class.method -> mutation`` descriptions of writes to ``self.attr``.

    A method call on the attribute counts as a write unless it is in the
    read-only vocabulary — same conservative stance as the effect
    analysis: shared state is only cleared when it provably stays clean.
    """
    mutations: Set[str] = set()
    classes: List[ClassInfo] = [cls]
    visited = {cls.name}
    while classes:
        current = classes.pop()
        for method in current.methods.values():
            node = method.node
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call) and isinstance(
                    inner.func, ast.Attribute
                ):
                    receiver = inner.func.value
                    if (
                        isinstance(receiver, ast.Attribute)
                        and isinstance(receiver.value, ast.Name)
                        and receiver.value.id == "self"
                        and receiver.attr == attr
                    ):
                        name = inner.func.attr
                        if name in MUTATING_METHODS or not (
                            name in READ_ONLY_METHODS
                            or name.startswith(READ_ONLY_PREFIXES)
                        ):
                            mutations.add(
                                f"{current.name}.{method.name} -> "
                                f"self.{attr}.{name}(...)"
                            )
                elif isinstance(inner, (ast.Assign, ast.AugAssign)):
                    targets = (
                        inner.targets
                        if isinstance(inner, ast.Assign)
                        else [inner.target]
                    )
                    for target in targets:
                        base: Optional[ast.expr] = None
                        if isinstance(target, ast.Subscript):
                            base = target.value
                        elif isinstance(target, ast.Attribute):
                            base = target.value
                        if (
                            base is not None
                            and isinstance(base, ast.Attribute)
                            and isinstance(base.value, ast.Name)
                            and base.value.id == "self"
                            and base.attr == attr
                        ):
                            mutations.add(
                                f"{current.name}.{method.name} -> "
                                f"self.{attr} store"
                            )
        for base_name in current.bases:
            base_cls = graph.resolve_class(current.module, base_name)
            if base_cls is not None and base_cls.name not in visited:
                visited.add(base_cls.name)
                classes.append(base_cls)
    return sorted(mutations)


def shared_agent_state(graph: ProjectGraph) -> List[SharedMutable]:
    """Mutable objects aliased across agents by builder loops (memoised)."""

    def compute() -> List[SharedMutable]:
        agent_classes = _agent_classes(graph)
        found: List[SharedMutable] = []
        for path in sorted(graph.modules):
            module = graph.modules[path]
            for function, _cls, _enclosing in iter_functions(module):
                node = function.node
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                for loop in ast.walk(node):
                    if not isinstance(
                        loop,
                        (ast.For, ast.AsyncFor, ast.ListComp, ast.SetComp),
                    ):
                        continue
                    bound = _loop_bound_names(loop)
                    for call in ast.walk(loop):
                        if not (
                            isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Name)
                            and call.func.id in agent_classes
                        ):
                            continue
                        ctor = graph.resolve_class(module, call.func.id)
                        if ctor is None:
                            continue
                        found.extend(
                            _shared_from_call(
                                graph,
                                module,
                                function,
                                loop,
                                bound,
                                call,
                                ctor,
                            )
                        )
        return found

    return graph.cached("shared-agent-state", compute)  # type: ignore[return-value]


def _shared_from_call(
    graph: ProjectGraph,
    module: ModuleInfo,
    function: FunctionInfo,
    loop: ast.AST,
    bound: Set[str],
    call: ast.Call,
    ctor: ClassInfo,
) -> Iterator[SharedMutable]:
    param_attrs = _init_param_attrs(graph, ctor)
    for param, argument in _bind_arguments(call, ctor):
        shared_name: Optional[str] = None
        if isinstance(argument, ast.Name) and argument.id not in bound:
            shared_name = argument.id
        elif (
            isinstance(argument, ast.Attribute)
            and isinstance(argument.value, ast.Name)
            and argument.value.id == "self"
        ):
            shared_name = f"self.{argument.attr}"
        if shared_name is None:
            continue
        attr = param_attrs.get(param)
        if attr is None:
            continue
        mutations = _attr_mutations(graph, ctor, attr)
        if not mutations:
            continue
        yield SharedMutable(
            path=module.path,
            scope=module.scope,
            line=call.lineno,
            builder=function.qualname,
            class_name=ctor.name,
            attr=attr,
            param=param,
            argument=shared_name,
            node=call,
            mutations=tuple(mutations),
        )


__all__ = [
    "Crossing",
    "Hazard",
    "SharedMutable",
    "boundary_closures",
    "classify_expr",
    "shared_agent_state",
    "transported_payload_types",
]
