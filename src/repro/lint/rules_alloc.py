"""The allocation rules: H1-H4, hot-path garbage made visible.

The paper's cost model counts constraint checks and cycles; Python-side
allocation in the per-message dispatch is pure overhead that distorts
wall-clock comparisons between learning variants. These rules police the
*hot set* (:mod:`repro.lint.hotpaths`: handler closure + store
consultation surface + profile-seeded ``hotpaths.toml`` entries) using the
allocation/escape analysis in :mod:`repro.lint.alloc`:

=====  ======================================================================
H1     Allocation inside a hot loop that does not escape the iteration.
       A container rebuilt every pass and dead by the iteration's end is
       a hoistable buffer: allocate once, ``clear()`` and refill.
H2     Per-dispatch construction of a constant-shape container — e.g.
       ``list(self.domain)`` on every backtrack, or a display made only
       of constants. The shape never changes; precompute it once.
H3     ``sorted()`` copy of instance state on a hot path. Sorting the
       same attribute on every call re-does work an incrementally
       maintained cache (like the store's priority-key cache) already
       solved; filling such a cache (``self._x = sorted(...)``) is the
       fix and is exempt.
H4     Closure/lambda creation inside hot dispatch. Every ``lambda``
       evaluation allocates a fresh function object (plus a cell per
       captured name); sort keys and scoring functions belong at module
       level (``operator.itemgetter``/``attrgetter`` or a plain def).
=====  ======================================================================

All four support the standard machinery: SARIF export, baseline entries
and justified ``# repro-lint: disable=Hn -- why`` pragmas.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from . import alloc
from .findings import Finding
from .graph import ModuleInfo, ProjectGraph
from .hotpaths import HotSet, hot_set_for
from .rules import Rule

#: Self-attributes whose value is fixed for the lifetime of an agent
#: (H2's "constant shape" evidence). ``domain`` is set in
#: ``SingleVariableAgent.__init__`` from the immutable CSP and never
#: rebound afterwards.
CONSTANT_SELF_ATTRS = frozenset({"domain"})


def _iter_functions(
    module: ModuleInfo,
) -> Iterator[Tuple[str, ast.AST]]:
    """(qualname, def node) for every indexed function of *module*."""
    for info in module.functions.values():
        yield info.qualname, info.node
    for cls in module.classes.values():
        for info in cls.methods.values():
            yield info.qualname, info.node


def _self_attr_chain(node: ast.expr) -> Optional[str]:
    """``self.a.b`` → ``"a.b"``; None when not rooted at ``self``."""
    attrs: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        attrs.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name) and current.id == "self" and attrs:
        return ".".join(reversed(attrs))
    return None


def _is_cache_fill(stmt: ast.stmt) -> bool:
    """``self._x = ...`` / ``self._x[k] = ...`` — filling a memo slot is
    the *fix* for H2/H3, not a violation."""
    targets: Sequence[ast.expr] = ()
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = (stmt.target,)
    for target in targets:
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Attribute) and _self_attr_chain(base):
            return True
    return False


class _HotPathRule(Rule):
    """Shared plumbing: resolve the module, the hot set, and iterate the
    hot functions of the linted file."""

    def applies(self, scope: Optional[str]) -> bool:
        # Hotness is derived from the package's class hierarchy, so the
        # rules only run on in-package files (or pragma-pinned fixtures).
        return scope is not None

    def _hot_functions(
        self, path: str, graph: ProjectGraph
    ) -> Iterator[Tuple[str, ast.AST, ModuleInfo, HotSet]]:
        module = graph.module_at(path)
        if module is None:
            return
        hot = hot_set_for(graph, path)
        for qualname, node in _iter_functions(module):
            if hot.is_hot(node):
                yield qualname, node, module, hot


class HotLoopTemporaryRule(_HotPathRule):
    """H1 — loop-local container allocation on a hot path."""

    id = "H1"
    title = "no per-iteration temporaries in hot loops"

    def check(
        self, tree: ast.Module, path: str, scope: Optional[str],
        lines: Sequence[str], graph: "ProjectGraph",
    ) -> Iterator[Finding]:
        hint = (
            "hoist the container out of the loop and reuse it "
            "(buffer.clear() + refill), or restructure so no intermediate "
            "container is needed (e.g. count in the loop instead of "
            "building a list to len())"
        )
        for qualname, node, module, hot in self._hot_functions(path, graph):
            analysis = alloc.analyses_for(graph, node, module)
            for site in analysis.sites:
                if site.kind not in alloc.CONTAINER_KINDS:
                    continue
                if site.name is None or not site.loops:
                    continue
                if analysis.escapes(site):
                    continue
                if not analysis.iteration_local(site):
                    continue
                yield self._finding(
                    site.node, path, lines,
                    f"hot loop in {qualname}() rebuilds {site.kind} "
                    f"'{site.name}' every iteration and drops it before "
                    "the next — garbage on a per-message path",
                    hint,
                )


class ConstantShapeContainerRule(_HotPathRule):
    """H2 — constant-shape container built per dispatch."""

    id = "H2"
    title = "no per-dispatch constant-shape containers"

    def check(
        self, tree: ast.Module, path: str, scope: Optional[str],
        lines: Sequence[str], graph: "ProjectGraph",
    ) -> Iterator[Finding]:
        for qualname, node, module, hot in self._hot_functions(path, graph):
            yield from self._check_function(qualname, node, path, lines)

    def _check_function(
        self, qualname: str, node: ast.AST, path: str,
        lines: Sequence[str],
    ) -> Iterator[Finding]:
        copy_hint = (
            "the attribute never changes after construction; materialize "
            "it once (e.g. self._all_values = tuple(self.domain) in "
            "__init__) and reuse the cached copy"
        )
        display_hint = (
            "every element is a constant, so the container is the same on "
            "every call; build it once at module or instance level"
        )
        for stmt, exprs in _statement_exprs(node):
            if _is_cache_fill(stmt):
                continue
            for expr in exprs:
                for inner in ast.walk(expr):
                    if isinstance(inner, ast.Call):
                        chain = self._constant_copy_chain(inner)
                        if chain is not None:
                            yield self._finding(
                                inner, path, lines,
                                f"{qualname}() copies constant-shape "
                                f"'self.{chain}' into a fresh container "
                                "on every call",
                                copy_hint,
                            )
                    elif isinstance(
                        inner, (ast.List, ast.Set, ast.Dict)
                    ) and _is_constant_display(inner):
                        yield self._finding(
                            inner, path, lines,
                            f"{qualname}() builds a container of "
                            "constants on every call",
                            display_hint,
                        )

    @staticmethod
    def _constant_copy_chain(call: ast.Call) -> Optional[str]:
        func = call.func
        if not (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple", "set", "frozenset")
        ):
            return None
        if len(call.args) != 1 or call.keywords:
            return None
        chain = _self_attr_chain(call.args[0])
        if chain is None:
            return None
        root = chain.split(".", 1)[0]
        return chain if root in CONSTANT_SELF_ATTRS else None


class SortedCopyRule(_HotPathRule):
    """H3 — repeated ``sorted()`` of instance state in hot dispatch."""

    id = "H3"
    title = "no repeated sorted() copies of maintained state"

    def check(
        self, tree: ast.Module, path: str, scope: Optional[str],
        lines: Sequence[str], graph: "ProjectGraph",
    ) -> Iterator[Finding]:
        hint = (
            "maintain the sorted view incrementally (the store's "
            "priority-key cache is the pattern): cache the sorted copy on "
            "the instance and invalidate on mutation; the cache-filling "
            "assignment itself (self._x = sorted(...)) is exempt"
        )
        for qualname, node, module, hot in self._hot_functions(path, graph):
            for stmt, exprs in _statement_exprs(node):
                if _is_cache_fill(stmt):
                    continue
                for expr in exprs:
                    for inner in ast.walk(expr):
                        if not isinstance(inner, ast.Call):
                            continue
                        func = inner.func
                        if not (
                            isinstance(func, ast.Name)
                            and func.id == "sorted"
                            and inner.args
                        ):
                            continue
                        chain = _self_attr_chain(inner.args[0])
                        if chain is None:
                            continue
                        yield self._finding(
                            inner, path, lines,
                            f"{qualname}() re-sorts 'self.{chain}' on "
                            "a hot path — a full copy + O(n log n) "
                            "every call for state that changes rarely",
                            hint,
                        )


class HotClosureRule(_HotPathRule):
    """H4 — closure/lambda allocation inside hot dispatch."""

    id = "H4"
    title = "no closure allocation in hot dispatch"

    def check(
        self, tree: ast.Module, path: str, scope: Optional[str],
        lines: Sequence[str], graph: "ProjectGraph",
    ) -> Iterator[Finding]:
        hint = (
            "hoist the callable to module level — operator.itemgetter / "
            "attrgetter for field access, a plain def for anything "
            "else — so dispatch reuses one object instead of allocating "
            "a function (plus a cell per captured name) every call"
        )
        for qualname, node, module, hot in self._hot_functions(path, graph):
            analysis = alloc.analyses_for(graph, node, module)
            for site in analysis.sites:
                if site.kind != alloc.CLOSURE:
                    continue
                label = (
                    "lambda"
                    if isinstance(site.node, ast.Lambda)
                    else f"nested def {getattr(site.node, 'name', '?')}()"
                )
                yield self._finding(
                    site.node, path, lines,
                    f"{qualname}() allocates a {label} on every call",
                    hint,
                )


def _statement_exprs(
    function: ast.AST,
) -> Iterator[Tuple[ast.stmt, List[ast.expr]]]:
    """(statement, its direct expressions) over a function body, nested
    defs/lambdas excluded (their bodies are not this function's
    dispatch; H4 already prices the closure itself)."""
    body = getattr(function, "body", [])
    stack: List[ast.stmt] = list(body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        exprs = [
            child
            for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)
        ]
        yield stmt, exprs
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.excepthandler):
                stack.extend(child.body)


def _is_constant_display(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Set)):
        return bool(node.elts) and all(
            isinstance(e, ast.Constant) for e in node.elts
        )
    if isinstance(node, ast.Dict):
        return bool(node.keys) and all(
            element is not None and isinstance(element, ast.Constant)
            for element in list(node.keys) + list(node.values)
        )
    return False


#: The allocation rules, registered by :mod:`repro.lint.catalogue`.
ALLOC_RULES: Tuple[Rule, ...] = (
    HotLoopTemporaryRule(),
    ConstantShapeContainerRule(),
    SortedCopyRule(),
    HotClosureRule(),
)
