"""A lightweight flow-sensitive dataflow layer over the project graph.

Three analyses, shared by the whole-program rules (D4/P2/A1):

* **Seed taint** — is an expression derived (through assignments, closures,
  dataclass fields, f-strings, and calls) from an explicit function
  parameter? Rule D4 uses this to demand that every RNG master seed in
  simulated code traces back to a seed argument rather than a literal or
  hidden entropy.
* **RNG-factory summaries** — a fixpoint over the call graph classifying
  every function/class of the run: does calling it produce an RNG, which of
  its parameters feed RNG master seeds, and does it ever seed from
  something that is *not* a parameter? This is what lets D4 see through
  helper/factory boundaries (``build_x_agents`` → ``derive_rng``).
* **Send/mutation event streams** — per function, every transport-style
  send, every mutation of a local name, and every rebinding, each tagged
  with its line and enclosing loops. Rule P2's escape analysis is a simple
  ordering query over these streams ("was this name mutated after being
  handed to a send?").

All of it is deliberately approximate. The contract with the rules: err on
the side of **not** reporting (a finding must be explainable to the author
from the quoted line), and let per-line ``disable=`` pragmas cover the
residue.

Expensive whole-program results are memoised on the
:class:`~repro.lint.graph.ProjectGraph` (see :meth:`ProjectGraph.cached`),
so N rules over M files share one computation per run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .graph import ClassInfo, FunctionInfo, ModuleInfo, ProjectGraph

#: Functions (by bare name) that derive seeds/streams from a master seed;
#: their first argument is the master. Matched by name so fixture files
#: exercise the analysis without importing the real runtime.
SEED_DERIVERS = ("derive_rng", "derive_seed")

#: Attribute-call names treated as handing a payload to a transport.
SEND_ATTRS = frozenset({"send", "post", "put", "put_nowait", "heappush"})

#: Methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "add", "discard", "setdefault", "sort", "reverse",
        "appendleft", "extendleft",
    }
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


# =============================================================================
# Seed taint
# =============================================================================


@dataclass
class FactorySummary:
    """What calling one function/class means for RNG provenance."""

    #: Calling this produces (or transitively produces) an RNG or seed.
    creates_rng: bool = False
    #: Parameter names whose value flows into an RNG master seed.
    seed_params: Tuple[str, ...] = ()
    #: The factory seeds an RNG from something that is not one of its own
    #: parameters (a literal, entropy, the wall clock, ...).
    unseeded: bool = False


@dataclass
class SeedContext:
    """Everything :func:`is_seed_derived` needs to judge one expression."""

    module: Optional[ModuleInfo]
    graph: ProjectGraph
    summaries: Dict[Tuple[str, str], FactorySummary]
    #: Names currently known to be seed-derived (parameters, closure
    #: parameters, and locals assigned from seed-derived expressions).
    names: Set[str] = field(default_factory=set)
    #: The enclosing class, for ``self.<field>`` judgements.
    class_info: Optional[ClassInfo] = None


def summary_key(info: Union[FunctionInfo, ClassInfo]) -> Tuple[str, str]:
    name = info.qualname if isinstance(info, FunctionInfo) else info.name
    return (info.module.path, name)


def is_seed_derived(expr: ast.expr, ctx: SeedContext, _depth: int = 0) -> bool:
    """Whether *expr* traces back to an explicit parameter.

    Taint propagates through arithmetic, f-strings, conditionals,
    containers, and calls (a call with a seed-derived argument yields a
    seed-derived value — the common ``f(seed, "tag")`` derivation shape).
    Constants never qualify: a literal master seed is exactly the
    provenance laundering D4 exists to reject.
    """
    if _depth > 12:
        return False
    if isinstance(expr, ast.Name):
        return expr.id in ctx.names
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id in (
            "self", "cls"
        ):
            return _field_is_seed_derived(expr.attr, ctx)
        return is_seed_derived(expr.value, ctx, _depth + 1)
    if isinstance(expr, ast.IfExp):
        return is_seed_derived(expr.body, ctx, _depth + 1) and is_seed_derived(
            expr.orelse, ctx, _depth + 1
        )
    if isinstance(expr, ast.BoolOp):
        return all(
            is_seed_derived(value, ctx, _depth + 1) for value in expr.values
        )
    if isinstance(expr, ast.BinOp):
        return is_seed_derived(expr.left, ctx, _depth + 1) or is_seed_derived(
            expr.right, ctx, _depth + 1
        )
    if isinstance(expr, ast.UnaryOp):
        return is_seed_derived(expr.operand, ctx, _depth + 1)
    if isinstance(expr, ast.JoinedStr):
        return any(
            is_seed_derived(value, ctx, _depth + 1) for value in expr.values
        )
    if isinstance(expr, ast.FormattedValue):
        return is_seed_derived(expr.value, ctx, _depth + 1)
    if isinstance(expr, (ast.Tuple, ast.List)):
        return any(is_seed_derived(item, ctx, _depth + 1) for item in expr.elts)
    if isinstance(expr, ast.Starred):
        return is_seed_derived(expr.value, ctx, _depth + 1)
    if isinstance(expr, ast.Subscript):
        return is_seed_derived(expr.value, ctx, _depth + 1)
    if isinstance(expr, ast.Call):
        return any(
            is_seed_derived(arg, ctx, _depth + 1) for arg in expr.args
        ) or any(
            keyword.value is not None
            and is_seed_derived(keyword.value, ctx, _depth + 1)
            for keyword in expr.keywords
        )
    return False


def _field_is_seed_derived(attr: str, ctx: SeedContext) -> bool:
    """``self.<attr>`` is seed-derived when the class takes it at
    construction: a dataclass field, or an ``__init__`` assignment from a
    parameter-derived expression."""
    info = ctx.class_info
    if info is None:
        return False
    if info.is_dataclass and attr in info.fields:
        return True
    init = info.methods.get("__init__")
    if init is None:
        return False
    # Memoised per graph, not per process: fixture tests reuse fake paths
    # across distinct sources, so a module-global cache would go stale.
    cache = ctx.graph.cached(
        "param-derived-fields",
        lambda: {},
    )
    assert isinstance(cache, dict)
    key = summary_key(init)
    if key not in cache:
        cache[key] = _param_derived_fields(init, ctx.graph)
    return attr in cache[key]


def _param_derived_fields(init: FunctionInfo, graph: ProjectGraph) -> Set[str]:
    env: Set[str] = set(init.params)
    fields: Set[str] = set()
    ctx = SeedContext(
        module=init.module, graph=graph, summaries={}, names=env
    )
    node = init.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for statement in ast.walk(node):
        if not isinstance(statement, ast.Assign):
            continue
        for target in statement.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and is_seed_derived(statement.value, ctx)
            ):
                fields.add(target.attr)
    return fields


def build_seed_env(
    function: _FunctionNode,
    enclosing_params: Sequence[str] = (),
) -> Set[str]:
    """Names seed-derived *somewhere* in the function: its parameters, the
    enclosing functions' parameters (closures), and locals assigned from
    expressions over those. One ordered pass; rebinding a name to a
    non-derived value removes it again."""
    env: Set[str] = set(enclosing_params)
    for arg in _all_args(function):
        env.add(arg)
    ctx = SeedContext(
        module=None,  # type: ignore[arg-type]
        graph=ProjectGraph(),
        summaries={},
        names=env,
    )
    for statement in _ordered_statements(function):
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            value, targets = statement.value, statement.targets
        elif isinstance(statement, ast.AnnAssign) and statement.value:
            value, targets = statement.value, [statement.target]
        if value is None:
            continue
        derived = is_seed_derived(value, ctx)
        for target in targets:
            names = (
                [target]
                if isinstance(target, ast.Name)
                else list(target.elts)
                if isinstance(target, (ast.Tuple, ast.List))
                else []
            )
            for item in names:
                if isinstance(item, ast.Name):
                    if derived:
                        env.add(item.id)
                    else:
                        env.discard(item.id)
    return env


def _all_args(function: _FunctionNode) -> List[str]:
    args = function.args
    names = [arg.arg for arg in args.posonlyargs]
    names += [arg.arg for arg in args.args]
    names += [arg.arg for arg in args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _ordered_statements(function: _FunctionNode) -> Iterator[ast.stmt]:
    """Statements of *function* in source order, nested bodies included,
    without descending into nested function/class definitions."""

    def visit(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
        for statement in body:
            yield statement
            if isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            for field_name in ("body", "orelse", "finalbody"):
                inner = getattr(statement, field_name, None)
                if inner:
                    yield from visit(inner)
            for handler in getattr(statement, "handlers", ()) or ():
                yield from visit(handler.body)

    return visit(function.body)


# -- RNG creation sites --------------------------------------------------------


#: Sentinel for "the creation takes no master seed at all" (``Random()``).
NO_MASTER = object()


def rng_master_of(
    call: ast.Call, module: ModuleInfo
) -> Optional[Union[ast.expr, object]]:
    """If *call* creates an RNG/seed directly, its master-seed expression.

    Returns ``None`` when the call is not an RNG creation, the master
    expression when it is, and :data:`NO_MASTER` for an argument-less
    ``random.Random()`` (seeded from OS entropy — never reproducible).
    Recognised shapes: ``random.Random(...)`` (import-aware),
    ``Random(...)`` imported from :mod:`random`, and the repo's
    ``derive_rng``/``derive_seed``.
    """
    func = call.func
    is_creation = False
    if isinstance(func, ast.Attribute) and func.attr == "Random":
        if (
            isinstance(func.value, ast.Name)
            and module.import_modules.get(func.value.id) == "random"
        ):
            is_creation = True
    elif isinstance(func, ast.Name):
        if func.id == "Random":
            origin = module.import_names.get("Random")
            if origin is not None and origin[0] == "random":
                is_creation = True
        elif func.id in SEED_DERIVERS:
            is_creation = True
    if not is_creation:
        return None
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg in ("master", "x", "seed"):
            return keyword.value
    return NO_MASTER


# -- factory summaries ---------------------------------------------------------


def compute_factory_summaries(
    graph: ProjectGraph,
) -> Dict[Tuple[str, str], FactorySummary]:
    """Fixpoint classification of every function/class as an RNG factory.

    A function is a factory when it creates an RNG (directly or via another
    factory). Its ``seed_params`` are the parameters that feed master
    seeds; ``unseeded`` marks factories whose creations use a non-parameter
    master. Classes are summarised through ``__init__`` (their constructor
    call is the factory call). Convergence is quick: the chain depth is the
    call-graph depth of factory helpers, two or three in practice.
    """
    summaries: Dict[Tuple[str, str], FactorySummary] = {}
    units: List[Tuple[Tuple[str, str], FunctionInfo]] = []
    for function in graph.all_functions():
        units.append((summary_key(function), function))
    for cls in graph.all_classes():
        init = cls.methods.get("__init__")
        if init is not None:
            units.append((summary_key(cls), init))

    for _round in range(8):
        changed = False
        for key, function in units:
            summary = _summarise(function, graph, summaries)
            if summaries.get(key) != summary:
                summaries[key] = summary
                changed = True
        if not changed:
            break
    return summaries


def _summarise(
    function: FunctionInfo,
    graph: ProjectGraph,
    summaries: Dict[Tuple[str, str], FactorySummary],
) -> FactorySummary:
    node = function.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    params = set(function.params)
    env = build_seed_env(node)
    # ast.walk below sees calls inside nested closures too; fold those
    # closures' own seed environments in so a `rng_factory` helper seeding
    # from its enclosing builder's parameter is not misread as unseeded.
    for statement in ast.walk(node):
        if statement is not node and isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            env |= build_seed_env(statement, enclosing_params=tuple(env))
    ctx = SeedContext(
        module=function.module, graph=graph, summaries=summaries, names=env
    )
    #: name -> value expression, for one level of local chasing.
    assigned: Dict[str, ast.expr] = {}
    for statement in _ordered_statements(node):
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    assigned[target.id] = statement.value

    creates = False
    unseeded = False
    seed_params: Set[str] = set()

    def master_params(master: ast.expr, _depth: int = 0) -> Set[str]:
        found: Set[str] = set()
        if _depth > 6:
            return found
        for name_node in ast.walk(master):
            if isinstance(name_node, ast.Name):
                if name_node.id in params:
                    found.add(name_node.id)
                elif name_node.id in assigned:
                    found |= master_params(assigned[name_node.id], _depth + 1)
        return found

    for inner in ast.walk(node):
        if not isinstance(inner, ast.Call):
            continue
        master = rng_master_of(inner, function.module)
        if master is not None:
            creates = True
            if master is NO_MASTER or not is_seed_derived(master, ctx):  # type: ignore[arg-type]
                unseeded = True
            else:
                seed_params |= master_params(master)  # type: ignore[arg-type]
            continue
        callee = _resolve_callable(inner, function.module, graph)
        if callee is None:
            continue
        callee_summary = summaries.get(summary_key(callee))
        if callee_summary is None or not callee_summary.creates_rng:
            continue
        creates = True
        for param_name, argument in _bind_arguments(inner, callee):
            if param_name in callee_summary.seed_params:
                if is_seed_derived(argument, ctx):
                    seed_params |= master_params(argument)
                else:
                    unseeded = True
    return FactorySummary(
        creates_rng=creates,
        seed_params=tuple(sorted(seed_params)),
        unseeded=unseeded,
    )


def _resolve_callable(
    call: ast.Call, module: ModuleInfo, graph: ProjectGraph
) -> Optional[Union[FunctionInfo, ClassInfo]]:
    """The project function or class a call's bare name resolves to."""
    func = call.func
    if not isinstance(func, ast.Name):
        return None
    resolved_function = graph.resolve_function(module, func.id)
    if resolved_function is not None:
        return resolved_function
    return graph.resolve_class(module, func.id)


def _bind_arguments(
    call: ast.Call, callee: Union[FunctionInfo, ClassInfo]
) -> List[Tuple[str, ast.expr]]:
    """(parameter name, argument expression) pairs for a call, best-effort.

    Positional binding skips ``self`` for methods/constructors; ``*args``
    spill is ignored.
    """
    if isinstance(callee, ClassInfo):
        init = callee.methods.get("__init__")
        if init is None:
            return []
        params = [name for name in init.params if name not in ("self", "cls")]
    else:
        params = [
            name for name in callee.params if name not in ("self", "cls")
        ]
    bound: List[Tuple[str, ast.expr]] = []
    for index, argument in enumerate(call.args):
        if isinstance(argument, ast.Starred):
            break
        if index < len(params):
            bound.append((params[index], argument))
    for keyword in call.keywords:
        if keyword.arg is not None:
            bound.append((keyword.arg, keyword.value))
    return bound


def factory_summaries(
    graph: ProjectGraph,
) -> Dict[Tuple[str, str], FactorySummary]:
    """The per-run memoised result of :func:`compute_factory_summaries`."""
    return graph.cached(  # type: ignore[return-value]
        "factory-summaries", lambda: compute_factory_summaries(graph)
    )


def iter_functions(
    module: ModuleInfo,
) -> Iterator[Tuple[FunctionInfo, Optional[ClassInfo], Tuple[str, ...]]]:
    """Every function of *module* with its class and closure parameters.

    Yields ``(function, enclosing class or None, enclosing-function
    parameter names)`` — module functions, methods, and (one level of)
    nested functions, which inherit the enclosing parameters for seed-env
    purposes (the repo's ``rng_factory`` closures).
    """
    def nested(
        outer: FunctionInfo, cls: Optional[ClassInfo]
    ) -> Iterator[Tuple[FunctionInfo, Optional[ClassInfo], Tuple[str, ...]]]:
        outer_node = outer.node
        assert isinstance(outer_node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for statement in ast.walk(outer_node):
            if statement is outer_node or not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            inner = FunctionInfo(
                name=statement.name,
                qualname=f"{outer.qualname}.{statement.name}",
                node=statement,
                module=module,
                class_name=cls.name if cls else None,
            )
            yield inner, cls, tuple(outer.params)

    for function in module.functions.values():
        yield function, None, ()
        yield from nested(function, None)
    for cls in module.classes.values():
        for method in cls.methods.values():
            yield method, cls, ()
            yield from nested(method, cls)


# =============================================================================
# Send / mutation event streams (P2)
# =============================================================================


@dataclass(frozen=True)
class SendEvent:
    """A payload handed to a transport-style call."""

    line: int
    names: Tuple[str, ...]
    loops: Tuple[int, ...]
    node: ast.Call = field(compare=False, hash=False, default=None)  # type: ignore[assignment]


@dataclass(frozen=True)
class MutationEvent:
    """An in-place mutation of a local name."""

    line: int
    name: str
    verb: str
    loops: Tuple[int, ...]
    node: ast.AST = field(compare=False, hash=False, default=None)  # type: ignore[assignment]


@dataclass(frozen=True)
class RebindEvent:
    """A name rebound to a fresh object (severs prior aliasing)."""

    line: int
    name: str
    loops: Tuple[int, ...]


@dataclass
class FunctionEvents:
    """The three event streams of one function body."""

    sends: List[SendEvent] = field(default_factory=list)
    mutations: List[MutationEvent] = field(default_factory=list)
    rebinds: List[RebindEvent] = field(default_factory=list)

    def mutations_after_send(self) -> List[Tuple[MutationEvent, SendEvent]]:
        """Every (mutation, earlier-send) pair where a sent name is mutated
        afterwards — sequentially later, or anywhere in a loop both share
        (the next iteration delivers the mutation "after" the send) —
        without an intervening rebinding of the name."""
        flagged: List[Tuple[MutationEvent, SendEvent]] = []
        for mutation in self.mutations:
            for send in self.sends:
                if mutation.name not in send.names:
                    continue
                if self._sequentially_after(mutation, send) or (
                    self._same_loop(mutation, send)
                ):
                    flagged.append((mutation, send))
                    break
        return flagged

    def _sequentially_after(
        self, mutation: MutationEvent, send: SendEvent
    ) -> bool:
        if mutation.line <= send.line:
            return False
        return not any(
            rebind.name == mutation.name
            and send.line < rebind.line <= mutation.line
            for rebind in self.rebinds
        )

    def _same_loop(self, mutation: MutationEvent, send: SendEvent) -> bool:
        shared = set(mutation.loops) & set(send.loops)
        if not shared:
            return False
        # A rebinding inside the shared loop gives each iteration a fresh
        # object, so the next-iteration aliasing argument no longer holds.
        return not any(
            rebind.name == mutation.name and set(rebind.loops) & shared
            for rebind in self.rebinds
        )


def collect_events(function: _FunctionNode) -> FunctionEvents:
    """Extract the send/mutation/rebind streams of one function body."""
    events = FunctionEvents()

    def names_in_payload(expr: ast.expr) -> Iterator[str]:
        if isinstance(expr, ast.Name):
            yield expr.id
        elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for item in expr.elts:
                yield from names_in_payload(item)
        elif isinstance(expr, ast.Starred):
            yield from names_in_payload(expr.value)

    def visit(node: ast.AST, loops: Tuple[int, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node is not function
        ):
            return  # nested functions get their own analysis
        if isinstance(node, (ast.For, ast.AsyncFor)):
            for name in names_in_payload(node.target):
                events.rebinds.append(
                    RebindEvent(node.lineno, name, loops + (id(node),))
                )
            for child in ast.iter_child_nodes(node):
                visit(child, loops + (id(node),))
            return
        if isinstance(node, ast.While):
            for child in ast.iter_child_nodes(node):
                visit(child, loops + (id(node),))
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    events.rebinds.append(
                        RebindEvent(node.lineno, target.id, loops)
                    )
                elif isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ):
                    events.mutations.append(
                        MutationEvent(
                            node.lineno,
                            target.value.id,
                            f"assignment to .{target.attr}",
                            loops,
                            node,
                        )
                    )
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    events.mutations.append(
                        MutationEvent(
                            node.lineno,
                            target.value.id,
                            "item assignment",
                            loops,
                            node,
                        )
                    )
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                events.mutations.append(
                    MutationEvent(
                        node.lineno,
                        target.value.id,
                        f"augmented assignment to .{target.attr}",
                        loops,
                        node,
                    )
                )
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                events.mutations.append(
                    MutationEvent(
                        node.lineno, target.value.id, "item update", loops, node
                    )
                )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and isinstance(target.value, ast.Name):
                    events.mutations.append(
                        MutationEvent(
                            node.lineno,
                            target.value.id,
                            "deletion",
                            loops,
                            node,
                        )
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in SEND_ATTRS:
                    payload: List[str] = []
                    for argument in node.args:
                        payload.extend(names_in_payload(argument))
                    events.sends.append(
                        SendEvent(
                            node.lineno, tuple(payload), loops, node
                        )
                    )
                elif func.attr in MUTATOR_METHODS and isinstance(
                    func.value, ast.Name
                ):
                    events.mutations.append(
                        MutationEvent(
                            node.lineno,
                            func.value.id,
                            f".{func.attr}() call",
                            loops,
                            node,
                        )
                    )
            elif isinstance(func, ast.Name):
                if func.id == "heappush":
                    payload = []
                    for argument in node.args:
                        payload.extend(names_in_payload(argument))
                    events.sends.append(
                        SendEvent(node.lineno, tuple(payload), loops, node)
                    )
                elif (
                    func.id == "setattr"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                ):
                    events.mutations.append(
                        MutationEvent(
                            node.lineno,
                            node.args[0].id,
                            "setattr",
                            loops,
                            node,
                        )
                    )
        for child in ast.iter_child_nodes(node):
            visit(child, loops)

    for statement in function.body:
        visit(statement, ())
    return events
