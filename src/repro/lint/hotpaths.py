"""Hot-path designation: which functions the allocation rules police.

The H rules (H1-H4, :mod:`repro.lint.rules_alloc`) only make sense on code
that runs *per message* or *per consultation* — flagging a one-time setup
allocation would be noise. This module decides what counts as hot:

* **Roots** come from two places. Built-in policy: every ``step``/
  ``initialize`` handler on a (transitive) :class:`SimulatedAgent`
  subclass, and every public method of a (transitive) ``NogoodStore``
  subclass — the batch consultation entry points (``violated_*_batch``),
  ``for_value`` and the watched-kernel internals included. Committed
  policy: a ``hotpaths.toml`` next to the tree (seeded from
  ``repro solve --profile`` cumtime output) adds whole modules and
  individual ``scope::Qualified.name`` entries.
* **Closure**: the hot set is the transitive closure of those roots over
  :class:`~repro.lint.graph.ProjectGraph` call edges — bare-name calls
  resolved through imports, ``self.method()`` calls resolved through the
  class and its (name-resolvable) bases. A helper only called from a hot
  handler is as hot as the handler.

Dunder methods are never hot: ``__init__`` runs once per object, and the
rules are about steady-state dispatch, not construction. The whole
analysis is memoised on the graph, so every H rule and every file of a run
shares one computation.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .graph import ClassInfo, FunctionInfo, ModuleInfo, ProjectGraph

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI only
    tomllib = None  # type: ignore[assignment]

#: File name of the committed hot-path policy, searched upward from the
#: linted file (repo root in practice).
CONFIG_FILENAME = "hotpaths.toml"


@dataclass(frozen=True)
class HotConfig:
    """The hot-root policy; the built-in default matches the repo layout."""

    #: Classes whose subclass closure contributes handler-method roots.
    agent_classes: Tuple[str, ...] = ("SimulatedAgent",)
    #: The simulator-protocol handlers on those classes.
    agent_methods: Tuple[str, ...] = ("step", "initialize")
    #: Classes whose subclass closure contributes *every* public method
    #: (the store consultation surface: for_value, violated_*_batch, ...).
    store_classes: Tuple[str, ...] = ("NogoodStore",)
    #: Repro-relative modules whose every function/method is hot.
    modules: Tuple[str, ...] = ("core/watched.py", "core/packed.py")
    #: Individual profile-observed roots, as ``scope::Qualified.name``.
    entries: Tuple[str, ...] = ()

    def token(self) -> str:
        """A stable cache key for this policy."""
        return repr(
            (
                self.agent_classes,
                self.agent_methods,
                self.store_classes,
                self.modules,
                self.entries,
            )
        )


DEFAULT_CONFIG = HotConfig()

#: Parsed-config cache keyed by resolved toml path ("" = no file found).
_config_cache: Dict[str, HotConfig] = {}


def find_config_file(start: Path) -> Optional[Path]:
    """The nearest ``hotpaths.toml`` at or above *start* (file or dir)."""
    current = start if start.is_absolute() else Path.cwd() / start
    if current.suffix:  # a file path (possibly not existing yet)
        current = current.parent
    for candidate in (current, *current.parents):
        config = candidate / CONFIG_FILENAME
        try:
            if config.is_file():
                return config
        except OSError:  # pragma: no cover - unreadable directory
            continue
    return None


def load_hot_config(start: Path) -> HotConfig:
    """The policy governing files under *start* (built-in + toml merge)."""
    config_path = find_config_file(start)
    key = str(config_path) if config_path is not None else ""
    cached = _config_cache.get(key)
    if cached is not None:
        return cached
    if config_path is None:
        config = DEFAULT_CONFIG
    else:
        config = parse_hot_config(config_path.read_text(encoding="utf-8"))
    _config_cache[key] = config
    return config


def parse_hot_config(text: str) -> HotConfig:
    """Merge a ``hotpaths.toml`` text over the built-in default policy.

    Recognised keys, all under ``[hot]`` and all optional:
    ``agent_classes``, ``agent_methods``, ``store_classes``, ``modules``,
    ``entries`` — each an array of strings. Unknown keys are ignored so a
    newer toml keeps working with an older checker.
    """
    data = _load_toml(text).get("hot", {})

    def strings(key: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
        value = data.get(key)
        if not isinstance(value, list):
            return default
        return tuple(str(item) for item in value)

    return HotConfig(
        agent_classes=strings("agent_classes", DEFAULT_CONFIG.agent_classes),
        agent_methods=strings("agent_methods", DEFAULT_CONFIG.agent_methods),
        store_classes=strings("store_classes", DEFAULT_CONFIG.store_classes),
        modules=strings("modules", DEFAULT_CONFIG.modules),
        entries=strings("entries", DEFAULT_CONFIG.entries),
    )


def _load_toml(text: str) -> Dict[str, object]:
    if tomllib is not None:
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError:
            return {}
    return _parse_toml_subset(text)


_SECTION = re.compile(r"^\[(?P<name>[A-Za-z0-9_.-]+)\]\s*$")
_KEY = re.compile(r"^(?P<key>[A-Za-z0-9_-]+)\s*=\s*(?P<rest>.*)$")
_STRING = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _parse_toml_subset(text: str) -> Dict[str, object]:
    """Minimal TOML reader for Python 3.10 (no :mod:`tomllib`).

    Supports exactly what :func:`parse_hot_config` needs — ``[section]``
    headers, ``key = [...]`` string arrays (single- or multi-line), and
    ``#`` comments. Anything else is skipped.
    """
    result: Dict[str, object] = {}
    section: Dict[str, object] = result
    pending_key: Optional[str] = None
    pending: List[str] = []
    in_array = False
    for raw in text.splitlines():
        line = raw.strip()
        if in_array:
            pending.extend(match.group(1) for match in _STRING.finditer(line))
            if "]" in line.split("#", 1)[0]:
                section[pending_key or ""] = list(pending)
                pending_key, pending, in_array = None, [], False
            continue
        if not line or line.startswith("#"):
            continue
        header = _SECTION.match(line)
        if header is not None:
            table: Dict[str, object] = {}
            result[header.group("name")] = table
            section = table
            continue
        assignment = _KEY.match(line)
        if assignment is None:
            continue
        rest = assignment.group("rest").strip()
        if not rest.startswith("["):
            continue  # only arrays are part of the subset
        values = [match.group(1) for match in _STRING.finditer(rest)]
        if "]" in rest.split("#", 1)[0]:
            section[assignment.group("key")] = values
        else:
            pending_key = assignment.group("key")
            pending = values
            in_array = True
    return result


@dataclass
class HotSet:
    """The resolved hot functions of one graph under one policy."""

    #: ``id(ast node)`` of each hot function/method definition.
    node_ids: Set[int] = field(default_factory=set)
    #: Human-readable labels, ``scope::Qualified.name``, for reporting.
    labels: Dict[int, str] = field(default_factory=dict)
    #: Labels of the roots (pre-closure), for explain/debug output.
    roots: Set[str] = field(default_factory=set)

    def is_hot(self, node: ast.AST) -> bool:
        return id(node) in self.node_ids

    def label(self, node: ast.AST) -> str:
        return self.labels.get(id(node), "<unknown>")

    def __len__(self) -> int:
        return len(self.node_ids)


def hot_set_for(graph: ProjectGraph, path: str) -> HotSet:
    """The memoised hot set of *graph* under the policy governing *path*."""
    config = load_hot_config(Path(path))
    key = f"hotpaths::{config.token()}"
    return graph.cached(  # type: ignore[return-value]
        key, lambda: compute_hot_set(graph, config)
    )


def compute_hot_set(
    graph: ProjectGraph, config: HotConfig = DEFAULT_CONFIG
) -> HotSet:
    """Roots per *config*, then transitive closure over call edges."""
    hot = HotSet()
    worklist: List[FunctionInfo] = []

    def add(info: FunctionInfo, root: bool = False) -> None:
        if info.name.startswith("__"):
            return  # dunders are construction/representation, not dispatch
        if id(info.node) in hot.node_ids:
            return
        hot.node_ids.add(id(info.node))
        label = f"{info.module.scope or info.module.path}::{info.qualname}"
        hot.labels[id(info.node)] = label
        if root:
            hot.roots.add(label)
        worklist.append(info)

    agent_names: Set[str] = set()
    for base in config.agent_classes:
        agent_names |= graph.subclasses_of(base)
    store_names: Set[str] = set()
    for base in config.store_classes:
        store_names |= graph.subclasses_of(base)
    for cls in graph.all_classes():
        if cls.name in agent_names:
            for method_name in config.agent_methods:
                method = cls.methods.get(method_name)
                if method is not None:
                    add(method, root=True)
        if cls.name in store_names:
            for method in cls.methods.values():
                add(method, root=True)
    for module in graph.modules.values():
        if module.scope in config.modules:
            for function in module.functions.values():
                add(function, root=True)
            for cls in module.classes.values():
                for method in cls.methods.values():
                    add(method, root=True)
    for entry in config.entries:
        info = _resolve_entry(graph, entry)
        if info is not None:
            add(info, root=True)

    while worklist:
        caller = worklist.pop()
        for callee in _callees(graph, caller):
            add(callee)
    return hot


def _resolve_entry(
    graph: ProjectGraph, entry: str
) -> Optional[FunctionInfo]:
    """``scope::Qualified.name`` → FunctionInfo, or None if absent."""
    scope, _, qualname = entry.partition("::")
    module = graph.module_by_scope(scope)
    if module is None or not qualname:
        return None
    if "." in qualname:
        class_name, _, method_name = qualname.partition(".")
        cls = module.classes.get(class_name)
        if cls is None:
            return None
        return cls.methods.get(method_name)
    return module.functions.get(qualname)


def _callees(
    graph: ProjectGraph, caller: FunctionInfo
) -> Iterator[FunctionInfo]:
    """Call edges out of *caller* that resolve inside the graph."""
    module = caller.module
    own_class = (
        module.classes.get(caller.class_name)
        if caller.class_name is not None
        else None
    )
    for node in ast.walk(caller.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            resolved = graph.resolve_function(module, func.id)
            if resolved is not None:
                yield resolved
        elif isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self":
                if own_class is not None:
                    method = _method_on(graph, own_class, func.attr)
                    if method is not None:
                        yield method
            elif isinstance(base, ast.Name):
                # module-alias call: `helpers.f()` where `import x as helpers`
                dotted = module.import_modules.get(base.id)
                if dotted is not None and dotted.startswith("repro."):
                    scope = dotted[len("repro."):].replace(".", "/") + ".py"
                    target = graph.module_by_scope(scope)
                    if target is not None:
                        resolved = target.functions.get(func.attr)
                        if resolved is not None:
                            yield resolved


def _method_on(
    graph: ProjectGraph,
    cls: ClassInfo,
    name: str,
    _seen: Optional[Set[int]] = None,
) -> Optional[FunctionInfo]:
    """Method lookup through *cls* and its name-resolvable base chain."""
    seen = _seen if _seen is not None else set()
    if id(cls) in seen:
        return None
    seen.add(id(cls))
    method = cls.methods.get(name)
    if method is not None:
        return method
    for base_name in cls.bases:
        base = graph.resolve_class(cls.module, base_name)
        if base is None:
            continue
        found = _method_on(graph, base, name, seen)
        if found is not None:
            return found
    return None


def hot_modules_of(config: HotConfig) -> Tuple[str, ...]:
    """The whole-module hot scopes (exported for docs/explain output)."""
    return config.modules


def describe_hot_set(hot: HotSet) -> str:
    """A deterministic multi-line summary (used by tests and debugging)."""
    lines = [f"{len(hot)} hot function(s), {len(hot.roots)} root(s)"]
    lines.extend(sorted(hot.labels.values()))
    return "\n".join(lines)


__all__ = [
    "CONFIG_FILENAME",
    "HotConfig",
    "HotSet",
    "DEFAULT_CONFIG",
    "compute_hot_set",
    "describe_hot_set",
    "find_config_file",
    "hot_set_for",
    "load_hot_config",
    "parse_hot_config",
]
