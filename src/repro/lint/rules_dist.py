"""The distribution-safety rules: S1-S5.

The in-process simulators are forgiving in ways the sharded runtime (and
the socket transport already in the tree) are not: objects cross "process
boundaries" by reference, agents alias each other's state freely, host
identity functions look stable, and a mis-matched protocol merely drops a
message instead of wedging a remote peer. These rules certify the
properties that must hold before any agent is moved out of process:

=====  ======================================================================
S1     Serialization closure. Everything handed to a transport send, an
       executor submission, a process spawn, or a message payload must
       pickle — no lambdas, local closures, open OS handles, generators,
       thread locks, or (because a duplicated stream forks the trial's
       randomness) RNG objects anywhere in the transitive value closure.
S2     Non-blocking handlers. Agent code reachable from message-handler
       dispatch must not block: ``sleep``, console input, file or socket
       I/O stall the whole shard, not one agent. Waiting is expressed by
       returning and acting on the next delivery.
S3     No cross-agent aliasing. A mutable object passed loop-invariantly
       into every agent a builder creates, stored as agent state, and
       mutated by agent code only works because those agents share one
       process. Each agent owns its mutable state; cross-agent aggregation
       belongs to the harness.
S4     Host-independent ordering. ``id()`` and unseeded ``hash()`` differ
       per process and per host; dict iteration order is insertion order,
       which differs per replica. None of them may feed a sort key, heap
       key, or min/max tie-break in simulated code.
S5     Protocol conformance. Within an algorithm family, every message
       type a role emits has a handler on the roles that can receive it,
       and no handler exists for a type nobody sends — an emit-without-
       handler wedges the distributed run (the message is consumed
       without effect, quiescence accounting still charges it), a
       handler-without-emit is dead protocol surface that hides exactly
       that bug.
=====  ======================================================================

S1 and S3 consume the boundary analysis in :mod:`repro.lint.boundary`;
S2 and S5 reuse the dispatch-discovery machinery of
:mod:`repro.lint.effects`. The lint bench cross-validates S1 dynamically:
every payload sent in a pinned trial corpus is pickle-round-tripped and
checked against the static closure (see ``repro.experiments.bench``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .boundary import boundary_closures, shared_agent_state
from .effects import (
    AGENT_BASE,
    _isinstance_message_types,
    _resolve_method,
)
from .findings import Finding
from .graph import ClassInfo, ModuleInfo, ProjectGraph
from .rules import SIMULATED_DIRS, Rule, _in_dirs

#: Where S4's ordering-key discipline applies: the simulated world plus
#: the pure layers it computes with.
ORDERING_DIRS = SIMULATED_DIRS + ("core/", "learning/")

#: Blocking call heads by module-ish receiver: ``time.sleep`` etc.
_BLOCKING_ATTR_CALLS = {
    "sleep": ("time",),
    "system": ("os",),
    "run": ("subprocess",),
    "Popen": ("subprocess",),
    "check_call": ("subprocess",),
    "check_output": ("subprocess",),
    "urlopen": ("request", "urllib"),
    "get": ("requests",),
    "post": ("requests",),
}

#: Blocking method names regardless of receiver: socket/file primitives.
_BLOCKING_METHODS = frozenset(
    {"recv", "recv_into", "accept", "connect", "sendall", "makefile",
     "read_text", "write_text", "read_bytes", "write_bytes", "readline"}
)

#: Blocking bare-name calls.
_BLOCKING_NAMES = frozenset({"input", "open", "sleep", "create_connection"})

#: Ordering sinks whose ``key=`` S4 inspects.
_KEYED_SINKS = frozenset({"sorted", "min", "max", "sort", "nsmallest",
                          "nlargest"})

_HOST_DEPENDENT = frozenset({"id", "hash"})


def _hazard_article(kind: str) -> str:
    return {
        "lambda": "a lambda",
        "closure": "a closure over locals",
        "handle": "an open OS handle",
        "rng": "an RNG stream",
        "generator": "a generator",
        "lock": "a thread-synchronization primitive",
    }.get(kind, kind)


class SerializationClosureRule(Rule):
    """S1 — everything crossing a process boundary must serialize."""

    id = "S1"
    title = "serializable boundary closures"

    def applies(self, scope: Optional[str]) -> bool:
        return scope is not None

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        hint = (
            "ship data, not machinery: replace the captured object with a "
            "picklable description (registry label, seed, plain fields) "
            "and rebuild it on the far side — exactly how algorithm specs "
            "travel by name"
        )
        for crossing in boundary_closures(graph):
            if crossing.path != path:
                continue
            for hazard in crossing.hazards:
                yield self._finding(
                    crossing.node, path, lines,
                    f"{crossing.kind} boundary '{crossing.label}' carries "
                    f"{_hazard_article(hazard.kind)} ('{hazard.detail}') — "
                    "it cannot cross a process boundary"
                    + (
                        " without forking the stream"
                        if hazard.kind == "rng"
                        else ""
                    ),
                    hint,
                )


class BlockingHandlerRule(Rule):
    """S2 — no blocking calls reachable from message-handler dispatch."""

    id = "S2"
    title = "non-blocking handlers"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, ("algorithms/",))

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        module = graph.module_at(path)
        if module is None:
            return
        agent_classes: Set[str] = graph.cached(  # type: ignore[assignment]
            "simulated-agent-closure",
            lambda: graph.subclasses_of(AGENT_BASE),
        )
        hint = (
            "a handler that blocks stalls every agent sharing the worker "
            "process; return instead and act when the next delivery "
            "arrives — the simulators and the socket transport both "
            "redeliver"
        )
        for cls in module.classes.values():
            if cls.name not in agent_classes or cls.name == AGENT_BASE:
                continue
            for method_name in self._reachable_methods(graph, module, cls):
                method = _resolve_method(graph, module, cls, method_name)
                if method is None or method.module is not module:
                    continue
                for call in ast.walk(method.node):
                    if not isinstance(call, ast.Call):
                        continue
                    label = self._blocking_label(call)
                    if label is not None:
                        yield self._finding(
                            call, path, lines,
                            f"blocking call '{label}' is reachable from "
                            f"message-handler dispatch "
                            f"({cls.name}.{method_name}) — one slow agent "
                            "would stall its whole worker process",
                            hint,
                        )

    @staticmethod
    def _reachable_methods(
        graph: ProjectGraph, module: ModuleInfo, cls: ClassInfo
    ) -> List[str]:
        """Methods transitively reachable from the dispatch entrypoints."""
        queue = ["initialize", "step"]
        visited: Set[str] = set()
        while queue:
            name = queue.pop()
            if name in visited:
                continue
            visited.add(name)
            method = _resolve_method(graph, module, cls, name)
            if method is None:
                continue
            for inner in ast.walk(method.node):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and isinstance(inner.func.value, ast.Name)
                    and inner.func.value.id == "self"
                ):
                    queue.append(inner.func.attr)
        return sorted(visited)

    @staticmethod
    def _blocking_label(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_NAMES:
                return func.id
            return None
        if isinstance(func, ast.Attribute):
            receivers = _BLOCKING_ATTR_CALLS.get(func.attr)
            if receivers is not None:
                receiver = func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id in receivers
                ):
                    return f"{receiver.id}.{func.attr}"
                return None
            if func.attr in _BLOCKING_METHODS:
                return ast.unparse(func)
        return None


class SharedAgentStateRule(Rule):
    """S3 — no mutable object is reachable from two agents at once."""

    id = "S3"
    title = "no cross-agent aliasing"

    def applies(self, scope: Optional[str]) -> bool:
        return scope is not None

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        hint = (
            "give each agent its own mutable state and let the harness "
            "aggregate (per-agent logs merged at cycle end, like the "
            "check counters) — sharding puts these agents in different "
            "processes where the alias silently becomes N divergent copies"
        )
        for shared in shared_agent_state(graph):
            if shared.path != path:
                continue
            yield self._finding(
                shared.node, path, lines,
                f"every {shared.class_name} built by {shared.builder} "
                f"aliases one '{shared.argument}' (stored as "
                f"self.{shared.attr}) and agent code mutates it "
                f"({'; '.join(shared.mutations)}) — cross-agent shared "
                "mutable state only works in a single process",
                hint,
            )


class HostDependentOrderRule(Rule):
    """S4 — no host-dependent value feeds an ordering decision."""

    id = "S4"
    title = "host-independent ordering keys"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, ORDERING_DIRS)

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        hint = (
            "order by stable, replayable keys: ids assigned by the "
            "problem, explicit sequence numbers, or structural sort keys "
            "(stable_nogood_key) — id()/hash() change per process and "
            "dict order is per-replica insertion history"
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_keyed_sink(node, path, lines, hint)
                yield from self._check_heap_push(node, path, lines, hint)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_dict_iteration(
                    node, path, lines, hint
                )

    def _check_keyed_sink(
        self,
        call: ast.Call,
        path: str,
        lines: Sequence[str],
        hint: str,
    ) -> Iterator[Finding]:
        head: Optional[str] = None
        if isinstance(call.func, ast.Name):
            head = call.func.id
        elif isinstance(call.func, ast.Attribute):
            head = call.func.attr
        if head not in _KEYED_SINKS:
            return
        for keyword in call.keywords:
            if keyword.arg != "key":
                continue
            culprit = self._host_dependent_use(keyword.value)
            if culprit is not None:
                yield self._finding(
                    call, path, lines,
                    f"'{head}' orders by host-dependent '{culprit}' — the "
                    "result differs between processes and across "
                    "interpreter restarts",
                    hint,
                )

    def _check_heap_push(
        self,
        call: ast.Call,
        path: str,
        lines: Sequence[str],
        hint: str,
    ) -> Iterator[Finding]:
        head: Optional[str] = None
        if isinstance(call.func, ast.Name):
            head = call.func.id
        elif isinstance(call.func, ast.Attribute):
            head = call.func.attr
        if head not in ("heappush", "heappushpop", "heapreplace"):
            return
        if len(call.args) < 2:
            return
        culprit = self._host_dependent_use(call.args[1])
        if culprit is not None:
            yield self._finding(
                call, path, lines,
                f"heap key contains host-dependent '{culprit}' — pop "
                "order would differ per process",
                hint,
            )

    def _check_dict_iteration(
        self,
        loop: ast.For,
        path: str,
        lines: Sequence[str],
        hint: str,
    ) -> Iterator[Finding]:
        iterator = loop.iter
        if not (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Attribute)
            and iterator.func.attr in ("items", "keys", "values")
        ):
            return
        for inner in ast.walk(loop):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, (ast.Name, ast.Attribute))
            ):
                head = (
                    inner.func.id
                    if isinstance(inner.func, ast.Name)
                    else inner.func.attr
                )
                if head in ("heappush", "heappushpop", "heapreplace"):
                    yield self._finding(
                        loop, path, lines,
                        "dict-iteration order feeds a heap — insertion "
                        "history differs per replica, so pop order is not "
                        "reproducible across processes; iterate "
                        "sorted(...) instead",
                        hint,
                    )
                    return

    @staticmethod
    def _host_dependent_use(key: ast.expr) -> Optional[str]:
        """'id(...)'/'hash(...)' text if *key* depends on one, else None."""
        if isinstance(key, ast.Name) and key.id in _HOST_DEPENDENT:
            return key.id
        for node in ast.walk(key):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _HOST_DEPENDENT
            ):
                return f"{node.func.id}({ast.unparse(node.args[0]) if node.args else ''})"
        return None


class ProtocolConformanceRule(Rule):
    """S5 — emitted and handled message types match within a family."""

    id = "S5"
    title = "protocol conformance"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, ("algorithms/",))

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        module = graph.module_at(path)
        if module is None:
            return
        agent_classes: Set[str] = graph.cached(  # type: ignore[assignment]
            "simulated-agent-closure",
            lambda: graph.subclasses_of(AGENT_BASE),
        )
        family = self._family_classes(graph, module, agent_classes)
        if not family:
            return
        emitted: Dict[str, ast.AST] = {}
        handled: Dict[str, ast.AST] = {}
        for cls in family:
            for method in self._family_methods(graph, cls):
                for inner in ast.walk(method.node):
                    if isinstance(inner, ast.Call):
                        name = self._message_construction(inner)
                        if name is not None:
                            emitted.setdefault(name, inner)
                    elif isinstance(inner, ast.If):
                        for name in _isinstance_message_types(inner.test):
                            handled.setdefault(name, inner)
        if not emitted and not handled:
            return
        for name in sorted(set(emitted) - set(handled)):
            yield self._finding(
                emitted[name], path, lines,
                f"this algorithm family emits {name} but registers no "
                "handler for it — on a remote peer the delivery would be "
                "consumed without effect and the protocol wedges",
                "add an isinstance dispatch branch for the type on every "
                "role that can receive it, or stop emitting it",
            )
        for name in sorted(set(handled) - set(emitted)):
            yield self._finding(
                handled[name], path, lines,
                f"this algorithm family handles {name} but never emits "
                "it — dead protocol surface that hides a missing or "
                "misnamed emission",
                "emit the type somewhere in the family or delete the "
                "handler branch",
            )

    @staticmethod
    def _family_classes(
        graph: ProjectGraph,
        module: ModuleInfo,
        agent_classes: Set[str],
    ) -> List[ClassInfo]:
        """Agent classes defined in *module* plus those it instantiates."""
        family: Dict[str, ClassInfo] = {}
        for cls in module.classes.values():
            if cls.name in agent_classes and cls.name != AGENT_BASE:
                family[cls.name] = cls
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in agent_classes
                and node.func.id != AGENT_BASE
            ):
                resolved = graph.resolve_class(module, node.func.id)
                if resolved is not None:
                    family.setdefault(resolved.name, resolved)
        return [family[name] for name in sorted(family)]

    @staticmethod
    def _family_methods(graph: ProjectGraph, cls: ClassInfo):
        """Methods of *cls* and its graph-visible bases (excluding the
        abstract agent base, whose helpers are family-neutral)."""
        seen: Set[str] = set()
        stack = [cls]
        visited_classes = {cls.name}
        while stack:
            current = stack.pop()
            for name, method in current.methods.items():
                if name not in seen:
                    seen.add(name)
                    yield method
            for base_name in current.bases:
                if base_name == AGENT_BASE:
                    continue
                base = graph.resolve_class(current.module, base_name)
                if base is not None and base.name not in visited_classes:
                    visited_classes.add(base.name)
                    stack.append(base)

    @staticmethod
    def _message_construction(call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Name):
            name = call.func.id
            if name.endswith("Message") and name != "Message":
                return name
        return None


DIST_RULES: Tuple[Rule, ...] = (
    SerializationClosureRule(),
    BlockingHandlerRule(),
    SharedAgentStateRule(),
    HostDependentOrderRule(),
    ProtocolConformanceRule(),
)
