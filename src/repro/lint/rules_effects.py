"""The interleaving rules: R1, R2, R3.

Built on the handler-effect analysis (:mod:`repro.lint.effects`): each rule
statically flags a hazard class that only bites when the transport exercises
its reordering freedom — exactly the bugs the DPOR explorer
(:mod:`repro.verify`) hunts dynamically. Static and dynamic layer share the
footprints, so a rule violation here predicts a schedule divergence there.

=====  ======================================================================
R1     View-counter bypass. Neighbor state lives in an
       :class:`~repro.core.assignment.AgentView`, whose ``update`` guards
       every write with the version/priority counters that downstream
       consumers (the store's priority-key cache, the packed-view mirror)
       invalidate on. Reaching around the API — touching the view's
       private internals or item-assigning into it — records unstable
       neighbor state without bumping those counters, so a reordered
       delivery can leave a consumer reading a stale cache.
R2     Non-commuting handlers under reordering. The transport guarantees
       FIFO per channel only: messages from distinct senders arrive in
       either order. Handlers that merely *absorb* (update the view,
       record a nogood) tolerate that; a handler that **commits decision
       state** (``value``/``priority``/``phase``) inside the per-message
       dispatch while conflicting with another handler's footprint makes
       the outcome depend on delivery order. The fix is the repo's staged
       pattern: absorb every message first, decide once afterwards.
R3     Store mutation on a consultation path. Methods named like queries
       (``is_*``, ``count_*``, ``_check*``, ``_evaluate*``, ...) are
       called from contexts that assume them effect-free on the nogood
       store — including the explorer's commutativity reasoning and the
       check-counting contract. A ``store.add`` reachable from such a
       path is a read-only lie: it desynchronizes check accounting and
       invalidates the commutativity matrix built from the footprints.
=====  ======================================================================
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from .effects import (
    HandlerEffect,
    handler_effects,
    method_footprint,
)
from .findings import Finding
from .graph import ClassInfo, ModuleInfo, ProjectGraph
from .rules import Rule, _in_dirs

#: Self-attributes treated as holding an AgentView (name-based).
VIEW_ATTR_FRAGMENT = "view"

#: Method-name prefixes that promise a read-only consultation (R3).
CONSULTATION_PREFIXES = (
    "is_", "count_", "_is_", "_count_", "_check", "_consistent",
    "_evaluate", "_weighted", "_weight", "_least", "_first_consistent",
)

#: Store-holding attributes (name-based, like the A1 transport fragments).
STORE_ATTR_FRAGMENT = "store"


def _agent_classes(graph: ProjectGraph) -> Set[str]:
    return graph.cached(  # type: ignore[return-value]
        "simulated-agent-closure",
        lambda: graph.subclasses_of("SimulatedAgent"),
    )


class ViewCounterBypassRule(Rule):
    """R1 — neighbor state goes through AgentView's counter-guarded API."""

    id = "R1"
    title = "view-counter bypass"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, ("algorithms/",))

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        module = graph.module_at(path)
        if module is None:
            return
        agent_classes = _agent_classes(graph)
        hint = (
            "go through AgentView.update/forget — they bump the "
            "version/priority counters that the store's priority-key cache "
            "and the packed-view mirror invalidate on; raw writes leave "
            "those consumers reading stale state after a reordered delivery"
        )
        for cls in module.classes.values():
            if cls.name not in agent_classes:
                continue
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    finding = self._check_node(
                        node, cls, method.name, path, lines, hint
                    )
                    if finding is not None:
                        yield finding

    def _check_node(
        self,
        node: ast.AST,
        cls: ClassInfo,
        method_name: str,
        path: str,
        lines: Sequence[str],
        hint: str,
    ) -> Optional[Finding]:
        # self.<view>.<_private> in any context: internals are off-limits.
        if isinstance(node, ast.Attribute) and node.attr.startswith("_"):
            view_attr = _view_attribute(node.value)
            if view_attr is not None:
                return self._finding(
                    node, path, lines,
                    f"{cls.name}.{method_name} reaches into the view's "
                    f"internals ('{view_attr}.{node.attr}') — neighbor "
                    "state read or written without the view-counter guard",
                    hint,
                )
        # self.<view>[...] = ... (or del): item writes bypass update().
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            view_attr = _view_attribute(node.value)
            if view_attr is not None:
                return self._finding(
                    node, path, lines,
                    f"{cls.name}.{method_name} item-assigns into "
                    f"'{view_attr}' — the write skips AgentView.update's "
                    "change detection and counter bump",
                    hint,
                )
        return None


def _view_attribute(node: ast.expr) -> Optional[str]:
    """``attr`` if *node* is ``self.<attr>`` and attr names a view."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and VIEW_ATTR_FRAGMENT in node.attr.lower()
    ):
        return node.attr
    return None


class NonCommutingHandlersRule(Rule):
    """R2 — decision-committing handlers must commute under reordering."""

    id = "R2"
    title = "non-commuting handlers under reordering"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, ("algorithms/",))

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        module = graph.module_at(path)
        if module is None:
            return
        table = handler_effects(graph)
        hint = (
            "absorb messages first and decide once after the loop (the "
            "state_changed pattern): a handler that writes value/priority "
            "per message commits to half-absorbed state, and the transport "
            "only guarantees FIFO per sender channel"
        )
        for cls in module.classes.values():
            handlers = table.get(cls.name)
            if not handlers or cls.module.path != path:
                continue
            types = sorted(handlers)
            for index, type_a in enumerate(types):
                for type_b in types[index:]:
                    yield from self._check_pair(
                        handlers[type_a], handlers[type_b], cls, path,
                        lines, hint,
                    )

    def _check_pair(
        self,
        effect_a: HandlerEffect,
        effect_b: HandlerEffect,
        cls: ClassInfo,
        path: str,
        lines: Sequence[str],
        hint: str,
    ) -> Iterator[Finding]:
        conflict = effect_a.conflicts_with(effect_b)
        if not conflict:
            return
        deciders: List[HandlerEffect] = [
            effect
            for effect in dict.fromkeys((effect_a, effect_b))
            if effect.decision_writes
        ]
        if not deciders:
            return
        anchor = deciders[0]
        node = _line_anchor(anchor.line)
        pair = (
            f"{effect_a.message_type} and {effect_b.message_type}"
            if effect_a.message_type != effect_b.message_type
            else f"two {effect_a.message_type} deliveries"
        )
        yield self._finding(
            node, path, lines,
            f"{cls.name}: handlers for {pair} do not commute (conflict on "
            f"{sorted(conflict)}) and the {anchor.message_type} handler "
            f"writes decision state {sorted(anchor.decision_writes)} "
            "inside the per-message dispatch — delivery order from "
            "distinct senders changes the outcome",
            hint,
        )


class ConsultationMutationRule(Rule):
    """R3 — consultation-named methods never mutate the nogood store."""

    id = "R3"
    title = "store mutation on consultation path"

    def applies(self, scope: Optional[str]) -> bool:
        return _in_dirs(scope, ("algorithms/",))

    def check(
        self,
        tree: ast.Module,
        path: str,
        scope: Optional[str],
        lines: Sequence[str],
        graph: ProjectGraph,
    ) -> Iterator[Finding]:
        module = graph.module_at(path)
        if module is None:
            return
        agent_classes = _agent_classes(graph)
        hint = (
            "move the mutation out of the query path (record nogoods in "
            "the handler that received them): callers, the check-counting "
            "contract, and the commutativity matrix all assume "
            "consultation methods leave the store untouched"
        )
        for cls in module.classes.values():
            if cls.name not in agent_classes:
                continue
            for method in cls.methods.values():
                if not method.name.startswith(CONSULTATION_PREFIXES):
                    continue
                footprint = method_footprint(
                    graph, module, cls, method.name
                )
                if footprint is None:
                    continue
                _reads, writes, visited = footprint
                mutated = sorted(
                    attr
                    for attr in writes
                    if STORE_ATTR_FRAGMENT in attr.lower()
                )
                if mutated:
                    yield self._finding(
                        method.node, path, lines,
                        f"{cls.name}.{method.name} is consultation-named "
                        f"but (transitively, via {sorted(visited)}) "
                        f"mutates store state {mutated}",
                        hint,
                    )


def _line_anchor(line: int) -> ast.AST:
    """A minimal AST node carrying just a position (for effect findings,
    whose anchor is a dispatch branch located during analysis)."""
    node = ast.Pass()
    node.lineno = line
    node.col_offset = 0
    return node


EFFECT_RULES: Tuple[Rule, ...] = (
    ViewCounterBypassRule(),
    NonCommutingHandlersRule(),
    ConsultationMutationRule(),
)
