"""Parsing of ``# repro-lint:`` control comments.

Two forms are recognised:

* ``# repro-lint: disable=D1 -- justification text`` — suppress the named
  rule(s) on this line (or, when the comment stands alone on its line, on
  the next code line). The justification after ``--`` is **mandatory**: a
  suppression is a claim that the invariant holds for a reason the checker
  cannot see, and that reason must be written down. A disable without one
  is itself reported (rule X0).
* ``# repro-lint: module=<relpath>`` — pretend the file lives at
  *relpath* inside ``src/repro/`` for scoping purposes. Used by test
  fixtures that must exercise directory-scoped rules from ``tests/``.

Comments are read with :mod:`tokenize`, so strings containing the marker
text do not trigger it.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

_DISABLE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Z0-9,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)
_MODULE = re.compile(r"#\s*repro-lint:\s*module=(?P<path>\S+)\s*$")


@dataclass(frozen=True)
class BadSuppression:
    """A malformed disable comment (no justification / unknown rule)."""

    line: int
    column: int
    message: str


@dataclass
class SuppressionMap:
    """Per-line rule suppressions plus any malformed control comments."""

    #: line number -> set of rule ids disabled on that line
    by_line: Dict[int, Set[str]]
    bad: List[BadSuppression]
    #: scope override from a ``module=`` pragma, if any
    module_override: Optional[str] = None

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self.by_line.get(line, _EMPTY)


_EMPTY: Set[str] = set()


def parse_suppressions(
    source: str, known_rules: Set[str]
) -> SuppressionMap:
    """Extract the suppression map of *source*.

    A disable comment trailing a code line applies to that line; a disable
    comment alone on its line applies to the next line that holds code
    (so multi-line statements can be annotated above their first line).
    """
    by_line: Dict[int, Set[str]] = {}
    bad: List[BadSuppression] = []
    module_override: Optional[str] = None
    #: (line, rules) comments waiting for the next code line
    pending: List[Tuple[int, Set[str]]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return SuppressionMap(by_line, bad, module_override)

    #: lines that contain at least one non-comment, non-blank token
    code_lines: Set[int] = set()
    comments: List[Tuple[int, int, str]] = []
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comments.append((token.start[0], token.start[1], token.string))
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
            tokenize.ENCODING,
        ):
            code_lines.add(token.start[0])

    sorted_code_lines = sorted(code_lines)

    def next_code_line(after: int) -> Optional[int]:
        for line in sorted_code_lines:
            if line > after:
                return line
        return None

    for line, column, text in comments:
        module_match = _MODULE.search(text)
        if module_match:
            module_override = module_match.group("path")
            continue
        if "repro-lint" not in text:
            continue
        match = _DISABLE.search(text)
        if not match:
            bad.append(
                BadSuppression(
                    line,
                    column,
                    "unrecognised repro-lint comment "
                    "(expected 'disable=<RULE> -- <justification>' "
                    "or 'module=<path>')",
                )
            )
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        rules.discard("")
        why = match.group("why")
        if not why:
            bad.append(
                BadSuppression(
                    line,
                    column,
                    f"disable={','.join(sorted(rules))} has no justification; "
                    "write '# repro-lint: disable=<RULE> -- <why it is safe>'",
                )
            )
            continue
        unknown = rules - known_rules
        if unknown:
            bad.append(
                BadSuppression(
                    line,
                    column,
                    f"disable names unknown rule(s) {sorted(unknown)}; "
                    f"known rules: {sorted(known_rules)}",
                )
            )
            rules &= known_rules
        if not rules:
            continue
        if line in code_lines:
            target: Optional[int] = line
        else:
            target = next_code_line(line)
        if target is not None:
            by_line.setdefault(target, set()).update(rules)
    return SuppressionMap(by_line, bad, module_override)
