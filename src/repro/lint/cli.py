"""The repro-lint command line: ``python -m repro.lint`` / ``repro lint``.

Exit status: 0 when the tree is clean (after suppressions and baseline),
1 when any finding remains, 2 on usage errors. CI gates on this — the
contract is identical across every ``--format`` (text, json, sarif) and
for ``--check-trace``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .engine import (
    BASELINE_FILENAME,
    DEFAULT_EXCLUDES,
    baseline_key,
    format_baseline,
    lint_paths,
    load_baseline,
)
from .catalogue import ALL_RULES
from .explain import EXPLANATIONS, explain_rule
from .output import to_json, to_sarif_text
from .trace_check import check_trace_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Whole-program invariant checker: determinism (D1-D4), agent "
            "isolation (P1/P2), protocol conformance (A1/A2), metric "
            "accounting (M1), reordering safety (R1-R3), hot-path "
            "allocation discipline (H1-H4), distribution safety for the "
            "sharded runtime (S1-S5), plus trace cross-validation "
            "(--check-trace). See CONTRIBUTING.md for the rule catalogue, "
            "or --explain RULE for one entry with examples."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/"],
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of deferred findings (default: "
            f"{BASELINE_FILENAME} if it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="GLOB",
        help=(
            "glob of paths to skip (repeatable; default: "
            f"{', '.join(DEFAULT_EXCLUDES)})"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the formatted findings to FILE instead of stdout",
    )
    parser.add_argument(
        "--no-hints", action="store_true", help="omit fix hints"
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="RULE[,RULE...]",
        help=(
            "run only these rule ids (comma-separated, repeatable) — e.g. "
            "--only S1,S2,S3,S4,S5 for the distribution-safety pass; "
            "suppression hygiene (X0) always runs"
        ),
        action="append",
    )
    parser.add_argument(
        "--skip",
        default=None,
        metavar="RULE[,RULE...]",
        help=(
            "run every rule except these ids (comma-separated, "
            "repeatable); combined with --only, --skip subtracts"
        ),
        action="append",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help=(
            "print the catalogue entry for one rule id (rationale plus a "
            "minimal bad/good example) and exit"
        ),
    )
    parser.add_argument(
        "--check-baseline-shrink",
        action="store_true",
        help=(
            "fail (exit 1) if the current tree would require NEW baseline "
            "entries — the committed baseline may only shrink; stale "
            "entries are reported as removable"
        ),
    )
    parser.add_argument(
        "--check-trace",
        default=None,
        metavar="JSONL",
        help=(
            "validate a TraceRecorder JSONL file (clock monotonicity, "
            "causal delivery, FIFO clamp, value chaining) instead of "
            "linting source paths"
        ),
    )
    parser.add_argument(
        "--no-fifo-check",
        action="store_true",
        help=(
            "with --check-trace: skip the FIFO-clamp invariant (for "
            "traces recorded with fifo=False transports)"
        ),
    )
    return parser


def _parse_rule_list(
    values: Optional[List[str]], flag: str
) -> Optional[List[str]]:
    """Flatten repeatable comma-separated rule ids; None when unset."""
    if not values:
        return None
    known = {rule.id for rule in ALL_RULES}
    selected: List[str] = []
    for value in values:
        for part in value.split(","):
            part = part.strip()
            if not part:
                continue
            if part not in known:
                raise SystemExit(_usage_error(flag, part, known))
            if part not in selected:
                selected.append(part)
    return selected


def _usage_error(flag: str, rule_id: str, known: set) -> int:
    print(
        f"repro-lint: {flag} got unknown rule {rule_id!r} "
        f"(known: {', '.join(sorted(known))})",
        file=sys.stderr,
    )
    return 2


def select_rules(
    only: Optional[List[str]], skip: Optional[List[str]]
):
    """The rule subset for --only/--skip (catalogue order preserved)."""
    rules = ALL_RULES
    if only is not None:
        wanted = set(only)
        rules = tuple(rule for rule in rules if rule.id in wanted)
    if skip is not None:
        dropped = set(skip)
        rules = tuple(rule for rule in rules if rule.id not in dropped)
    return rules


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check_trace is not None:
        violations = check_trace_file(
            args.check_trace, fifo=not args.no_fifo_check
        )
        for violation in violations:
            print(f"{args.check_trace}: {violation}")
        if violations:
            print(
                f"\nrepro-lint: trace violates {len(violations)} runtime "
                "invariant(s)."
            )
        else:
            print("repro-lint: trace upholds every recorded invariant.")
        return 1 if violations else 0
    if args.list_rules:
        for rule in ALL_RULES:
            doc = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.id}  {rule.title}: {doc}")
        print(
            "X0  control comments: a disable= without justification is "
            "itself a finding."
        )
        return 0
    if args.explain is not None:
        text = explain_rule(args.explain)
        if text is None:
            known = ", ".join(sorted(EXPLANATIONS))
            print(
                f"repro-lint: unknown rule {args.explain!r} "
                f"(known: {known})",
                file=sys.stderr,
            )
            return 2
        print(text)
        return 0

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(BASELINE_FILENAME):
        baseline_path = BASELINE_FILENAME
    baseline = load_baseline(baseline_path) if baseline_path else set()

    excludes = args.exclude if args.exclude else list(DEFAULT_EXCLUDES)
    rules = select_rules(
        _parse_rule_list(args.only, "--only"),
        _parse_rule_list(args.skip, "--skip"),
    )

    if args.write_baseline:
        findings = lint_paths(
            args.paths, baseline=None, excludes=excludes, rules=rules
        )
        target = baseline_path or BASELINE_FILENAME
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(format_baseline(findings))
        print(
            f"wrote {len(findings)} finding(s) to {target}; they will be "
            "ignored until removed from the baseline"
        )
        return 0

    if args.check_baseline_shrink:
        findings = lint_paths(
            args.paths, baseline=None, excludes=excludes, rules=rules
        )
        current = {baseline_key(finding) for finding in findings}
        new = sorted(current - baseline)
        stale = sorted(baseline - current)
        if rules != ALL_RULES:
            # A rule subset sees a subset of findings: entries produced by
            # unselected rules are not "stale", and growth is still growth.
            selected_ids = {rule.id for rule in rules} | {"X0"}
            stale = [
                entry
                for entry in stale
                if entry.split("\t", 1)[0] in selected_ids
            ]
        for entry in new:
            print(f"NEW    {entry}")
        for entry in stale:
            print(f"STALE  {entry}")
        if new:
            print(
                f"\nrepro-lint: {len(new)} finding(s) missing from the "
                "baseline. The baseline only shrinks — fix the code or "
                "add a justified '# repro-lint: disable=' comment."
            )
            return 1
        if stale:
            print(
                f"\nrepro-lint: baseline holds, {len(stale)} stale "
                "entr(y/ies) can be removed."
            )
        else:
            print("repro-lint: baseline holds (no growth).")
        return 0

    findings = lint_paths(
        args.paths, baseline=baseline, excludes=excludes, rules=rules
    )

    if args.format == "json":
        _emit(to_json(findings), args.output)
    elif args.format == "sarif":
        _emit(to_sarif_text(findings), args.output)
    else:
        lines = [
            finding.format(show_hint=not args.no_hints)
            for finding in findings
        ]
        if findings:
            lines.append(
                f"\nrepro-lint: {len(findings)} finding(s). Each one either "
                "gets fixed, a justified '# repro-lint: disable=' comment, "
                "or a baseline entry."
            )
        else:
            lines.append("repro-lint: clean.")
        _emit("\n".join(lines), args.output)
    return 1 if findings else 0


def _emit(text: str, output: Optional[str]) -> None:
    if output is None:
        print(text)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


if __name__ == "__main__":
    sys.exit(main())
