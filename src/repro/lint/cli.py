"""The repro-lint command line: ``python -m repro.lint`` / ``repro lint``.

Exit status: 0 when the tree is clean (after suppressions and baseline),
1 when any finding remains, 2 on usage errors. CI gates on this.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .engine import (
    BASELINE_FILENAME,
    DEFAULT_EXCLUDES,
    format_baseline,
    lint_paths,
    load_baseline,
)
from .rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker: determinism (D1-D3), agent "
            "isolation (P1), metric accounting (M1). See CONTRIBUTING.md "
            "for the rule catalogue."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/"],
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of deferred findings (default: "
            f"{BASELINE_FILENAME} if it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="GLOB",
        help=(
            "glob of paths to skip (repeatable; default: "
            f"{', '.join(DEFAULT_EXCLUDES)})"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--no-hints", action="store_true", help="omit fix hints"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            doc = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.id}  {rule.title}: {doc}")
        print(
            "X0  control comments: a disable= without justification is "
            "itself a finding."
        )
        return 0

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(BASELINE_FILENAME):
        baseline_path = BASELINE_FILENAME
    baseline = load_baseline(baseline_path) if baseline_path else set()

    excludes = args.exclude if args.exclude else list(DEFAULT_EXCLUDES)

    if args.write_baseline:
        findings = lint_paths(args.paths, baseline=None, excludes=excludes)
        target = baseline_path or BASELINE_FILENAME
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(format_baseline(findings))
        print(
            f"wrote {len(findings)} finding(s) to {target}; they will be "
            "ignored until removed from the baseline"
        )
        return 0

    findings = lint_paths(args.paths, baseline=baseline, excludes=excludes)

    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "path": finding.path,
                        "line": finding.line,
                        "column": finding.column,
                        "rule": finding.rule,
                        "message": finding.message,
                        "hint": finding.hint,
                    }
                    for finding in findings
                ],
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format(show_hint=not args.no_hints))
        if findings:
            print(
                f"\nrepro-lint: {len(findings)} finding(s). Each one either "
                "gets fixed, a justified '# repro-lint: disable=' comment, "
                "or a baseline entry."
            )
        else:
            print("repro-lint: clean.")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
