"""Per-cycle cost profiles of simulated runs.

``maxcck`` compresses a run into one number; its *history* (the per-cycle
maxima the metrics collector can retain) shows where the computation
actually went — e.g. AWC's checks grow as nogood stores fill, while DB's
stay flat. This module turns retained histories into phase summaries and a
terminal-friendly sparkline, which the trace-oriented example uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.exceptions import ModelError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class PhaseProfile:
    """One run's per-cycle check maxima split into equal phases."""

    phase_means: List[float]
    peak_cycle: int
    peak_value: int
    total: int

    @property
    def rising(self) -> bool:
        """True when the last phase is costlier than the first.

        The signature of accumulating nogood stores: learning algorithms
        rise, non-learning ones stay flat or fall.
        """
        if len(self.phase_means) < 2:
            return False
        return self.phase_means[-1] > self.phase_means[0]


def phase_profile(history: Sequence[int], phases: int = 4) -> PhaseProfile:
    """Split *history* (per-cycle maxima) into *phases* equal spans."""
    if not history:
        raise ModelError(
            "empty history: run the simulator with "
            "MetricsCollector(keep_history=True)"
        )
    if phases < 1:
        raise ModelError(f"phases must be positive, got {phases}")
    phases = min(phases, len(history))
    span = len(history) / phases
    means = []
    for index in range(phases):
        chunk = history[round(index * span): round((index + 1) * span)]
        means.append(sum(chunk) / len(chunk) if chunk else 0.0)
    peak_cycle = max(range(len(history)), key=history.__getitem__)
    return PhaseProfile(
        phase_means=means,
        peak_cycle=peak_cycle + 1,  # cycles are 1-based in reports
        peak_value=history[peak_cycle],
        total=sum(history),
    )


def sparkline(history: Sequence[int], width: int = 60) -> str:
    """A unicode sparkline of *history*, downsampled to *width* buckets."""
    if not history:
        return ""
    if width < 1:
        raise ModelError(f"width must be positive, got {width}")
    buckets: List[float] = []
    span = len(history) / min(width, len(history))
    position = 0.0
    while round(position) < len(history):
        chunk = history[round(position): round(position + span)]
        if not chunk:
            break
        buckets.append(sum(chunk) / len(chunk))
        position += span
    top = max(buckets) or 1.0
    return "".join(
        _SPARK_LEVELS[
            min(
                len(_SPARK_LEVELS) - 1,
                int(value / top * (len(_SPARK_LEVELS) - 1) + 0.5),
            )
        ]
        for value in buckets
    )
