"""Summary statistics over trial results.

The paper reports plain means over 100 trials. For a reproduction it is
worth knowing how wide those means are: this module computes the standard
descriptive statistics plus normal-approximation confidence intervals over
any per-trial measure, and side-by-side comparisons between two cells
(ratio of means with uncertainty), which is what "Rslv's maxcck is about
half of Mcs's" claims rest on.

Pure stdlib on purpose: the numbers are simple and the module is used in
test oracles, where a dependency-free implementation is easiest to trust.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..core.exceptions import ModelError
from ..runtime.simulator import RunResult

#: 97.5 % standard-normal quantile, for 95 % confidence intervals.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one measure over a set of trials."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (
            f"mean {self.mean:.1f} "
            f"[95% CI {self.ci_low:.1f}, {self.ci_high:.1f}] "
            f"(min {self.minimum:.1f}, median {self.median:.1f}, "
            f"max {self.maximum:.1f}, n={self.count})"
        )


def mean(values: Sequence[float]) -> float:
    """The arithmetic mean (raises on empty input)."""
    if not values:
        raise ModelError("mean of an empty sequence")
    return sum(values) / len(values)


def std(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    center = mean(values)
    variance = sum((value - center) ** 2 for value in values) / (
        len(values) - 1
    )
    return math.sqrt(variance)


def median(values: Sequence[float]) -> float:
    """The median (raises on empty input)."""
    if not values:
        raise ModelError("median of an empty sequence")
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[middle])
    return (ordered[middle - 1] + ordered[middle]) / 2


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (linear interpolation), q in [0, 100]."""
    if not values:
        raise ModelError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ModelError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(ordered[low])
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def summarize(values: Sequence[float]) -> Summary:
    """Full descriptive summary of *values*."""
    if not values:
        raise ModelError("summarize of an empty sequence")
    center = mean(values)
    spread = std(values)
    half_width = (
        _Z95 * spread / math.sqrt(len(values)) if len(values) > 1 else 0.0
    )
    return Summary(
        count=len(values),
        mean=center,
        std=spread,
        minimum=float(min(values)),
        median=median(values),
        maximum=float(max(values)),
        ci_low=center - half_width,
        ci_high=center + half_width,
    )


# -- trial-level helpers -----------------------------------------------------------


def measure(
    trials: Sequence[RunResult], getter: Callable[[RunResult], float]
) -> List[float]:
    """Extract one measure from every trial."""
    return [float(getter(trial)) for trial in trials]


def summarize_cycles(trials: Sequence[RunResult]) -> Summary:
    """Summary of the paper's ``cycle`` measure."""
    return summarize(measure(trials, lambda trial: trial.cycles))


def summarize_maxcck(trials: Sequence[RunResult]) -> Summary:
    """Summary of the paper's ``maxcck`` measure."""
    return summarize(measure(trials, lambda trial: trial.maxcck))


@dataclass(frozen=True)
class Comparison:
    """Two cells compared on one measure."""

    label_a: str
    label_b: str
    summary_a: Summary
    summary_b: Summary

    @property
    def mean_ratio(self) -> float:
        """mean(a) / mean(b); inf when b's mean is zero."""
        if self.summary_b.mean == 0:
            return math.inf
        return self.summary_a.mean / self.summary_b.mean

    @property
    def a_clearly_below_b(self) -> bool:
        """True when the 95 % intervals are disjoint with a below b."""
        return self.summary_a.ci_high < self.summary_b.ci_low

    def __str__(self) -> str:
        return (
            f"{self.label_a} / {self.label_b}: ratio of means "
            f"{self.mean_ratio:.2f} "
            f"({self.label_a}: {self.summary_a.mean:.1f}, "
            f"{self.label_b}: {self.summary_b.mean:.1f})"
        )


def compare(
    label_a: str,
    trials_a: Sequence[RunResult],
    label_b: str,
    trials_b: Sequence[RunResult],
    getter: Callable[[RunResult], float],
) -> Comparison:
    """Compare two trial sets on one measure."""
    return Comparison(
        label_a=label_a,
        label_b=label_b,
        summary_a=summarize(measure(trials_a, getter)),
        summary_b=summarize(measure(trials_b, getter)),
    )
