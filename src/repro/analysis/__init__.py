"""Post-hoc analysis: descriptive statistics and per-cycle cost profiles."""

from .profiles import PhaseProfile, phase_profile, sparkline
from .textplot import MARKERS, Series, line_plot
from .stats import (
    Comparison,
    Summary,
    compare,
    mean,
    measure,
    median,
    percentile,
    std,
    summarize,
    summarize_cycles,
    summarize_maxcck,
)

__all__ = [
    "Comparison",
    "MARKERS",
    "PhaseProfile",
    "Series",
    "Summary",
    "line_plot",
    "compare",
    "mean",
    "measure",
    "median",
    "percentile",
    "phase_profile",
    "sparkline",
    "std",
    "summarize",
    "summarize_cycles",
    "summarize_maxcck",
]
