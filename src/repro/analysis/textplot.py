"""Terminal line plots, for rendering Figure 2 without a plotting stack.

The library deliberately has no third-party dependencies; this module
draws simple multi-series line charts on a character grid — enough to
*see* the Figure 2 crossover in a terminal or a text report. Each series
gets a marker; coinciding points show the marker of the later series; axes
are labelled with min/max values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.exceptions import ModelError

#: Series markers, cycled when there are many series.
MARKERS = "*+ox#@"


@dataclass(frozen=True)
class Series:
    """One plotted line: a label and its (x, y) points."""

    label: str
    points: Tuple[Tuple[float, float], ...]

    @classmethod
    def from_function(cls, label, xs: Sequence[float], function) -> "Series":
        return cls(
            label=label,
            points=tuple((float(x), float(function(x))) for x in xs),
        )


def _bounds(series: Sequence[Series]) -> Tuple[float, float, float, float]:
    xs = [x for one in series for x, _y in one.points]
    ys = [y for one in series for _x, y in one.points]
    if not xs:
        raise ModelError("nothing to plot")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_low == x_high:
        x_high = x_low + 1.0
    if y_low == y_high:
        y_high = y_low + 1.0
    return x_low, x_high, y_low, y_high


def line_plot(
    series: Sequence[Series],
    width: int = 64,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render *series* as an ASCII chart.

    Points are scaled into a ``width`` × ``height`` grid and connected by
    linear interpolation along x, so lines read as lines rather than
    scattered dots.
    """
    if width < 8 or height < 4:
        raise ModelError("plot area too small (need width>=8, height>=4)")
    if not series:
        raise ModelError("nothing to plot")
    x_low, x_high, y_low, y_high = _bounds(series)
    grid = [[" "] * width for _ in range(height)]

    def to_column(x: float) -> int:
        return round((x - x_low) / (x_high - x_low) * (width - 1))

    def to_row(y: float) -> int:
        scaled = (y - y_low) / (y_high - y_low) * (height - 1)
        return (height - 1) - round(scaled)

    for index, one in enumerate(series):
        marker = MARKERS[index % len(MARKERS)]
        ordered = sorted(one.points)
        # Interpolate along columns between consecutive points.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            c0, c1 = to_column(x0), to_column(x1)
            for column in range(c0, c1 + 1):
                if c1 == c0:
                    y = y0
                else:
                    fraction = (column - c0) / (c1 - c0)
                    y = y0 + fraction * (y1 - y0)
                grid[to_row(y)][column] = marker
        if len(ordered) == 1:
            x0, y0 = ordered[0]
            grid[to_row(y0)][to_column(x0)] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_high:g}"
    bottom_label = f"{y_low:g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter - 1) + " "
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter - 1) + " "
        else:
            prefix = " " * gutter
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_low:g}".ljust(width - len(f"{x_high:g}")) + f"{x_high:g}"
    lines.append(" " * (gutter + 1) + x_axis)
    if x_label:
        lines.append(" " * (gutter + 1) + x_label)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {one.label}"
        for i, one in enumerate(series)
    )
    lines.append((y_label + "  " if y_label else "") + legend)
    return "\n".join(lines)
