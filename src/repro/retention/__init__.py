"""Nogood retention: bounded knowledge bases for long-running workloads.

The paper's stores record forever; this package adds the production
dimension — *forgetting* — as first-class policy objects wired into every
store backend, plus the cross-agent interner that collapses structurally
identical nogoods to one shared instance.

Specs (accepted by :func:`retention_factory`, ``--retention``, and
``repro soak --policy``)::

    keep-all            the paper's behaviour (store default)
    lru                 LRU eviction at the default cap
    lru:100             LRU eviction, at most 100 learned nogoods/store
    decay:100           activity decay, cap 100, default half-life
    decay:100:32        activity decay, cap 100, half-life 32 events
    subsume             subsumption pruning (relevance, not budget)

See :mod:`repro.retention.policy` for the policy semantics and the
completeness caveat (pinned nogoods are never evicted).
"""

from __future__ import annotations

from typing import Callable, List

from ..core.exceptions import ModelError
from .interner import NogoodInterner
from .policy import (
    ActivityDecayPolicy,
    KeepAllPolicy,
    LruPolicy,
    RetentionPolicy,
    SubsumptionPrunePolicy,
    select_over_cap,
)

#: The base policy names (cap/half-life arguments attach with ``:``).
RETENTION_POLICIES = ("keep-all", "lru", "decay", "subsume")

#: Cap applied when ``lru`` / ``decay`` are given without one.
DEFAULT_CAP = 256

#: Half-life (in store events) applied when ``decay`` omits one.
DEFAULT_HALF_LIFE = 64

#: Builds one fresh policy instance per store (policies hold per-nogood
#: recency/activity state, so they must never be shared between stores).
PolicyFactory = Callable[[], RetentionPolicy]


def _int_arg(spec: str, part: str, what: str) -> int:
    try:
        return int(part)
    except ValueError:
        raise ModelError(
            f"retention spec {spec!r}: {what} must be an integer, "
            f"got {part!r}"
        ) from None


def retention_policy(spec: str) -> RetentionPolicy:
    """Build one policy instance from *spec* (see the module docstring)."""
    name, _, rest = spec.partition(":")
    args: List[str] = rest.split(":") if rest else []
    if name == "keep-all":
        if args:
            raise ModelError(
                f"retention spec {spec!r}: keep-all takes no arguments"
            )
        return KeepAllPolicy()
    if name == "lru":
        if len(args) > 1:
            raise ModelError(
                f"retention spec {spec!r}: lru takes at most one "
                "argument (the cap)"
            )
        cap = _int_arg(spec, args[0], "cap") if args else DEFAULT_CAP
        return LruPolicy(cap)
    if name == "decay":
        if len(args) > 2:
            raise ModelError(
                f"retention spec {spec!r}: decay takes at most two "
                "arguments (cap, half-life)"
            )
        cap = _int_arg(spec, args[0], "cap") if args else DEFAULT_CAP
        half_life = (
            _int_arg(spec, args[1], "half-life")
            if len(args) > 1
            else DEFAULT_HALF_LIFE
        )
        return ActivityDecayPolicy(cap, half_life)
    if name == "subsume":
        if args:
            raise ModelError(
                f"retention spec {spec!r}: subsume takes no arguments"
            )
        return SubsumptionPrunePolicy()
    raise ModelError(
        f"unknown retention policy {spec!r}; expected one of "
        f"{RETENTION_POLICIES} (with optional ':cap[:half-life]' "
        "arguments)"
    )


def retention_factory(spec: str) -> PolicyFactory:
    """A per-store factory for *spec*; validates the spec eagerly."""
    retention_policy(spec)  # raise on a bad spec now, not per agent

    def build() -> RetentionPolicy:
        return retention_policy(spec)

    return build


def spec_with_budget(name: str, budget: int) -> str:
    """Attach *budget* as the cap of a bounded policy's base *name*.

    Unbounded policies (``keep-all``, ``subsume``) ignore the budget; a
    spec that already carries arguments is kept as-is.
    """
    if ":" in name:
        return name
    if name in ("lru", "decay"):
        return f"{name}:{budget}"
    return name


__all__ = [
    "ActivityDecayPolicy",
    "DEFAULT_CAP",
    "DEFAULT_HALF_LIFE",
    "KeepAllPolicy",
    "LruPolicy",
    "NogoodInterner",
    "PolicyFactory",
    "RETENTION_POLICIES",
    "RetentionPolicy",
    "SubsumptionPrunePolicy",
    "retention_factory",
    "retention_policy",
    "select_over_cap",
    "spec_with_budget",
]
