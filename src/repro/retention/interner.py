"""Cross-agent nogood interning: one object per structural nogood.

Announced nogoods fan out to every agent whose variable they mention, and
initial binary constraints live in both endpoints' stores — so a trial
holds each structurally distinct nogood several times over. A
:class:`NogoodInterner` shared by all agents of a trial maps each
:class:`~repro.core.nogood.Nogood` to one canonical instance; stores
intern on :meth:`~repro.core.store.NogoodStore.add`, so duplicates across
agents collapse to references to a single object.

Interning is invisible to the search: ``Nogood`` equality and hashing are
structural, so swapping an equal instance changes no store decision, no
scan order and no tie-break. The win is memory (one pair-set per distinct
nogood instead of one per recording agent) and cheaper equality checks on
the completeness rule's ``nogood == last_generated`` comparison (interned
equals are identity-equal, and ``==`` short-circuits on identity via the
frozenset comparison).

The interner is per trial — created in
:func:`~repro.experiments.runner.run_trial` next to the metrics collector
— so parallel trials never share one (no cross-process state, nothing to
pickle).
"""

from __future__ import annotations

from typing import Dict

from ..core.nogood import Nogood


class NogoodInterner:
    """A canonicalizing map from structural nogoods to shared instances."""

    __slots__ = ("_canonical", "hits", "misses")

    def __init__(self) -> None:
        self._canonical: Dict[Nogood, Nogood] = {}
        #: How many intern calls returned an existing instance — each hit
        #: is one duplicate nogood object made shareable.
        self.hits = 0
        self.misses = 0

    def intern(self, nogood: Nogood) -> Nogood:
        """The canonical instance equal to *nogood* (registering it if new)."""
        canonical = self._canonical.get(nogood)
        if canonical is not None:
            self.hits += 1
            return canonical
        self._canonical[nogood] = nogood
        self.misses += 1
        return nogood

    def __len__(self) -> int:
        return len(self._canonical)

    def __contains__(self, nogood: Nogood) -> bool:
        return nogood in self._canonical

    @property
    def unique(self) -> int:
        """How many structurally distinct nogoods have been interned."""
        return len(self._canonical)

    def stats(self) -> Dict[str, int]:
        """Dedup counters, JSON-ready (for the soak report)."""
        return {
            "unique": self.unique,
            "hits": self.hits,
            "misses": self.misses,
        }

    def __repr__(self) -> str:
        return (
            f"NogoodInterner(unique={self.unique}, hits={self.hits}, "
            f"misses={self.misses})"
        )
