"""Retention policies: bounded nogood knowledge bases.

The paper's stores keep every learned nogood forever, which is exactly
right for one-shot trials and exactly wrong for a long-running service:
memory grows without bound and every candidate-value scan pays for
history that stopped mattering long ago. Following "Efficient Knowledge
Base Management in DCSP" (see PAPERS.md), a :class:`RetentionPolicy`
bounds the *learned* population of a store while the completeness-
critical nogoods — the problem's initial constraints and the mandatory
deadend resolvents (see :meth:`~repro.core.store.NogoodStore.pin_slot`)
— are pinned and never evicted.

Four policies, selected by spec string (:func:`retention_policy`):

* ``keep-all`` — the paper's behaviour; records everything forever.
* ``lru:CAP`` — least-recently-*violated* eviction down to ``CAP``
  learned nogoods per store. "Use" is a violation observed by a counted
  query — the store reports those through :meth:`RetentionPolicy.on_use`
  in reference scan order, which is identical across store backends, so
  eviction decisions are backend-independent by construction.
* ``decay:CAP[:HALF_LIFE]`` — exponential activity decay à la
  MiniSat/Chaff clause activities: every use adds 1 to a nogood's
  activity, and activities halve every ``HALF_LIFE`` store events;
  eviction removes the lowest-activity learned nogoods down to ``CAP``.
* ``subsume`` — relevance pruning without a size cap: whenever a newly
  learned nogood is a subset of an already stored learned nogood, the
  superset is evicted (the subset prohibits strictly more assignments,
  so the superset can never fire without it).

Every policy is deterministic: decisions depend only on the add/use
event stream, with ``(recency, insertion order)`` tie-breaks — no RNG,
no wall clock, per the repro-lint rules.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..core.exceptions import ModelError
from ..core.nogood import Nogood

if TYPE_CHECKING:
    from ..core.store import NogoodStore


class RetentionPolicy(ABC):
    """Decides which learned nogoods a store keeps.

    A policy instance is **per store** (it holds per-nogood recency or
    activity state); use a factory — e.g. :func:`retention_policy` — to
    stamp one out per agent. The store drives the policy through three
    hooks:

    * :meth:`on_add` — after a nogood enters the store; returns the
      nogoods to evict *now* (the store removes them and reports each
      removal back through :meth:`on_remove`);
    * :meth:`on_use` — a violation of the nogood was observed by a
      counted query (only called when :attr:`tracks_use` is True, so
      keep-all pays nothing on the hot path);
    * :meth:`on_remove` — the nogood left the store, for any reason.

    Policies must never select a pinned nogood for eviction — iterate
    :meth:`~repro.core.store.NogoodStore.evictable_nogoods`, which
    excludes them. The store's :meth:`~repro.core.store.NogoodStore.remove`
    additionally refuses pinned nogoods outright, so the completeness
    caveat holds even against a buggy policy.
    """

    #: Label used in soak/bench tables.
    name: str = "?"

    #: True when the policy enforces a size cap on learned nogoods.
    bounded: bool = False

    #: True when the policy needs :meth:`on_use` notifications; stores
    #: skip the notification machinery entirely when this is False.
    tracks_use: bool = False

    @abstractmethod
    def on_add(
        self, store: "NogoodStore", nogood: Nogood, learned: bool
    ) -> Sequence[Nogood]:
        """React to *nogood* entering *store*; return nogoods to evict."""

    def on_use(self, nogood: Nogood) -> None:
        """A counted query observed *nogood* violated."""
        del nogood

    def on_remove(self, nogood: Nogood) -> None:
        """*nogood* left the store (evicted by this or any other cause)."""
        del nogood

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


_NO_EVICTIONS: Tuple[Nogood, ...] = ()


class KeepAllPolicy(RetentionPolicy):
    """The paper's behaviour: every recorded nogood is kept forever.

    Also the store default (a store with no policy attached behaves
    identically), so ``keep-all`` runs are bit-identical to runs predating
    the retention subsystem.
    """

    name = "keep-all"

    def on_add(
        self, store: "NogoodStore", nogood: Nogood, learned: bool
    ) -> Sequence[Nogood]:
        del store, nogood, learned
        return _NO_EVICTIONS


class LruPolicy(RetentionPolicy):
    """Evict the least-recently-violated learned nogood over ``cap``.

    Recency is a logical event counter bumped on every add and every
    observed violation; a nogood that never fires keeps its add-time
    stamp and is evicted first. Ties (possible only for never-used
    nogoods added in one batch, which cannot happen — stamps are unique)
    fall back to the stamp order itself.
    """

    bounded = True
    tracks_use = True

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ModelError(f"lru cap must be at least 1, got {cap}")
        self.cap = cap
        self.name = f"lru:{cap}"
        self._clock = 0
        self._stamp: Dict[Nogood, int] = {}

    def on_add(
        self, store: "NogoodStore", nogood: Nogood, learned: bool
    ) -> Sequence[Nogood]:
        self._clock += 1
        if learned:
            self._stamp[nogood] = self._clock
        return select_over_cap(
            store, self.cap, lambda victim: self._stamp.get(victim, 0)
        )

    def on_use(self, nogood: Nogood) -> None:
        self._clock += 1
        if nogood in self._stamp:
            self._stamp[nogood] = self._clock

    def on_remove(self, nogood: Nogood) -> None:
        self._stamp.pop(nogood, None)


class ActivityDecayPolicy(RetentionPolicy):
    """Evict the lowest-activity learned nogood over ``cap``.

    Chaff-style bump-and-decay: an observed violation adds one unit of
    activity, and all activities decay by half every ``half_life`` store
    events. Implemented with a growing per-event increment instead of
    rescaling every stored activity (the standard VSIDS trick), with a
    global renormalization when the increment approaches float overflow.
    """

    bounded = True
    tracks_use = True

    #: Renormalize when the bump increment exceeds this.
    _RESCALE_LIMIT = 1e100

    def __init__(self, cap: int, half_life: int = 64) -> None:
        if cap < 1:
            raise ModelError(f"decay cap must be at least 1, got {cap}")
        if half_life < 1:
            raise ModelError(
                f"decay half-life must be at least 1, got {half_life}"
            )
        self.cap = cap
        self.half_life = half_life
        self.name = f"decay:{cap}:{half_life}"
        #: Per-event multiplicative growth of the bump: 2^(1/half_life),
        #: so activities *relatively* halve every half_life events.
        self._growth = 2.0 ** (1.0 / half_life)
        self._increment = 1.0
        self._order = 0
        #: nogood -> (activity, insertion index); the index breaks exact
        #: activity ties deterministically (older evicts first).
        self._activity: Dict[Nogood, Tuple[float, int]] = {}

    def _tick(self) -> None:
        self._increment *= self._growth
        if self._increment > self._RESCALE_LIMIT:
            scale = 1.0 / self._increment
            self._activity = {
                nogood: (activity * scale, order)
                for nogood, (activity, order) in self._activity.items()
            }
            self._increment = 1.0

    def on_add(
        self, store: "NogoodStore", nogood: Nogood, learned: bool
    ) -> Sequence[Nogood]:
        self._tick()
        if learned:
            self._order += 1
            self._activity[nogood] = (self._increment, self._order)
        return select_over_cap(
            store,
            self.cap,
            lambda victim: self._activity.get(victim, (0.0, 0)),
        )

    def on_use(self, nogood: Nogood) -> None:
        self._tick()
        entry = self._activity.get(nogood)
        if entry is not None:
            self._activity[nogood] = (entry[0] + self._increment, entry[1])

    def on_remove(self, nogood: Nogood) -> None:
        self._activity.pop(nogood, None)


class SubsumptionPrunePolicy(RetentionPolicy):
    """Evict learned nogoods that a newly learned nogood subsumes.

    If ``new ⊆ old`` (as pair sets), every assignment violating ``old``
    also violates ``new``, so ``old`` can never change a consultation
    outcome once ``new`` is stored — it only costs checks. Unbounded
    (no cap), so this is a *relevance* policy, not a budget policy; the
    soak harness reports it alongside the bounded ones to show how much
    of the memory curve pure redundancy elimination recovers.
    """

    name = "subsume"

    def on_add(
        self, store: "NogoodStore", nogood: Nogood, learned: bool
    ) -> Sequence[Nogood]:
        if not learned:
            return _NO_EVICTIONS
        return [
            old
            for old in store.evictable_nogoods()
            if old is not nogood
            and old != nogood
            and nogood.is_subset_of(old)
        ]


def select_over_cap(
    store: "NogoodStore",
    cap: int,
    score: "object",
) -> List[Nogood]:
    """The lowest-scoring evictable nogoods beyond *cap* learned ones.

    The excess is measured against the store's full learned count (pinned
    learned nogoods included — they occupy budget but cannot be chosen),
    so a bounded policy keeps ``learned_count <= max(cap, pinned)``.
    """
    excess = store.learned_count() - cap
    if excess <= 0:
        return []
    candidates = sorted(store.evictable_nogoods(), key=score)  # type: ignore[arg-type]
    return candidates[:excess]
