"""Saving and loading experiment results as JSON.

Paper-scale cells take hours; losing them to a crashed process or wanting
to re-plot without re-running is routine. This module serializes
:class:`~repro.runtime.simulator.RunResult` and
:class:`~repro.experiments.runner.CellResult` to a stable, versioned JSON
layout and reads them back. Assignments are stored with string keys (JSON
objects) and restored to integer variables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..core.exceptions import ModelError
from ..runtime.simulator import RunResult
from .runner import CellResult

#: Format version, bumped on layout changes; loaders reject the unknown.
FORMAT_VERSION = 1


def run_result_to_dict(result: RunResult) -> Dict:
    """A JSON-ready dictionary for one trial."""
    return {
        "solved": result.solved,
        "unsolvable": result.unsolvable,
        "capped": result.capped,
        "quiescent": result.quiescent,
        "cycles": result.cycles,
        "maxcck": result.maxcck,
        "total_checks": result.total_checks,
        "messages_sent": result.messages_sent,
        "generated_nogoods": result.generated_nogoods,
        "redundant_generations": result.redundant_generations,
        "assignment": {
            str(variable): value
            for variable, value in result.assignment.items()
        },
        "wall_time": result.wall_time,
        "sim_time": result.sim_time,
        "max_history": list(result.max_history),
        "logical_time": result.logical_time,
    }


def run_result_from_dict(data: Dict) -> RunResult:
    """Rebuild one trial from its dictionary form."""
    try:
        return RunResult(
            solved=data["solved"],
            unsolvable=data["unsolvable"],
            capped=data["capped"],
            quiescent=data["quiescent"],
            cycles=data["cycles"],
            maxcck=data["maxcck"],
            total_checks=data["total_checks"],
            messages_sent=data["messages_sent"],
            generated_nogoods=data["generated_nogoods"],
            redundant_generations=data["redundant_generations"],
            assignment={
                int(variable): value
                for variable, value in data.get("assignment", {}).items()
            },
            wall_time=data.get("wall_time", 0.0),
            sim_time=data.get("sim_time", data.get("wall_time", 0.0)),
            max_history=list(data.get("max_history", [])),
            # Records written before the event-driven backend carry no
            # logical time; for the sync backend it equals cycles.
            logical_time=data.get("logical_time", data["cycles"]),
        )
    except KeyError as missing:
        raise ModelError(f"trial record lacks field {missing}") from None


def cell_result_to_dict(cell: CellResult) -> Dict:
    """A JSON-ready dictionary for one table cell."""
    return {
        "format_version": FORMAT_VERSION,
        "label": cell.label,
        "n": cell.n,
        "trials": [run_result_to_dict(trial) for trial in cell.trials],
    }


def cell_result_from_dict(data: Dict) -> CellResult:
    """Rebuild one cell from its dictionary form."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ModelError(
            f"unsupported result format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    cell = CellResult(label=data["label"], n=data["n"])
    cell.trials.extend(
        run_result_from_dict(trial) for trial in data.get("trials", [])
    )
    return cell


def save_cell(cell: CellResult, path: Union[str, Path]) -> None:
    """Write one cell to *path* as JSON."""
    Path(path).write_text(
        json.dumps(cell_result_to_dict(cell), indent=2, sort_keys=True)
    )


def load_cell(path: Union[str, Path]) -> CellResult:
    """Read one cell back from *path*."""
    return cell_result_from_dict(json.loads(Path(path).read_text()))


def save_cells(cells: List[CellResult], path: Union[str, Path]) -> None:
    """Write several cells (e.g. a whole table) to one JSON file."""
    Path(path).write_text(
        json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "cells": [cell_result_to_dict(cell) for cell in cells],
            },
            indent=2,
            sort_keys=True,
        )
    )


def load_cells(path: Union[str, Path]) -> List[CellResult]:
    """Read several cells back from *path*."""
    data = json.loads(Path(path).read_text())
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ModelError(
            f"unsupported result format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return [cell_result_from_dict(cell) for cell in data.get("cells", [])]
