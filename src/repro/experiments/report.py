"""Full reproduction report: every table, Figure 2, and shape verdicts.

:func:`generate_report` runs the complete experiment suite at a chosen
scale and renders a Markdown report with, for every table:

* the measured cells (mean ``cycle``, mean ``maxcck``, percent solved);
* the paper's reported values for the same table;
* automated **shape checks** — the paper's qualitative claims, evaluated
  on the measured numbers (e.g. "No learning needs more cycles than Rslv",
  "Mcs needs more checks than Rslv", "AWC beats DB on cycle, DB beats AWC
  on maxcck").

This is how EXPERIMENTS.md is produced (``repro report -o EXPERIMENTS.md``),
so the recorded comparison is regenerable by anyone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..runtime.random_source import Seed
from .figure2 import Figure2Result, run_figure2
from .paper import (
    FAMILY_TITLES,
    Scale,
    TABLE_SPECS,
    run_table,
    run_table4,
    scale_from_environment,
)
from .reference import ALL_TABLES, FIGURE2_CROSSOVERS, TABLE4
from .tables import Table, TableRow


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim of the paper, evaluated on measured data."""

    description: str
    passed: bool

    def as_markdown(self) -> str:
        mark = "✅" if self.passed else "❌"
        return f"- {mark} {self.description}"


@dataclass
class ReportResult:
    """The rendered report plus its check tally."""

    text: str
    checks: List[ShapeCheck] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for check in self.checks if check.passed)

    @property
    def total(self) -> int:
        return len(self.checks)


def _largest_n(table: Table) -> int:
    return max(row.n for row in table.rows)


def _row(table: Table, n: int, label: str) -> TableRow:
    row = table.row_for(n, label)
    if row is None:
        raise KeyError(f"missing cell ({n}, {label})")
    return row


def _learning_table_checks(table: Table, labels: Tuple[str, ...]) -> List[ShapeCheck]:
    """Tables 1–3: Rslv solves all, beats No on cycle, beats Mcs on maxcck."""
    n = _largest_n(table)
    rslv = _row(table, n, "AWC+Rslv")
    mcs = _row(table, n, "AWC+Mcs")
    no = _row(table, n, "AWC+No")
    return [
        ShapeCheck(
            f"n={n}: AWC+Rslv solves every trial within the cap",
            rslv.percent == 100.0,
        ),
        ShapeCheck(
            f"n={n}: no learning needs more cycles than Rslv "
            f"({no.cycle:.1f} vs {rslv.cycle:.1f})",
            no.cycle > rslv.cycle,
        ),
        ShapeCheck(
            f"n={n}: Mcs needs more nogood checks than Rslv "
            f"({mcs.maxcck:.1f} vs {rslv.maxcck:.1f})",
            mcs.maxcck > rslv.maxcck,
        ),
        ShapeCheck(
            f"n={n}: Mcs stays competitive with Rslv on cycle "
            f"(within 2x: {mcs.cycle:.1f} vs {rslv.cycle:.1f})",
            mcs.cycle <= 2 * max(rslv.cycle, 1.0),
        ),
    ]


def _bounded_table_checks(table: Table, labels: Tuple[str, ...]) -> List[ShapeCheck]:
    """Tables 5–7: some size bound cuts maxcck without wrecking cycle."""
    n = _largest_n(table)
    rslv = _row(table, n, "AWC+Rslv")
    bounded = [
        _row(table, n, label) for label in labels if label != "AWC+Rslv"
    ]
    best = min(bounded, key=lambda row: row.maxcck)
    return [
        ShapeCheck(
            f"n={n}: a size bound reduces maxcck below unrestricted Rslv "
            f"({best.label}: {best.maxcck:.1f} vs {rslv.maxcck:.1f})",
            best.maxcck < rslv.maxcck,
        ),
        ShapeCheck(
            f"n={n}: that bound keeps cycle within 2x of Rslv "
            f"({best.cycle:.1f} vs {rslv.cycle:.1f})",
            best.cycle <= 2 * max(rslv.cycle, 1.0),
        ),
        ShapeCheck(
            f"n={n}: every size-bounded variant still solves every trial",
            all(row.percent == 100.0 for row in bounded),
        ),
    ]


def _db_table_checks(table: Table, labels: Tuple[str, ...]) -> List[ShapeCheck]:
    """Tables 8–10: AWC wins cycle, DB wins maxcck."""
    awc_label = next(label for label in labels if label.startswith("AWC"))
    checks = []
    for n in sorted({row.n for row in table.rows}):
        awc_row = _row(table, n, awc_label)
        db_row = _row(table, n, "DB")
        checks.append(
            ShapeCheck(
                f"n={n}: {awc_label} needs fewer cycles than DB "
                f"({awc_row.cycle:.1f} vs {db_row.cycle:.1f})",
                awc_row.cycle < db_row.cycle,
            )
        )
        checks.append(
            ShapeCheck(
                f"n={n}: DB needs fewer nogood checks than {awc_label} "
                f"({db_row.maxcck:.1f} vs {awc_row.maxcck:.1f})",
                db_row.maxcck < awc_row.maxcck,
            )
        )
    return checks


_CHECKERS: Dict[int, Callable[[Table, Tuple[str, ...]], List[ShapeCheck]]] = {
    1: _learning_table_checks,
    2: _learning_table_checks,
    3: _learning_table_checks,
    5: _bounded_table_checks,
    6: _bounded_table_checks,
    7: _bounded_table_checks,
    8: _db_table_checks,
    9: _db_table_checks,
    10: _db_table_checks,
}


def _table_markdown(table: Table) -> List[str]:
    extra_names: List[str] = []
    for row in table.rows:
        for name, _value in row.extras:
            if name not in extra_names:
                extra_names.append(name)
    header = ["n", "algorithm", "cycle", "maxcck", "%"] + extra_names
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in table.rows:
        extras = dict(row.extras)
        cells = [
            str(row.n),
            row.label,
            f"{row.cycle:.1f}",
            f"{row.maxcck:.1f}",
            f"{row.percent:.0f}",
        ] + [
            f"{extras[name]:.1f}" if name in extras else ""
            for name in extra_names
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return lines


def _reference_markdown(number: int) -> List[str]:
    reference = ALL_TABLES.get(number)
    if reference is None:
        return []
    lines = [
        "",
        "Paper reported:",
        "",
        "| n | algorithm | cycle | maxcck | % |",
        "|---|---|---|---|---|",
    ]
    for (n, label), (cycle, maxcck, percent) in sorted(reference.items()):
        cycle_text = f"{cycle:.1f}" if cycle == cycle else "—"
        maxcck_text = f"{maxcck:.1f}" if maxcck == maxcck else "—"
        lines.append(
            f"| {n} | {label} | {cycle_text} | {maxcck_text} | "
            f"{percent:.0f} |"
        )
    return lines


def _table4_checks(tables: List[Table]) -> List[ShapeCheck]:
    checks = []
    for table in tables:
        n = _largest_n(table)
        rec = _row(table, n, "AWC+Rslv/rec")
        norec = _row(table, n, "AWC+Rslv/norec")
        rec_redundant = dict(rec.extras)["redundant"]
        norec_redundant = dict(norec.extras)["redundant"]
        family = table.title.split("[")[1].split("]")[0]
        checks.append(
            ShapeCheck(
                f"{family} n={n}: norec regenerates more redundant nogoods "
                f"than rec ({norec_redundant:.1f} vs {rec_redundant:.1f})",
                norec_redundant > rec_redundant,
            )
        )
    return checks


def _figure2_section(result: Figure2Result) -> Tuple[List[str], List[ShapeCheck]]:
    lines = ["## Figure 2 — estimated efficiency vs communication delay", ""]
    lines.append("```")
    lines.append(result.text)
    lines.append("```")
    lines.append("")
    if result.crossover is not None:
        lines.append(
            f"Measured crossover: **{result.crossover:.1f} time-units** "
            f"(paper, at its n=50 scale: around "
            f"{FIGURE2_CROSSOVERS[('d3s1', 50)]:.0f})."
        )
    else:
        lines.append(
            "No crossover at this scale: AWC dominates at every delay "
            "(its nogood stores stay small on instances this size, so DB "
            "never recovers the cycle deficit)."
        )
    checks = [
        ShapeCheck(
            "Figure 2: DB's line is steeper in delay (more cycles) than "
            f"AWC+4thRslv's ({result.db.cycle:.1f} vs {result.awc.cycle:.1f})",
            result.db.cycle > result.awc.cycle,
        )
    ]
    return lines, checks


def generate_report(
    scale: Optional[Scale] = None,
    seed: Seed = 0,
    include_extensions: bool = False,
) -> ReportResult:
    """Run everything and render the Markdown reproduction report.

    With *include_extensions* the report also covers the library's
    extension experiments: the Section 4.2 size-bound sweep and the
    Section 5 network-model analysis.
    """
    if scale is None:
        scale = scale_from_environment()
    started = time.perf_counter()
    lines: List[str] = []
    all_checks: List[ShapeCheck] = []

    for number in sorted(TABLE_SPECS):
        family, labels = TABLE_SPECS[number]
        table = run_table(number, scale=scale, seed=seed)
        lines.append(f"## Table {number} — {FAMILY_TITLES[family]}")
        lines.append("")
        lines.extend(_table_markdown(table))
        lines.extend(_reference_markdown(number))
        checker = _CHECKERS.get(number)
        if checker is not None:
            checks = checker(table, labels)
            all_checks.extend(checks)
            lines.append("")
            lines.append("Shape checks:")
            lines.append("")
            lines.extend(check.as_markdown() for check in checks)
        lines.append("")
        if number == 3:
            lines.extend(_table4_section(scale, seed, all_checks))

    figure_lines, figure_checks = _figure2_section(
        run_figure2(scale=scale, seed=seed)
    )
    lines.extend(figure_lines)
    all_checks.extend(figure_checks)
    lines.append("")

    if include_extensions:
        lines.extend(_extensions_section(scale, seed, all_checks))

    # Imported here, not at module top: repro/__init__ imports this package,
    # so a top-level "from .. import __version__" would be circular.
    from .. import __version__

    elapsed = time.perf_counter() - started
    passed = sum(1 for check in all_checks if check.passed)
    header = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Reproduction of Hirayama & Yokoo, *The Effect of Nogood Learning in",
        "Distributed Constraint Satisfaction* (ICDCS 2000).",
        "",
        f"- library version: {__version__}",
        f"- scale: **{scale.name}** "
        "(see `repro.experiments.paper.Scale`; the paper scale is "
        "n up to 200 with 100 trials per cell)",
        f"- master seed: {seed}",
        f"- total run time: {elapsed:.1f}s",
        f"- shape checks passed: **{passed}/{len(all_checks)}**",
        "",
        "Absolute numbers are not expected to match the paper "
        "(different RNG streams, regenerated instances, a pure-Python "
        "substrate); the shape checks encode the paper's qualitative "
        "claims, which are what this reproduction verifies.",
        "",
        "Regenerate with: "
        f"`REPRO_SCALE={scale.name} repro report -o EXPERIMENTS.md "
        f"--seed {seed}"
        + (" --extensions" if include_extensions else "")
        + "`",
        "",
    ]
    text = "\n".join(header + lines)
    return ReportResult(text=text, checks=all_checks)


def _extensions_section(
    scale: Scale, seed: Seed, all_checks: List[ShapeCheck]
) -> List[str]:
    """Beyond the paper: the k-sweep and the network-model analysis."""
    from .asynchrony import delay_response, run_asynchrony_table
    from .sweep import best_bound, sweep_size_bound

    lines = ["## Extensions (beyond the paper's tables)", ""]
    lines.append(
        "### Size-bound sweep — Section 4.2's \"set k empirically\""
    )
    lines.append("")
    for family in ("d3c", "d3s", "d3s1"):
        table = sweep_size_bound(family, scale=scale, seed=seed)
        lines.extend(_table_markdown(table))
        best = best_bound(table)
        lines.append("")
        lines.append(f"Empirical best bound for `{family}`: **{best}**.")
        lines.append("")
    lines.append("### Network models — Section 5's future-work axis")
    lines.append("")
    asynchrony = run_asynchrony_table(scale=scale, seed=seed)
    lines.extend(_table_markdown(asynchrony))
    lines.append("")
    for algorithm in ("AWC+Rslv", "DB"):
        series = dict(delay_response(asynchrony, algorithm))
        check = ShapeCheck(
            f"{algorithm}: cycles grow with fixed delay "
            f"(sync {series['sync']:.1f} → fixed(2) "
            f"{series['fixed(2)']:.1f} → fixed(4) {series['fixed(4)']:.1f})",
            series["sync"] < series["fixed(2)"] < series["fixed(4)"],
        )
        all_checks.append(check)
        lines.append(check.as_markdown())
    lines.append("")
    return lines


def _table4_section(
    scale: Scale, seed: Seed, all_checks: List[ShapeCheck]
) -> List[str]:
    lines = ["## Table 4 — redundant nogood generation (rec vs norec)", ""]
    tables = run_table4(scale=scale, seed=seed)
    for table in tables:
        lines.append(f"### {table.title}")
        lines.append("")
        lines.extend(_table_markdown(table))
        lines.append("")
    lines.append("Paper reported (mean redundant generations):")
    lines.append("")
    lines.append("| family | n | policy | redundant |")
    lines.append("|---|---|---|---|")
    for (family, n, label), value in sorted(TABLE4.items()):
        lines.append(f"| {family} | {n} | {label} | {value:.1f} |")
    checks = _table4_checks(tables)
    all_checks.extend(checks)
    lines.append("")
    lines.append("Shape checks:")
    lines.append("")
    lines.extend(check.as_markdown() for check in checks)
    lines.append("")
    return lines
