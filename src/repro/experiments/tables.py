"""Rendering experiment results in the paper's table layout.

Each of the paper's tables is a grid of (n, algorithm/learning label) cells
with columns ``cycle``, ``maxcck`` and ``%``. :class:`Table` holds the rows
and renders aligned text; when paper reference values are supplied the
renderer prints them side by side so shape comparisons are immediate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .runner import CellResult


@dataclass(frozen=True)
class TableRow:
    """One row: a cell's label and measurements."""

    n: int
    label: str
    cycle: float
    maxcck: float
    percent: float
    extras: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def from_cell(cls, cell: CellResult, **extras: float) -> "TableRow":
        return cls(
            n=cell.n,
            label=cell.label,
            cycle=cell.mean_cycle,
            maxcck=cell.mean_maxcck,
            percent=cell.percent_solved,
            extras=tuple(sorted(extras.items())),
        )


@dataclass
class Table:
    """A rendered experiment table."""

    title: str
    rows: List[TableRow] = field(default_factory=list)

    def add(self, row: TableRow) -> None:
        self.rows.append(row)

    def row_for(self, n: int, label: str) -> Optional[TableRow]:
        for row in self.rows:
            if row.n == n and row.label == label:
                return row
        return None

    def format_text(
        self,
        reference: Optional[Dict[Tuple[int, str], Tuple[float, float, float]]] = None,
    ) -> str:
        """Aligned text; *reference* maps (n, label) to the paper's values."""
        extra_names: List[str] = []
        for row in self.rows:
            for name, _value in row.extras:
                if name not in extra_names:
                    extra_names.append(name)
        header = ["n", "learn/alg", "cycle", "maxcck", "%"] + extra_names
        if reference is not None:
            header += ["paper cycle", "paper maxcck", "paper %"]
        body: List[List[str]] = []
        for row in self.rows:
            extras = dict(row.extras)
            cells = [
                str(row.n),
                row.label,
                f"{row.cycle:.1f}",
                f"{row.maxcck:.1f}",
                f"{row.percent:.0f}",
            ]
            cells += [
                f"{extras[name]:.1f}" if name in extras else ""
                for name in extra_names
            ]
            if reference is not None:
                paper = reference.get((row.n, row.label))
                if paper is None:
                    cells += ["", "", ""]
                else:
                    cycle, maxcck, percent = paper
                    cells += [
                        f"{cycle:.1f}" if cycle == cycle else "-",
                        f"{maxcck:.1f}" if maxcck == maxcck else "-",
                        f"{percent:.0f}",
                    ]
            body.append(cells)
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body))
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append(
            "  ".join(name.rjust(widths[i]) for i, name in enumerate(header))
        )
        lines.append("  ".join("-" * width for width in widths))
        for cells in body:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format_text()
