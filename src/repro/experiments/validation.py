"""Empirical validation of Figure 2's linear efficiency model.

Figure 2 *models* a delayed network: it takes (cycle, maxcck) measured on
the synchronous simulator and assumes total time grows linearly in the
per-message delay. This module checks that assumption against reality: it
runs the same algorithm on :class:`~repro.runtime.network.FixedDelayNetwork`
instances with increasing delay and compares the *measured* cycle counts to
the model's prediction ``cycle_sync × delay``.

The match is not expected to be exact — under delay, agents act on staler
views and the search trajectory changes — but if the model is a fair
abstraction the ratio ``measured / predicted`` should hover near 1. The
report of this module is the honest footnote to the paper's "rough
estimation" wording.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..algorithms.registry import AlgorithmSpec, awc
from ..core.exceptions import ModelError
from ..runtime.network import FixedDelayNetwork
from ..runtime.random_source import Seed, derive_seed
from .paper import Scale, instances_for, scale_from_environment
from .runner import run_cell


@dataclass(frozen=True)
class DelayPoint:
    """Measured vs predicted cycles at one fixed delay."""

    delay: int
    measured_cycles: float
    predicted_cycles: float

    @property
    def ratio(self) -> float:
        """measured / predicted; 1.0 means the linear model is exact."""
        if self.predicted_cycles == 0:
            raise ModelError("prediction is zero; nothing to compare")
        return self.measured_cycles / self.predicted_cycles


@dataclass(frozen=True)
class ValidationResult:
    """The full sweep for one algorithm."""

    algorithm: str
    baseline_cycles: float
    points: Tuple[DelayPoint, ...]

    @property
    def worst_ratio_error(self) -> float:
        """The largest |ratio − 1| across delays."""
        return max(abs(point.ratio - 1.0) for point in self.points)

    def format_text(self) -> str:
        lines = [
            f"linear-model validation: {self.algorithm} "
            f"(sync cycles {self.baseline_cycles:.1f})",
            f"{'delay':>6s} {'measured':>10s} {'predicted':>10s} "
            f"{'ratio':>7s}",
        ]
        for point in self.points:
            lines.append(
                f"{point.delay:6d} {point.measured_cycles:10.1f} "
                f"{point.predicted_cycles:10.1f} {point.ratio:7.2f}"
            )
        return "\n".join(lines)


def validate_delay_model(
    algorithm: Optional[AlgorithmSpec] = None,
    delays: Sequence[int] = (2, 3, 4),
    scale: Optional[Scale] = None,
    seed: Seed = 0,
    family: str = "d3c",
) -> ValidationResult:
    """Measure cycles under fixed delays and compare to the linear model."""
    if scale is None:
        scale = scale_from_environment()
    if algorithm is None:
        algorithm = awc("Rslv")
    if any(delay < 2 for delay in delays):
        raise ModelError("validation delays must be at least 2")
    n, num_instances, inits = scale.cells_for(family)[0]
    instances = instances_for(family, n, num_instances, seed)

    def cell_at(delay: Optional[int]):
        def factory(trial_seed):
            del trial_seed
            return FixedDelayNetwork(delay if delay is not None else 1)

        return run_cell(
            instances,
            algorithm,
            inits_per_instance=inits,
            master_seed=derive_seed(seed, "delay-validation", delay or 1),
            n=n,
            max_cycles=scale.max_cycles * max(delays),
            network_factory=factory,
        )

    baseline = cell_at(None)
    if baseline.percent_solved < 100.0:
        raise ModelError(
            "baseline cell did not fully solve; pick an easier cell for "
            "model validation"
        )
    points: List[DelayPoint] = []
    for delay in delays:
        cell = cell_at(delay)
        points.append(
            DelayPoint(
                delay=delay,
                measured_cycles=cell.mean_cycle,
                predicted_cycles=baseline.mean_cycle * delay,
            )
        )
    return ValidationResult(
        algorithm=algorithm.name,
        baseline_cycles=baseline.mean_cycle,
        points=tuple(points),
    )
