"""Extension experiment: the algorithms on other kinds of networks.

Section 5 of the paper: "our distributed constraint satisfaction algorithms
are designed for a fully asynchronous distributed system, and thereby can
work on any type of distributed systems. We should analyze the performance
of our algorithm on other types of distributed systems."

This module does that analysis. The same agents run unchanged on:

* ``sync`` — the paper's synchronous network (one cycle per message);
* ``fixed(d)`` — every message takes d cycles (Figure 2's delay, realized
  rather than modeled);
* ``random(d)`` — per-message uniform delay in 1..d with FIFO channels;
* ``random(d)/reorder`` — as above without FIFO: messages can overtake.

Measured cycles grow with delay; the ratio against the synchronous run
shows how close the growth is to the linear model Figure 2 assumes, and
the reorder rows demonstrate the algorithms' tolerance to the harshest
asynchrony (correctness is asserted, not assumed: every solved trial's
assignment is verified).

The same sweep exists for the event-driven backend
(:func:`run_event_asynchrony_table`): there the medium is a
:class:`~repro.runtime.events.transport.Transport` rather than a
``Network``, latency is per-message logical time rather than per-cycle
redelivery, and the activation model is mail-driven rather than lockstep
— so the two tables measure the same delay-tolerance question under two
different execution semantics. The ``unit`` row is parity mode and
matches the ``sync`` row of the network table trial-for-trial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..algorithms.registry import algorithm_by_name
from ..core.exceptions import ModelError
from ..runtime.events.transport import (
    InProcessTransportFactory,
    TransportFactory,
)
from ..runtime.network import (
    FixedDelayNetwork,
    Network,
    SynchronousNetwork,
)
from ..runtime.random_source import Seed, derive_seed
from .paper import Scale, instances_for, scale_from_environment
from .runner import (
    CellResult,
    lossy_network_factory,
    random_delay_network_factory,
    run_cell,
)
from .tables import Table, TableRow


@dataclass(frozen=True)
class NetworkModel:
    """A named network construction recipe."""

    name: str
    factory: Callable[[Seed], Network]


def network_model(spec: str) -> NetworkModel:
    """Parse a network spec: ``sync``, ``fixed:3``, ``random:3``,
    ``random:3:reorder``, ``lossy:30`` (percent loss)."""
    parts = spec.split(":")
    kind = parts[0]
    if kind == "sync":
        return NetworkModel("sync", lambda seed: SynchronousNetwork())
    if kind == "lossy":
        percent = int(parts[1]) if len(parts) > 1 else 30
        # The factory seeds the loss process from the trial seed, so the
        # delay schedule is reproducible sequentially and under --jobs N.
        return NetworkModel(
            f"lossy({percent}%)",
            lossy_network_factory(loss_rate=percent / 100.0),
        )
    if kind == "fixed":
        delay = int(parts[1]) if len(parts) > 1 else 2
        return NetworkModel(
            f"fixed({delay})",
            lambda seed, d=delay: FixedDelayNetwork(d),
        )
    if kind == "random":
        delay = int(parts[1]) if len(parts) > 1 else 3
        fifo = not (len(parts) > 2 and parts[2] == "reorder")
        suffix = "" if fifo else "/reorder"
        return NetworkModel(
            f"random({delay}){suffix}",
            random_delay_network_factory(max_delay=delay, fifo=fifo),
        )
    raise ModelError(f"unknown network spec {spec!r}")


#: The default grid of network models for the extension table.
DEFAULT_NETWORKS = (
    "sync",
    "fixed:2",
    "fixed:4",
    "random:4",
    "random:4:reorder",
    "lossy:30",
)


@dataclass(frozen=True)
class TransportModel:
    """A named transport construction recipe (event-driven backend)."""

    name: str
    factory: TransportFactory


def transport_model(spec: str) -> TransportModel:
    """Parse a transport spec for the events backend: ``unit`` (parity
    mode), ``uniform:4`` (per-message latency uniform in 1..4, FIFO
    channels), ``uniform:4:reorder`` (same without the FIFO clamp)."""
    parts = spec.split(":")
    kind = parts[0]
    if kind == "unit":
        return TransportModel("unit", InProcessTransportFactory())
    if kind == "uniform":
        delay = int(parts[1]) if len(parts) > 1 else 4
        fifo = not (len(parts) > 2 and parts[2] == "reorder")
        suffix = "" if fifo else "/reorder"
        return TransportModel(
            f"uniform({delay}){suffix}",
            InProcessTransportFactory(max_delay=delay, fifo=fifo),
        )
    raise ModelError(f"unknown transport spec {spec!r}")


#: The default grid of transport models for the event-backend table.
DEFAULT_TRANSPORTS = (
    "unit",
    "uniform:4",
    "uniform:4:reorder",
)


def run_asynchrony_table(
    scale: Optional[Scale] = None,
    seed: Seed = 0,
    algorithms: Sequence[str] = ("AWC+Rslv", "DB"),
    networks: Sequence[str] = DEFAULT_NETWORKS,
) -> Table:
    """Cycles under different network models, on the coloring workload.

    Uses the smallest coloring cell of *scale* so the sweep stays cheap:
    the point is the delay response, not the problem size.
    """
    if scale is None:
        scale = scale_from_environment()
    n, num_instances, inits = scale.coloring[0]
    instances = instances_for("d3c", n, num_instances, seed)
    table = Table(
        title=(
            f"Extension: network models (distributed 3-coloring n={n}, "
            f"scale={scale.name})"
        )
    )
    for algorithm_name in algorithms:
        spec = algorithm_by_name(algorithm_name)
        for network_spec in networks:
            model = network_model(network_spec)
            cell = run_cell(
                instances,
                spec,
                inits_per_instance=inits,
                master_seed=derive_seed(
                    seed, "asynchrony", algorithm_name, model.name
                ),
                n=n,
                max_cycles=scale.max_cycles,
                network_factory=model.factory,
            )
            _verify_solutions(cell, instances)
            row = TableRow(
                n=n,
                label=f"{spec.name} @ {model.name}",
                cycle=cell.mean_cycle,
                maxcck=cell.mean_maxcck,
                percent=cell.percent_solved,
            )
            table.add(row)
    return table


def run_event_asynchrony_table(
    scale: Optional[Scale] = None,
    seed: Seed = 0,
    algorithms: Sequence[str] = ("AWC+Rslv", "DB"),
    transports: Sequence[str] = DEFAULT_TRANSPORTS,
) -> Table:
    """Epochs under different latency models, on the coloring workload.

    The event-backend sibling of :func:`run_asynchrony_table`: the
    ``cycle`` column counts epochs (distinct delivery timestamps with
    activity) and ``maxcck`` sums per-epoch maxima — the logical-time
    analogues of the paper's measures (see ``EXPERIMENTS.md``). The
    ``unit`` row equals a synchronous run of the same seeds.
    """
    if scale is None:
        scale = scale_from_environment()
    n, num_instances, inits = scale.coloring[0]
    instances = instances_for("d3c", n, num_instances, seed)
    table = Table(
        title=(
            f"Extension: event-driven transports (distributed 3-coloring "
            f"n={n}, scale={scale.name})"
        )
    )
    for algorithm_name in algorithms:
        spec = algorithm_by_name(algorithm_name)
        for transport_spec in transports:
            model = transport_model(transport_spec)
            cell = run_cell(
                instances,
                spec,
                inits_per_instance=inits,
                master_seed=derive_seed(
                    seed, "asynchrony", algorithm_name, model.name
                ),
                n=n,
                max_cycles=scale.max_cycles,
                backend="events",
                transport_factory=model.factory,
            )
            _verify_solutions(cell, instances)
            row = TableRow(
                n=n,
                label=f"{spec.name} @ {model.name}",
                cycle=cell.mean_cycle,
                maxcck=cell.mean_maxcck,
                percent=cell.percent_solved,
            )
            table.add(row)
    return table


def _verify_solutions(cell: CellResult, instances) -> None:
    """Assert every solved trial's assignment actually solves its problem.

    Trials are grouped per instance in run_cell's order, so the mapping
    back is positional.
    """
    inits = len(cell.trials) // len(instances) if instances else 0
    for index, trial in enumerate(cell.trials):
        if not trial.solved:
            continue
        problem = instances[index // inits]
        if not problem.is_solution(trial.assignment):
            raise ModelError(
                "asynchrony run produced an invalid 'solution' — "
                "network model broke the algorithm"
            )


def delay_response(
    table: Table, algorithm_label: str
) -> List[Tuple[str, float]]:
    """The (network, mean cycle) series of one algorithm from *table*."""
    series = []
    for row in table.rows:
        label, separator, network = row.label.partition(" @ ")
        if separator and label == algorithm_label:
            series.append((network, row.cycle))
    return series
