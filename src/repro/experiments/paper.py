"""The paper's experiments, table by table.

This module is configuration, not mechanism: each table is a problem family
plus a list of algorithm labels, run through
:func:`~repro.experiments.runner.run_cell` and rendered with
:class:`~repro.experiments.tables.Table`.

Scales
------

The paper runs 100 trials per cell at sizes up to n = 200, which takes
serious wall-clock time in a pure-Python simulator. Three scales are
provided:

* ``quick`` — smoke-test sizes, used by the test suite;
* ``default`` — reduced sizes/trials that finish on a laptop while still
  exhibiting every qualitative effect the paper reports;
* ``paper`` — the paper's exact sizes and trial counts.

Select one via the functions' *scale* argument or the ``REPRO_SCALE``
environment variable (``repro`` CLI and benchmarks honour it).

Instance caching
----------------

Unique-solution 3SAT instances are expensive to certify, so generated
formulas are cached on disk (DIMACS format, under ``REPRO_CACHE_DIR`` or
``.repro_cache/``) keyed by the generation parameters. Delete the directory
to force regeneration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..algorithms.registry import AlgorithmSpec, algorithm_by_name
from ..core.exceptions import ModelError
from ..core.problem import DisCSP
from ..problems.coloring import random_coloring_instance
from ..problems.sat.dimacs import read_dimacs, write_dimacs
from ..problems.sat.generators import planted_3sat, unique_solution_3sat
from ..problems.sat.to_discsp import sat_to_discsp
from ..runtime.random_source import Seed, derive_seed
from .reference import ALL_TABLES, TABLE4
from .runner import CellResult, run_cell
from .tables import Table, TableRow

#: (n, number of instances, initial-value sets per instance)
CellSpec = Tuple[int, int, int]


@dataclass(frozen=True)
class Scale:
    """Problem sizes and trial counts for one run of the experiments."""

    name: str
    coloring: Tuple[CellSpec, ...]
    sat: Tuple[CellSpec, ...]
    onesat: Tuple[CellSpec, ...]
    max_cycles: int

    def cells_for(self, family: str) -> Tuple[CellSpec, ...]:
        if family == "d3c":
            return self.coloring
        if family == "d3s":
            return self.sat
        if family == "d3s1":
            return self.onesat
        raise ModelError(f"unknown problem family {family!r}")


#: The paper's exact experimental setup (Section 4).
PAPER_SCALE = Scale(
    name="paper",
    coloring=((60, 10, 10), (90, 10, 10), (120, 10, 10), (150, 10, 10)),
    sat=((50, 25, 4), (100, 25, 4), (150, 25, 4)),
    onesat=((50, 4, 25), (100, 4, 25), (200, 4, 25)),
    max_cycles=10_000,
)

#: Laptop-friendly sizes that preserve all qualitative effects. The larger
#: n of each family is one the paper also reports (coloring 60, 3SAT 50),
#: or the closest size that keeps unique-solution generation cheap
#: (3ONESAT 40), so measured rows line up against paper rows.
DEFAULT_SCALE = Scale(
    name="default",
    coloring=((30, 4, 4), (60, 5, 2)),
    sat=((25, 4, 4), (50, 5, 2)),
    onesat=((20, 4, 4), (40, 5, 2)),
    max_cycles=10_000,
)

#: Smoke-test sizes for the test suite and CI.
QUICK_SCALE = Scale(
    name="quick",
    coloring=((15, 2, 2),),
    sat=((12, 2, 2),),
    onesat=((10, 2, 2),),
    max_cycles=3_000,
)

#: The paper's problem sizes with reduced trial counts (6 per cell instead
#: of 100): the full size axis at a fraction of the wall-clock. The
#: unique-solution family stops at n=100 — certifying uniqueness at n=200
#: is a multi-hour DPLL job; use the paper scale (and patience, or the
#: original AIM files dropped into the cache) for that last column.
PAPERLITE_SCALE = Scale(
    name="paperlite",
    coloring=((60, 3, 2), (90, 3, 2), (120, 3, 2), (150, 3, 2)),
    sat=((50, 3, 2), (100, 3, 2), (150, 3, 2)),
    onesat=((50, 2, 3), (100, 2, 3)),
    max_cycles=10_000,
)

_SCALES = {
    scale.name: scale
    for scale in (PAPER_SCALE, PAPERLITE_SCALE, DEFAULT_SCALE, QUICK_SCALE)
}


def scale_by_name(name: str) -> Scale:
    """Look up a scale ("quick", "default", "paper")."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ModelError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None


def scale_from_environment(default: str = "default") -> Scale:
    """The scale selected by ``REPRO_SCALE``, or *default*."""
    return scale_by_name(os.environ.get("REPRO_SCALE", default))


def cache_directory() -> Path:
    """Where expensive generated instances are cached (``REPRO_CACHE_DIR``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


#: Bumped whenever generator semantics change, so stale cached instances are
#: never silently reused (the tag is part of every cache filename).
#: v2: balanced (complementary) planting; v3: CDCL elimination engine.
GENERATOR_VERSION = 3


# -- instance construction ------------------------------------------------------


@lru_cache(maxsize=None)
def coloring_instances(
    n: int, count: int, seed: Seed = 0
) -> Tuple[DisCSP, ...]:
    """*count* distributed 3-coloring instances at size *n* (m = 2.7 n)."""
    return tuple(
        random_coloring_instance(
            n, seed=derive_seed(seed, "d3c-instance", n, index)
        ).to_discsp()
        for index in range(count)
    )


@lru_cache(maxsize=None)
def sat_instances(n: int, count: int, seed: Seed = 0) -> Tuple[DisCSP, ...]:
    """*count* distributed 3SAT instances at size *n* (3SAT-GEN, m = 4.3 n)."""
    return tuple(
        sat_to_discsp(
            planted_3sat(
                n, seed=derive_seed(seed, "d3s-instance", n, index)
            ).formula
        )
        for index in range(count)
    )


@lru_cache(maxsize=None)
def onesat_instances(n: int, count: int, seed: Seed = 0) -> Tuple[DisCSP, ...]:
    """*count* unique-solution 3SAT instances at size *n* (3ONESAT-GEN).

    Generated instances are cached on disk: certification (proving no second
    model exists) is the expensive step and need not be repeated across
    processes.
    """
    problems = []
    cache = cache_directory()
    for index in range(count):
        instance_seed = derive_seed(seed, "d3s1-instance", n, index)
        cache_file = (
            cache / f"onesat-v{GENERATOR_VERSION}-n{n}-s{instance_seed}.cnf"
        )
        if cache_file.exists():
            formula = read_dimacs(cache_file)
        else:
            formula = unique_solution_3sat(n, seed=instance_seed).formula
            cache.mkdir(parents=True, exist_ok=True)
            write_dimacs(
                formula,
                cache_file,
                comment=(
                    f"3ONESAT-GEN-style unique-solution instance, n={n}, "
                    f"seed={instance_seed}"
                ),
            )
        problems.append(sat_to_discsp(formula))
    return tuple(problems)


def instances_for(
    family: str, n: int, count: int, seed: Seed = 0
) -> Tuple[DisCSP, ...]:
    """Instances of one of the paper's families: d3c, d3s, d3s1."""
    if family == "d3c":
        return coloring_instances(n, count, seed)
    if family == "d3s":
        return sat_instances(n, count, seed)
    if family == "d3s1":
        return onesat_instances(n, count, seed)
    raise ModelError(f"unknown problem family {family!r}")


# -- table definitions --------------------------------------------------------------

#: family and algorithm labels of each table, in the paper's row order.
TABLE_SPECS: Dict[int, Tuple[str, Tuple[str, ...]]] = {
    1: ("d3c", ("AWC+Rslv", "AWC+Mcs", "AWC+No")),
    2: ("d3s", ("AWC+Rslv", "AWC+Mcs", "AWC+No")),
    3: ("d3s1", ("AWC+Rslv", "AWC+Mcs", "AWC+No")),
    5: ("d3c", ("AWC+Rslv", "AWC+3rdRslv", "AWC+4thRslv")),
    6: ("d3s", ("AWC+Rslv", "AWC+4thRslv", "AWC+5thRslv")),
    7: ("d3s1", ("AWC+Rslv", "AWC+4thRslv", "AWC+5thRslv")),
    8: ("d3c", ("AWC+3rdRslv", "DB")),
    9: ("d3s", ("AWC+5thRslv", "DB")),
    10: ("d3s1", ("AWC+4thRslv", "DB")),
}

FAMILY_TITLES = {
    "d3c": "distributed 3-coloring",
    "d3s": "distributed 3SAT (3SAT-GEN)",
    "d3s1": "distributed 3SAT (3ONESAT-GEN)",
}


def run_table_cell(
    family: str,
    n: int,
    num_instances: int,
    inits: int,
    algorithm: AlgorithmSpec,
    seed: Seed,
    max_cycles: int,
    workers: Optional[int] = None,
    backend: str = "sync",
    store: str = "dict",
    retention: Optional[str] = None,
) -> CellResult:
    """One (family, n, algorithm) cell at the given trial counts.

    ``workers`` selects the trial-execution parallelism (default: the
    ``REPRO_JOBS`` environment variable, else sequential); results are
    identical either way. ``backend`` selects the execution engine
    (``"sync"`` or ``"events"``; the latter runs in parity mode here, so
    the table values are identical by construction — see
    :mod:`repro.runtime.events`). ``store`` selects the nogood-store
    backend the same way (also result-identical by construction), and
    ``retention`` the nogood retention policy (``None``/``keep-all`` is
    the paper's record-forever behaviour; see :mod:`repro.retention`).
    """
    instances = instances_for(family, n, num_instances, seed)
    return run_cell(
        instances,
        algorithm,
        inits_per_instance=inits,
        master_seed=derive_seed(seed, family, n, algorithm.name),
        n=n,
        max_cycles=max_cycles,
        workers=workers,
        backend=backend,
        store=store,
        retention=retention,
    )


def run_table(
    number: int,
    scale: Optional[Scale] = None,
    seed: Seed = 0,
    workers: Optional[int] = None,
    backend: str = "sync",
    store: str = "dict",
    retention: Optional[str] = None,
) -> Table:
    """Reproduce one of Tables 1–3 / 5–10."""
    if number == 4:
        raise ModelError("Table 4 has its own runner: run_table4()")
    if number not in TABLE_SPECS:
        raise ModelError(f"no such table: {number}")
    if scale is None:
        scale = scale_from_environment()
    family, labels = TABLE_SPECS[number]
    table = Table(
        title=(
            f"Table {number} ({FAMILY_TITLES[family]}, scale={scale.name})"
        )
    )
    for n, num_instances, inits in scale.cells_for(family):
        for label in labels:
            cell = run_table_cell(
                family,
                n,
                num_instances,
                inits,
                algorithm_by_name(label),
                seed,
                scale.max_cycles,
                workers=workers,
                backend=backend,
                store=store,
                retention=retention,
            )
            table.add(TableRow.from_cell(cell))
    return table


def run_table4(
    scale: Optional[Scale] = None,
    seed: Seed = 0,
    workers: Optional[int] = None,
    backend: str = "sync",
    store: str = "dict",
    retention: Optional[str] = None,
) -> List[Table]:
    """Reproduce Table 4: redundant nogood generations, rec vs norec.

    Returns one table per problem family (the paper folds all three into
    one table; splitting keeps the per-family n columns unambiguous).
    """
    if scale is None:
        scale = scale_from_environment()
    tables = []
    for family in ("d3c", "d3s", "d3s1"):
        table = Table(
            title=(
                f"Table 4 [{family}] redundant nogood generations "
                f"({FAMILY_TITLES[family]}, scale={scale.name})"
            )
        )
        for n, num_instances, inits in scale.cells_for(family):
            for label in ("AWC+Rslv/rec", "AWC+Rslv/norec"):
                cell = run_table_cell(
                    family,
                    n,
                    num_instances,
                    inits,
                    algorithm_by_name(label),
                    seed,
                    scale.max_cycles,
                    workers=workers,
                    backend=backend,
                    store=store,
                    retention=retention,
                )
                table.add(
                    TableRow.from_cell(
                        cell,
                        redundant=cell.mean_redundant_generations,
                        generated=cell.mean_generated,
                    )
                )
        tables.append(table)
    return tables


def reference_for_table(number: int):
    """The paper's values for *number* (None for Table 4's special layout)."""
    return ALL_TABLES.get(number)


def table4_reference() -> Dict[Tuple[str, int, str], float]:
    """The paper's Table 4 values."""
    return dict(TABLE4)
