"""Parameter sweeps: the size bound k, and problem-size scaling.

Section 4.2 ends with: "the optimal setting for k depends on problems.
Since we do not have a way to determine it optimally for now, it should be
set empirically." This module is that empirical procedure, packaged:

* :func:`sweep_size_bound` runs ``kthRslv`` for a range of k (plus
  unrestricted Rslv) on one problem family and reports, per k, the paper's
  two costs — making the k-vs-cost trade-off and the per-family optimum
  directly visible;
* :func:`sweep_problem_size` runs one algorithm across a range of n,
  exposing the scaling behaviour behind the tables' row axis.

Both return plain :class:`~repro.experiments.tables.Table` objects, so the
CLI and the report pipeline render them like any paper table.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..algorithms.registry import AlgorithmSpec, awc
from ..learning.size_bounded import SizeBoundedResolventLearning
from ..runtime.random_source import Seed, derive_seed
from .paper import FAMILY_TITLES, Scale, instances_for, scale_from_environment
from .runner import run_cell
from .tables import Table, TableRow

#: The k range the paper's Tables 5–7 probe, widened by one on each side.
DEFAULT_BOUNDS = (2, 3, 4, 5, 6)


def sweep_size_bound(
    family: str,
    scale: Optional[Scale] = None,
    seed: Seed = 0,
    bounds: Sequence[int] = DEFAULT_BOUNDS,
) -> Table:
    """``kthRslv`` for each k in *bounds*, plus unrestricted Rslv.

    Uses the largest cell of *family* at the given scale (the trade-off
    only shows on instances hard enough to learn from).
    """
    if scale is None:
        scale = scale_from_environment()
    n, num_instances, inits = scale.cells_for(family)[-1]
    instances = instances_for(family, n, num_instances, seed)
    table = Table(
        title=(
            f"Size-bound sweep ({FAMILY_TITLES[family]}, n={n}, "
            f"scale={scale.name})"
        )
    )
    specs = [awc("Rslv")] + [
        awc(SizeBoundedResolventLearning(k)) for k in bounds
    ]
    for spec in specs:
        cell = run_cell(
            instances,
            spec,
            inits_per_instance=inits,
            master_seed=derive_seed(seed, "k-sweep", family, spec.name),
            n=n,
            max_cycles=scale.max_cycles,
        )
        table.add(TableRow.from_cell(cell))
    return table


def best_bound(table: Table) -> str:
    """The label with the lowest maxcck among rows that solved everything.

    This is the "set k empirically" procedure: cheapest per-cycle load
    without sacrificing completion.
    """
    complete = [row for row in table.rows if row.percent == 100.0]
    candidates = complete if complete else list(table.rows)
    return min(candidates, key=lambda row: row.maxcck).label


def sweep_problem_size(
    family: str,
    algorithm: Optional[AlgorithmSpec] = None,
    scale: Optional[Scale] = None,
    seed: Seed = 0,
) -> Table:
    """One algorithm across every n of *family* at the given scale."""
    if scale is None:
        scale = scale_from_environment()
    if algorithm is None:
        algorithm = awc("Rslv")
    table = Table(
        title=(
            f"Size scaling: {algorithm.name} on {FAMILY_TITLES[family]} "
            f"(scale={scale.name})"
        )
    )
    for n, num_instances, inits in scale.cells_for(family):
        instances = instances_for(family, n, num_instances, seed)
        cell = run_cell(
            instances,
            algorithm,
            inits_per_instance=inits,
            master_seed=derive_seed(seed, "n-sweep", family, n),
            n=n,
            max_cycles=scale.max_cycles,
        )
        table.add(TableRow.from_cell(cell))
    return table
