"""Figure 2's efficiency model: total time as a function of message delay.

Section 4.3: "We assume that one nogood check amounts to one computational
time-unit and a communication delay between cycles amounts to the designated
number of time-unit. The figure illustrates total number of time-unit vs
communication delay when each algorithm consumes cycle and maxcck shown in
Table 10."

So an algorithm consuming ``cycle`` cycles with ``maxcck`` total worst-agent
checks costs

    total(delay) = maxcck + cycle * delay

time-units on a system whose per-cycle communication delay is ``delay``
check-equivalents. AWC's line starts higher (more computation) but is
flatter (fewer cycles); the crossover delay — where AWC overtakes DB — is
the paper's headline for when learning pays off. Sanity check against the
paper: Table 10 at n = 50 gives (38892.5 - 11691.1) / (690.1 - 130.8) ≈ 48.6,
matching the quoted "around 50 time-unit".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CostLine:
    """One algorithm's (cycle, maxcck) consumption, as a line over delay."""

    label: str
    cycle: float
    maxcck: float

    def total_time(self, delay: float) -> float:
        """Total time-units at per-cycle communication *delay*."""
        return self.maxcck + self.cycle * delay


def crossover_delay(a: CostLine, b: CostLine) -> Optional[float]:
    """The delay at which lines *a* and *b* cross, or None if they do not.

    Only a crossover at a non-negative delay is meaningful; parallel lines
    and intersections at negative delay return None.
    """
    slope_difference = b.cycle - a.cycle
    if slope_difference == 0:
        return None
    delay = (a.maxcck - b.maxcck) / slope_difference
    return delay if delay >= 0 else None


@dataclass(frozen=True)
class EfficiencyPoint:
    """One x-position of the Figure 2 plot."""

    delay: float
    totals: Tuple[Tuple[str, float], ...]


def figure_series(
    lines: Sequence[CostLine], delays: Sequence[float]
) -> List[EfficiencyPoint]:
    """Evaluate all *lines* at the given *delays* (the plotted series)."""
    return [
        EfficiencyPoint(
            delay=delay,
            totals=tuple((line.label, line.total_time(delay)) for line in lines),
        )
        for delay in delays
    ]


def format_figure(
    lines: Sequence[CostLine],
    delays: Sequence[float],
    title: str = "Estimated efficiency (total time-units vs delay)",
) -> str:
    """Render the Figure 2 series as an aligned text table."""
    points = figure_series(lines, delays)
    header = ["delay"] + [line.label for line in lines]
    body = [
        [f"{point.delay:g}"] + [f"{total:.1f}" for _label, total in point.totals]
        for point in points
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in body))
        for i in range(len(header))
    ]
    out = [title]
    out.append("  ".join(header[i].rjust(widths[i]) for i in range(len(header))))
    out.append("  ".join("-" * width for width in widths))
    for row in body:
        out.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    pairwise = []
    for i, a in enumerate(lines):
        for b in lines[i + 1:]:
            delay = crossover_delay(a, b)
            if delay is not None:
                pairwise.append(
                    f"crossover {a.label} / {b.label}: delay ≈ {delay:.1f}"
                )
    out.extend(pairwise)
    return "\n".join(out)
