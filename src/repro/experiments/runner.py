"""Running trials and cells of the paper's experiments.

The paper's unit of measurement is the *trial*: one problem instance, one
random set of initial values, one algorithm, run to solution or to the
10 000-cycle cap. A *cell* of a table aggregates 100 trials (e.g. 10
instances × 10 initial-value sets) into mean ``cycle``, mean ``maxcck`` and
the percentage of trials finished within the cap — capped trials contribute
"the data at that time", exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..algorithms.registry import AlgorithmSpec
from ..core.exceptions import ModelError
from ..core.problem import DisCSP
from ..core.store import STORE_BACKENDS, store_class_by_name
from ..core.variables import Value, VariableId
from ..runtime.events import EventDrivenSimulator, InProcessTransportFactory
from ..runtime.events.transport import TransportFactory
from ..runtime.metrics import MetricsCollector
from ..runtime.network import Network, SynchronousNetwork
from ..runtime.random_source import Seed, derive_rng, derive_seed
from ..runtime.simulator import (
    DEFAULT_MAX_CYCLES,
    RunResult,
    SynchronousSimulator,
)

if TYPE_CHECKING:
    from ..runtime.trace import TraceRecorder

#: Builds a fresh network per trial (delay models carry per-trial RNG state).
NetworkFactory = Callable[[Seed], Network]

#: The trial-execution backends: the paper's lockstep cycle simulator and
#: the discrete-event asynchronous engine (see :mod:`repro.runtime.events`).
BACKENDS = ("sync", "events")


def synchronous_network_factory(seed: Seed) -> Network:
    """The default: the paper's one-cycle-per-message network."""
    del seed
    return SynchronousNetwork()


@dataclass(frozen=True)
class RandomDelayNetworkFactory:
    """A per-trial :class:`~repro.runtime.network.RandomDelayNetwork` factory.

    The delay RNG is derived from the trial seed, so the delay schedule is
    part of the trial's reproducible state: the same seed yields the same
    deliveries whether trials run sequentially or under ``--jobs N``. A
    frozen top-level dataclass (not a closure) so it pickles into worker
    processes.
    """

    max_delay: int = 3
    fifo: bool = True

    def __call__(self, seed: Seed) -> Network:
        from ..runtime.network import RandomDelayNetwork

        return RandomDelayNetwork(
            max_delay=self.max_delay, fifo=self.fifo, seed=seed
        )


@dataclass(frozen=True)
class LossyNetworkFactory:
    """A per-trial :class:`~repro.runtime.network.LossyNetwork` factory,
    loss process seeded from the trial seed (cf.
    :class:`RandomDelayNetworkFactory`)."""

    loss_rate: float = 0.3
    retransmit_after: int = 1

    def __call__(self, seed: Seed) -> Network:
        from ..runtime.network import LossyNetwork

        return LossyNetwork(
            loss_rate=self.loss_rate,
            retransmit_after=self.retransmit_after,
            seed=seed,
        )


def random_delay_network_factory(
    max_delay: int = 3, fifo: bool = True
) -> NetworkFactory:
    """Shorthand for :class:`RandomDelayNetworkFactory`."""
    return RandomDelayNetworkFactory(max_delay=max_delay, fifo=fifo)


def lossy_network_factory(
    loss_rate: float = 0.3, retransmit_after: int = 1
) -> NetworkFactory:
    """Shorthand for :class:`LossyNetworkFactory`."""
    return LossyNetworkFactory(
        loss_rate=loss_rate, retransmit_after=retransmit_after
    )


def random_initial_assignment(
    problem: DisCSP, seed: Seed
) -> Dict[VariableId, Value]:
    """The trial's random initial values, drawn deterministically from *seed*."""
    rng = derive_rng(seed, "initial-values")
    return {
        variable: rng.choice(problem.csp.domain_of(variable).values)
        for variable in problem.variables
    }


def run_trial(
    problem: DisCSP,
    algorithm: AlgorithmSpec,
    seed: Seed,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    network_factory: NetworkFactory = synchronous_network_factory,
    backend: str = "sync",
    transport_factory: Optional[TransportFactory] = None,
    tracer: Optional["TraceRecorder"] = None,
    store: str = "dict",
    retention: Optional[str] = None,
) -> RunResult:
    """One trial: build agents, simulate, return the run's measurements.

    ``backend`` selects the execution engine: ``"sync"`` (the paper's
    lockstep cycle simulator, message medium from ``network_factory``) or
    ``"events"`` (the discrete-event engine, message medium from
    ``transport_factory`` — defaulting to the unit-latency in-process
    transport, i.e. parity mode, which reproduces the sync results
    trial-for-trial). The two media axes are mutually exclusive: a
    non-default ``network_factory`` with the events backend (or a
    ``transport_factory`` with the sync backend) is rejected rather than
    silently ignored.

    ``store`` selects the nogood-store backend (``"dict"``, ``"linear"``
    or ``"watched"``; see :data:`~repro.core.store.STORE_BACKENDS`). The
    search trajectory — solved, cycles, assignment — is identical across
    all backends, and ``"watched"`` additionally counts checks exactly as
    ``"dict"`` does, so those two produce bit-identical results (which the
    store-kernel benchmark asserts). The ``"linear"`` reference runs every
    test the indexes skip, so its check counts are an upper bound.

    ``retention`` selects the nogood retention policy (a spec such as
    ``"lru:100"``; see :mod:`repro.retention`). One policy instance is
    built per agent store, one :class:`~repro.retention.NogoodInterner`
    is shared by all agents of the trial, and pinned nogoods — initial
    constraints and the latest announced resolvent per sender — are
    never evicted. ``None`` (and ``"keep-all"``) reproduce the paper's
    record-forever behaviour exactly.
    """
    if backend not in BACKENDS:
        raise ModelError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if store not in STORE_BACKENDS:
        raise ModelError(
            f"unknown store backend {store!r}; expected one of "
            f"{STORE_BACKENDS}"
        )
    policy_factory = None
    if retention is not None and retention != "keep-all":
        from ..retention import retention_factory

        policy_factory = retention_factory(retention)
    metrics = MetricsCollector()
    initial = random_initial_assignment(problem, seed)
    agents = algorithm.build(problem, metrics, seed, initial)
    if store != "dict":
        store_class = store_class_by_name(store)
        for agent in agents:
            agent.rebind_store(store_class)
    if policy_factory is not None:
        from ..retention import NogoodInterner

        interner = NogoodInterner()
        for agent in agents:
            agent.attach_retention(policy_factory, interner)
    if backend == "events":
        if network_factory is not synchronous_network_factory:
            raise ModelError(
                "the events backend takes a transport_factory, not a "
                "network_factory"
            )
        factory = (
            transport_factory
            if transport_factory is not None
            else InProcessTransportFactory()
        )
        return EventDrivenSimulator(
            problem,
            agents,
            transport=factory(seed),
            max_epochs=max_cycles,
            metrics=metrics,
            tracer=tracer,
        ).run()
    if transport_factory is not None:
        raise ModelError(
            "the sync backend takes a network_factory, not a "
            "transport_factory"
        )
    simulator = SynchronousSimulator(
        problem,
        agents,
        network=network_factory(seed),
        max_cycles=max_cycles,
        metrics=metrics,
        tracer=tracer,
    )
    return simulator.run()


@dataclass
class CellResult:
    """Aggregated measurements of one table cell."""

    label: str
    n: int
    trials: List[RunResult] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    @property
    def mean_cycle(self) -> float:
        """Mean cycles over all trials (capped trials count at the cap)."""
        return _mean([trial.cycles for trial in self.trials])

    @property
    def mean_maxcck(self) -> float:
        """Mean maxcck over all trials."""
        return _mean([trial.maxcck for trial in self.trials])

    @property
    def percent_solved(self) -> float:
        """Share of trials that found a solution within the cap, in percent."""
        if not self.trials:
            return 0.0
        solved = sum(1 for trial in self.trials if trial.solved)
        return 100.0 * solved / len(self.trials)

    @property
    def mean_redundant_generations(self) -> float:
        """Mean redundant nogood generations (Table 4's measure)."""
        return _mean([trial.redundant_generations for trial in self.trials])

    @property
    def mean_generated(self) -> float:
        """Mean total nogood generations per trial."""
        return _mean([trial.generated_nogoods for trial in self.trials])

    @property
    def total_wall_time(self) -> float:
        """Total wall-clock seconds spent simulating this cell."""
        return sum(trial.wall_time for trial in self.trials)


def _mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


#: One trial's coordinates within a cell: (instance index, init index, seed).
TrialParams = Tuple[int, int, int]


def trial_parameters(
    num_instances: int, inits_per_instance: int, master_seed: Seed
) -> Iterator[TrialParams]:
    """The cell's trials in canonical order, with their derived seeds.

    This is the single source of trial seeds: the sequential and parallel
    cell runners both iterate it, so their per-trial seeds — and therefore
    their results — are identical by construction.
    """
    for instance_index in range(num_instances):
        for init_index in range(inits_per_instance):
            yield (
                instance_index,
                init_index,
                derive_seed(master_seed, "trial", instance_index, init_index),
            )


def run_cell(
    instances: Sequence[DisCSP],
    algorithm: AlgorithmSpec,
    inits_per_instance: int,
    master_seed: Seed,
    n: int,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    network_factory: NetworkFactory = synchronous_network_factory,
    workers: Optional[int] = None,
    backend: str = "sync",
    transport_factory: Optional[TransportFactory] = None,
    store: str = "dict",
    retention: Optional[str] = None,
) -> CellResult:
    """One cell: every instance × every initial-value set.

    The trial seeds are derived from ``(master_seed, instance index, init
    index)`` so cells are reproducible and instances are independent.

    With ``workers`` above 1 (or ``REPRO_JOBS`` set) the trials are farmed
    out to a process pool via :mod:`repro.experiments.parallel`; results are
    identical to the sequential path apart from timing fields.

    ``backend``/``transport_factory``/``store`` select the execution
    engine and nogood-store backend per trial; see :func:`run_trial`.
    """
    from .parallel import resolve_workers, run_cell_parallel

    if resolve_workers(workers) > 1:
        return run_cell_parallel(
            instances,
            algorithm,
            inits_per_instance=inits_per_instance,
            master_seed=master_seed,
            n=n,
            max_cycles=max_cycles,
            network_factory=network_factory,
            workers=workers,
            backend=backend,
            transport_factory=transport_factory,
            store=store,
            retention=retention,
        )
    cell = CellResult(label=algorithm.name, n=n)
    for instance_index, _init_index, trial_seed in trial_parameters(
        len(instances), inits_per_instance, master_seed
    ):
        cell.trials.append(
            run_trial(
                instances[instance_index],
                algorithm,
                trial_seed,
                max_cycles=max_cycles,
                network_factory=network_factory,
                backend=backend,
                transport_factory=transport_factory,
                store=store,
                retention=retention,
            )
        )
    return cell
