"""Smoke benchmarks for the trial engine, the lint analyzer and the store kernel.

Runs a fixed quick-scale grid of table cells twice along one axis,
verifies the results are identical, and writes a JSON report with wall
times, the speedup, and nogood-check throughput. ``tools/bench_smoke.py``
is a thin shim around this module; ``repro bench`` exposes it as a CLI
subcommand.

Seven axes:

* ``--axis workers`` (default) — sequential vs the parallel engine;
  writes ``BENCH_trial_engine.json``.
* ``--axis backend`` — the synchronous cycle simulator vs the
  discrete-event engine in parity mode; identical results are the parity
  guarantee, the wall-time ratio is the event loop's overhead. Writes
  ``BENCH_event_engine.json``.
* ``--axis lint`` — two full-tree runs of the whole-program repro-lint
  analyzer (``src/`` + ``tests/``); identical findings are the
  determinism guarantee, and the wall time must stay under the 10 s CI
  budget. Writes ``BENCH_lint.json``.
* ``--axis store`` — the dict nogood store vs the watched/bitset kernel
  (:mod:`repro.core.watched`), two legs: (a) the full d3c/d3s/d3s1 grid
  under both backends, asserting bit-identical trial results, and (b) a
  kernel replay microbenchmark over stores harvested from real d3c/d3s
  trials, measuring counted checks per second on an identical workload.
  Writes ``BENCH_store_kernel.json``; ``--gate`` fails the run if the
  kernel's checks/sec regressed more than 20% against a committed
  baseline report.
* ``--axis verify`` — the interleaving verifier (:mod:`repro.verify`) on
  its pinned corpus: schedule-exploration throughput, the DPOR prune
  ratio, and zero invariant violations. Writes ``BENCH_verify.json``;
  ``--gate`` applies the same 20% regression rule to schedules/sec.
* ``--axis retention`` — the nogood retention subsystem
  (:mod:`repro.retention`): keep-all parity against the retention-free
  default, dict-vs-watched eviction parity under ``lru``, then the soak
  stream (:mod:`repro.experiments.soak`) over every policy, asserting
  solution re-verification and budget compliance. Writes
  ``BENCH_kb_memory.json``; ``--gate`` applies the 20% rule to the soak
  stream's checks/sec.
* ``--axis alloc`` — per-message allocation churn of the handler hot
  paths: replays the d3c/d3s cells with a ``tracemalloc`` probe around
  every ``initialize``/``step`` call and reports transient bytes per 1k
  delivered messages (the garbage the H1-H4 lint rules police; lower is
  better). The instrumented replay must match the uninstrumented
  reference bit-for-bit. Writes ``BENCH_alloc.json``; ``--gate`` applies
  the 20% rule as a ceiling.

Usage::

    PYTHONPATH=src python tools/bench_smoke.py
        [--axis workers|backend|lint|store|verify|retention|alloc]
        [--jobs N]
        [--output PATH] [--gate [BASELINE]]

The grid is deliberately small (quick-scale sizes, a few seconds per leg)
so CI can afford it; the JSON records the machine's core count, so a
1-core runner reporting speedup ≈ 1/overhead is expected and honest.

This module lives under ``experiments/`` (not ``runtime/`` or
``algorithms/``) deliberately: benchmarking needs wall clocks, which the
repro-lint determinism rules ban inside the simulation layers.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.registry import algorithm_by_name
from ..core.nogood import Nogood
from ..core.store import NogoodStore, store_class_by_name
from ..core.variables import Value, VariableId
from ..runtime.metrics import MetricsCollector
from ..runtime.simulator import SynchronousSimulator
from .paper import instances_for
from .parallel import run_cell_parallel
from .runner import (
    CellResult,
    random_initial_assignment,
    run_cell,
    synchronous_network_factory,
    trial_parameters,
)

#: (family, n, instances, inits, algorithm label) — fixed quick-scale grid.
GRID = (
    ("d3c", 15, 2, 2, "AWC+Rslv"),
    ("d3c", 15, 2, 2, "AWC+No"),
    ("d3s", 12, 2, 2, "AWC+Rslv"),
    ("d3s", 12, 2, 2, "AWC+No"),
    ("d3s1", 10, 2, 2, "AWC+Rslv"),
    ("d3s1", 10, 2, 2, "DB"),
)

MAX_CYCLES = 3_000
MASTER_SEED = 0

#: CI wall-time budget (seconds) for one full-tree lint pass.
LINT_BUDGET_SECONDS = 10.0

#: Maximum tolerated checks/sec regression for ``--gate`` (fraction).
GATE_TOLERANCE = 0.20

#: Fields that must agree between the two legs of an axis.
MEASURE_FIELDS = (
    "solved",
    "cycles",
    "maxcck",
    "total_checks",
    "messages_sent",
    "assignment",
)


def _repo_root() -> Path:
    """The repository root (this file lives at src/repro/experiments/)."""
    return Path(__file__).resolve().parents[3]


def cell_measures(cell):
    return [
        tuple(
            sorted(getattr(trial, name).items())
            if name == "assignment"
            else getattr(trial, name)
            for name in MEASURE_FIELDS
        )
        for trial in cell.trials
    ]


def run_grid(workers: int, backend: str = "sync", store: str = "dict"):
    """One pass over the grid; returns (per-cell rows, totals)."""
    rows = []
    total_seconds = 0.0
    total_checks = 0
    total_trials = 0
    for family, n, num_instances, inits, label in GRID:
        instances = instances_for(family, n, num_instances, MASTER_SEED)
        spec = algorithm_by_name(label)
        started = time.perf_counter()
        if workers > 1:
            cell = run_cell_parallel(
                instances,
                spec,
                inits_per_instance=inits,
                master_seed=MASTER_SEED,
                n=n,
                max_cycles=MAX_CYCLES,
                workers=workers,
                backend=backend,
                store=store,
            )
        else:
            cell = run_cell(
                instances,
                spec,
                inits_per_instance=inits,
                master_seed=MASTER_SEED,
                n=n,
                max_cycles=MAX_CYCLES,
                workers=1,
                backend=backend,
                store=store,
            )
        elapsed = time.perf_counter() - started
        checks = sum(trial.total_checks for trial in cell.trials)
        rows.append(
            {
                "family": family,
                "n": n,
                "algorithm": label,
                "trials": cell.num_trials,
                "wall_seconds": round(elapsed, 4),
                "mean_cycle": round(cell.mean_cycle, 2),
                "mean_maxcck": round(cell.mean_maxcck, 2),
                "percent_solved": round(cell.percent_solved, 1),
                "total_checks": checks,
                "checks_per_second": round(checks / elapsed) if elapsed else 0,
                "cell": cell,
            }
        )
        total_seconds += elapsed
        total_checks += checks
        total_trials += cell.num_trials
    return rows, {
        "wall_seconds": round(total_seconds, 4),
        "total_checks": total_checks,
        "trials": total_trials,
        "checks_per_second": (
            round(total_checks / total_seconds) if total_seconds else 0
        ),
    }


def run_lint_bench(
    repo_root: Path, output: str, gate: Optional[str] = None
) -> int:
    """Two full-tree lint passes: determinism check + CI wall-time budget.

    A third, selector-driven pass times the distribution-safety rules
    (S1-S5) alone — the pass CI's ``s-rules`` leg runs via ``--only`` —
    so the report carries its analysis time next to the full pass.
    ``--gate`` applies the 20% regression rule to the full-pass wall time
    (a "min" metric: lint getting slower fails the gate).
    """
    from ..lint.engine import DEFAULT_EXCLUDES, iter_python_files, lint_paths
    from ..lint.rules_dist import DIST_RULES

    paths = [str(repo_root / "src"), str(repo_root / "tests")]
    files = list(iter_python_files(paths, excludes=list(DEFAULT_EXCLUDES)))
    passes = []
    findings_per_pass = []
    for _ in range(2):
        started = time.perf_counter()
        findings = lint_paths(
            paths, baseline=None, excludes=list(DEFAULT_EXCLUDES)
        )
        elapsed = time.perf_counter() - started
        passes.append(round(elapsed, 4))
        findings_per_pass.append(
            [finding.format(show_hint=False) for finding in findings]
        )
    if findings_per_pass[0] != findings_per_pass[1]:
        print("FATAL: lint findings diverge between identical passes")
        return 1
    started = time.perf_counter()
    s_findings = lint_paths(
        paths,
        baseline=None,
        excludes=list(DEFAULT_EXCLUDES),
        rules=DIST_RULES,
    )
    s_rules_seconds = round(time.perf_counter() - started, 4)

    # Dynamic half of S1: replay the pinned verify corpus, pickle-round-
    # trip every payload actually sent, and check the observation against
    # the static closure. Both failure modes are hard failures — a payload
    # that does not pickle would only have surfaced on a remote shard.
    from ..verify.boundary_audit import audit_corpus, static_payload_types

    started = time.perf_counter()
    audit = audit_corpus()
    static_types = static_payload_types(str(repo_root / "src"))
    unseen = sorted(audit.observed_types - static_types)
    audit_seconds = round(time.perf_counter() - started, 4)

    slowest = max(passes)
    budget_met = slowest <= LINT_BUDGET_SECONDS
    report = {
        "benchmark": "lint_smoke",
        "paths": ["src/", "tests/"],
        "files_linted": len(files),
        "machine": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "pass_wall_seconds": passes,
        "pass_wall_max_seconds": slowest,
        "files_per_second": round(len(files) / slowest) if slowest else 0,
        "findings": len(findings_per_pass[0]),
        "s_rules": {
            "rules": [rule.id for rule in DIST_RULES],
            "pass_wall_seconds": s_rules_seconds,
            "findings": len(s_findings),
        },
        "s1_cross_validation": {
            "corpus_entries": audit.entries_run,
            "payloads_round_tripped": audit.payloads_sent,
            "round_trip_failures": len(audit.failures),
            "observed_types": sorted(audit.observed_types),
            "observed_not_in_static_closure": unseen,
            "wall_seconds": audit_seconds,
        },
        "budget_seconds": LINT_BUDGET_SECONDS,
        "budget_met": budget_met,
        "results_identical": True,
        "note": (
            "one whole-program pass parses every file once into a shared "
            "ProjectGraph, then runs the file-local and inter-procedural "
            "rules against it; the budget keeps full-tree linting viable "
            "as a pre-commit hook and a CI gate; s_rules times the "
            "distribution-safety subset CI runs separately via --only; "
            "s1_cross_validation pickle-round-trips every payload the "
            "pinned verify corpus sends and checks it against the static "
            "S1 payload closure"
        ),
    }
    Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"lint: {len(files)} files, passes {passes[0]:.2f}s / "
        f"{passes[1]:.2f}s (S-rules alone {s_rules_seconds:.2f}s), "
        f"{report['findings']} finding(s), "
        f"budget {LINT_BUDGET_SECONDS:.0f}s "
        f"{'met' if budget_met else 'EXCEEDED'}"
    )
    print(
        f"lint: S1 cross-validation round-tripped {audit.payloads_sent} "
        f"payload(s) over {audit.entries_run} pinned entries, "
        f"{len(audit.failures)} failure(s)"
    )
    print(f"wrote {output}")
    if audit.failures or unseen:
        if audit.failures:
            for failure in audit.failures:
                print(
                    f"FATAL: payload {failure.message_type} from corpus "
                    f"entry '{failure.entry}' failed the pickle "
                    f"round-trip: {failure.error}"
                )
        if unseen:
            print(
                "FATAL: runtime sent payload types outside the static S1 "
                f"closure: {', '.join(unseen)}"
            )
        return 1
    if not budget_met:
        print(
            f"FATAL: full-tree lint took {slowest:.2f}s, over the "
            f"{LINT_BUDGET_SECONDS:.0f}s budget"
        )
        return 1
    if gate is not None:
        metric_path, label, direction = GATE_METRICS["lint"]
        return check_gate(gate, slowest, metric_path, label, direction)
    return 0


# -- the store-kernel axis ------------------------------------------------------

#: (family, n, instances, inits, label, cycle cap) — the cells whose
#: trials seed the kernel replay. The quick-scale d3c/d3s cells cover the
#: small-store regime; the n=35 unique-solution 3SAT cell runs long enough
#: to learn hundreds of nogoods per agent, which is the regime the watched
#: index is built for (its cycle cap keeps the harvest to a few seconds).
KERNEL_HARVEST_GRID = (
    ("d3c", 15, 2, 2, "AWC+Rslv", MAX_CYCLES),
    ("d3s", 12, 2, 2, "AWC+Rslv", MAX_CYCLES),
    ("d3s1", 35, 2, 1, "AWC+Rslv", 600),
    ("d3s1", 40, 2, 1, "AWC+Rslv", 400),
)

#: Workload shape per harvested store (see :func:`_make_workload`).
KERNEL_ROUNDS = 60
KERNEL_WORKLOAD_SEED = 20260807


@dataclass(frozen=True)
class HarvestedStore:
    """One agent's nogood population, lifted out of finished real trials."""

    family: str
    n: int
    own_variable: VariableId
    own_domain: Tuple[Value, ...]
    #: peer variable -> its domain values (for generating view updates).
    peers: Tuple[Tuple[VariableId, Tuple[Value, ...]], ...]
    #: union of the agent's nogoods across the cell's trials, insertion order.
    nogoods: Tuple[Nogood, ...]


def _harvest_stores() -> List[HarvestedStore]:
    """Run the harvest cells' trials and merge each agent's learned nogoods.

    Merging across a cell's trials yields stores of realistic *shape*
    (initial constraints plus resolvent/learned nogoods over the same
    neighborhood) at the population sizes longer runs reach, which is the
    regime the watched index is built for.
    """
    harvested: Dict[Tuple[str, int, VariableId], Dict[Nogood, None]] = {}
    domains: Dict[Tuple[str, int, VariableId], Tuple[Value, ...]] = {}
    for family, n, num_instances, inits, label, cap in KERNEL_HARVEST_GRID:
        instances = instances_for(family, n, num_instances, MASTER_SEED)
        spec = algorithm_by_name(label)
        for instance_index, _init_index, trial_seed in trial_parameters(
            num_instances, inits, MASTER_SEED
        ):
            problem = instances[instance_index]
            metrics = MetricsCollector()
            initial = random_initial_assignment(problem, trial_seed)
            agents = spec.build(problem, metrics, trial_seed, initial)
            SynchronousSimulator(
                problem,
                agents,
                network=synchronous_network_factory(trial_seed),
                max_cycles=cap,
                metrics=metrics,
            ).run()
            for agent in agents:
                variable = agent.variable
                key = (family, n, variable)
                bucket = harvested.setdefault(key, {})
                for nogood in agent.store.nogoods():
                    bucket[nogood] = None
                domains[key] = tuple(
                    problem.csp.domain_of(variable).values
                )
                for peer in problem.csp.neighbors_of(variable):
                    peer_key = (family, n, peer)
                    domains.setdefault(
                        peer_key,
                        tuple(problem.csp.domain_of(peer).values),
                    )
    stores: List[HarvestedStore] = []
    for (family, n, variable), nogood_set in sorted(
        harvested.items(), key=lambda item: (item[0][0], item[0][1], item[0][2])
    ):
        nogoods = tuple(nogood_set)
        peer_ids = sorted(
            {
                pair[0]
                for nogood in nogoods
                for pair in nogood.pairs
                if pair[0] != variable
            }
        )
        peers = tuple(
            (peer, domains.get((family, n, peer), (False, True)))
            for peer in peer_ids
        )
        if not peers or len(nogoods) < 2:
            continue  # nothing for a view-driven workload to exercise
        stores.append(
            HarvestedStore(
                family=family,
                n=n,
                own_variable=variable,
                own_domain=domains[(family, n, variable)],
                peers=peers,
                nogoods=nogoods,
            )
        )
    return stores


#: One replay operation: (opcode, *operands). Generated once, applied to
#: every backend, so the workloads are identical by construction.
_Op = Tuple


def _make_workload(store_spec: HarvestedStore, rng: random.Random) -> List[_Op]:
    """An AWC-shaped op sequence: sparse view updates, dense value scans.

    Mirrors the real hot path: each "cycle" applies a couple of ``ok?``
    view updates, then runs the value-selection queries over the whole
    domain (higher-nogood scan per candidate, lower-violation counts,
    and the occasional full-scan/consistency probes of DB and ABT).
    Priorities are sticky per peer and raised only occasionally —
    matching AWC, where values change every ``ok?`` but priorities move
    only on backtracks.
    """
    ops: List[_Op] = []
    peers = store_spec.peers
    values = store_spec.own_domain
    priority = 0
    peer_priorities: Dict[VariableId, int] = {}
    for _ in range(KERNEL_ROUNDS):
        for _ in range(rng.randint(1, 2)):
            peer, peer_domain = peers[rng.randrange(len(peers))]
            if rng.random() < 0.03:
                peer_priorities[peer] = peer_priorities.get(peer, 0) + 1
            ops.append(
                (
                    "update",
                    peer,
                    peer_domain[rng.randrange(len(peer_domain))],
                    peer_priorities.get(peer, 0),
                )
            )
        if rng.random() < 0.05:
            priority += 1
        ops.append(("violated_higher", values[0], priority))
        ops.append(("violated_higher_batch", values, priority))
        ops.append(("count_violated_lower_batch", values, priority))
        probe = rng.random()
        if probe < 0.2:
            ops.append(("violated", values[rng.randrange(len(values))]))
        elif probe < 0.4:
            ops.append(("is_consistent", values[rng.randrange(len(values))]))
        elif probe < 0.5:
            ops.append(("count_violated", values[rng.randrange(len(values))]))
    return ops


def _build_store(
    store_spec: HarvestedStore, backend: str
) -> NogoodStore:
    store = store_class_by_name(backend)(store_spec.own_variable)
    for nogood in store_spec.nogoods:
        store.add(nogood)
    return store


def _apply_ops(
    store: NogoodStore,
    ops: Sequence[_Op],
    collect: Optional[List[object]] = None,
) -> None:
    """Run *ops* against *store* (and a fresh view); optionally log results.

    Dispatch is a prebound method table so the harness adds as little as
    possible on top of the store calls being measured.
    """
    from ..core.assignment import AgentView

    view = AgentView()
    update = view.update
    queries = {
        "violated_higher": store.violated_higher,
        "count_violated_lower": store.count_violated_lower,
        "violated_higher_batch": store.violated_higher_batch,
        "count_violated_lower_batch": store.count_violated_lower_batch,
        "violated": store.violated,
        "is_consistent": store.is_consistent,
        "count_violated": store.count_violated,
    }
    log = collect.append if collect is not None else None
    for op in ops:
        code = op[0]
        if code == "update":
            update(op[1], op[2], op[3])
            continue
        result = queries[code](view, *op[1:])
        if log is not None:
            log(result)


def _replay_backend(
    specs: Sequence[HarvestedStore],
    workloads: Sequence[Sequence[_Op]],
    backend: str,
) -> Tuple[float, int]:
    """One timed replay pass: (elapsed seconds, counted checks)."""
    stores = [_build_store(spec, backend) for spec in specs]
    started = time.perf_counter()
    for store, ops in zip(stores, workloads):
        _apply_ops(store, ops)
    elapsed = time.perf_counter() - started
    checks = sum(store.counter.total for store in stores)
    return elapsed, checks


def _verify_replay_parity(
    specs: Sequence[HarvestedStore],
    workloads: Sequence[Sequence[_Op]],
    backends: Sequence[str],
) -> None:
    """Untimed full-result comparison of every backend on the workload.

    Every backend must return identical query results. The counting
    contract is asymmetric: ``watched`` must count *exactly* what
    ``dict`` counts (bit-identical parity), while ``linear`` — the
    no-indexing reference — may only count *more* (it runs every test
    the indexed stores skip).
    """
    reference: Optional[List[object]] = None
    reference_checks: Optional[int] = None
    for backend in backends:
        results: List[object] = []
        checks = 0
        for spec, ops in zip(specs, workloads):
            store = _build_store(spec, backend)
            _apply_ops(store, ops, collect=results)
            checks += store.counter.total
        if reference is None:
            reference, reference_checks = results, checks
            continue
        if results != reference:
            raise AssertionError(
                f"store backend {backend!r} diverges from "
                f"{backends[0]!r} on the replay workload"
            )
        assert reference_checks is not None
        if backend == "linear":
            if checks < reference_checks:
                raise AssertionError(
                    f"linear store counted {checks} checks, fewer than "
                    f"{backends[0]!r}'s {reference_checks}"
                )
        elif checks != reference_checks:
            raise AssertionError(
                f"store backend {backend!r} counted {checks} checks; "
                f"{backends[0]!r} counted {reference_checks}"
            )


def run_store_bench(output: str, gate: Optional[str]) -> int:
    """The ``--axis store`` benchmark: grid parity + kernel replay."""
    print(
        f"bench_smoke: store axis — {len(GRID)} grid cells dict vs "
        "watched (parity), then the kernel replay microbenchmark"
    )
    baseline_rows, baseline_totals = run_grid(workers=1, store="dict")
    candidate_rows, candidate_totals = run_grid(workers=1, store="watched")
    mismatches = [
        f"{s['family']}-n{s['n']}-{s['algorithm']}"
        for s, p in zip(baseline_rows, candidate_rows)
        if cell_measures(s.pop("cell")) != cell_measures(p.pop("cell"))
    ]
    if mismatches:
        print(f"FATAL: watched-store results diverge from dict: {mismatches}")
        return 1

    specs = _harvest_stores()
    rng = random.Random(KERNEL_WORKLOAD_SEED)
    workloads = [_make_workload(spec, rng) for spec in specs]
    _verify_replay_parity(specs, workloads, ("dict", "watched", "linear"))
    kernel: Dict[str, Dict[str, object]] = {}
    for backend in ("dict", "watched"):
        # Two passes, keep the faster (cold-start effects out of the gate).
        passes = [
            _replay_backend(specs, workloads, backend) for _ in range(2)
        ]
        elapsed, checks = min(passes)
        best = min(p[0] for p in passes)
        kernel[backend] = {
            "wall_seconds": round(best, 4),
            "counted_checks": checks,
            "checks_per_second": round(checks / best) if best else 0,
        }
    dict_cps = int(kernel["dict"]["checks_per_second"])  # type: ignore[arg-type]
    watched_cps = int(kernel["watched"]["checks_per_second"])  # type: ignore[arg-type]
    kernel_speedup = watched_cps / dict_cps if dict_cps else 0.0
    grid_speedup = (
        baseline_totals["wall_seconds"] / candidate_totals["wall_seconds"]
        if candidate_totals["wall_seconds"]
        else 0.0
    )

    report = {
        "benchmark": "store_kernel",
        "machine": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "grid_parity": {
            "max_cycles": MAX_CYCLES,
            "master_seed": MASTER_SEED,
            "dict": {"cells": baseline_rows, "totals": baseline_totals},
            "watched": {"cells": candidate_rows, "totals": candidate_totals},
            "speedup": round(grid_speedup, 3),
        },
        "kernel_replay": {
            "stores": len(specs),
            "total_nogoods": sum(len(spec.nogoods) for spec in specs),
            "largest_store": max(
                (len(spec.nogoods) for spec in specs), default=0
            ),
            "rounds_per_store": KERNEL_ROUNDS,
            "workload_seed": KERNEL_WORKLOAD_SEED,
            "harvested_from": [
                {"family": family, "n": n, "algorithm": label, "cap": cap}
                for family, n, _i, _j, label, cap in KERNEL_HARVEST_GRID
            ],
            **kernel,
            "speedup": round(kernel_speedup, 2),
        },
        "speedup": round(kernel_speedup, 2),
        "results_identical": True,
        "note": (
            "grid_parity reruns the full quick-scale grid under both store "
            "backends and asserts bit-identical trial results (the counting "
            "parity guarantee); kernel_replay times an identical AWC-shaped "
            "workload over nogood stores harvested from real d3c/d3s "
            "trials — both backends count the same checks, so checks/sec "
            "compares pure consultation speed"
        ),
    }
    Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"grid parity: dict {baseline_totals['wall_seconds']:.2f}s, watched "
        f"{candidate_totals['wall_seconds']:.2f}s "
        f"(trial speedup {grid_speedup:.2f}x), results identical"
    )
    print(
        f"kernel replay: {len(specs)} stores, dict {dict_cps:,} checks/s, "
        f"watched {watched_cps:,} checks/s, speedup {kernel_speedup:.1f}x"
    )
    print(f"wrote {output}")
    if gate is not None:
        return check_gate(gate, watched_cps)
    return 0


# -- the retention axis ---------------------------------------------------------

#: Soak-stream shape for ``--axis retention`` (kept small for CI).
RETENTION_SOAK_EPISODES = 40
RETENTION_SOAK_POOL = 4
RETENTION_SOAK_N = 15
RETENTION_SOAK_BUDGET = 32
RETENTION_SOAK_CYCLES = 500

#: Grid cells re-run for the keep-all parity leg (a subset of GRID).
RETENTION_PARITY_GRID = GRID[:2] + GRID[2:3]


def run_retention_bench(output: str, gate: Optional[str]) -> int:
    """The ``--axis retention`` benchmark: policy parity + the soak stream.

    Three load-bearing properties, asserted rather than merely reported:

    * ``retention=None`` and ``retention="keep-all"`` reproduce each
      other bit-identically on real table cells (the paper's
      record-forever behaviour is the literal default code path);
    * a bounded policy produces bit-identical trial results on the dict
      and watched store backends (eviction decisions are
      backend-independent, like check counting);
    * the soak stream solves with every solution re-verified against the
      original constraints, and bounded policies never exceed the
      nogood budget.

    The gated throughput metric is the soak stream's counted checks per
    second — the end-to-end cost of consulting bounded knowledge bases.
    """
    from .soak import DEFAULT_POLICIES, run_soak

    print(
        f"bench_smoke: retention axis — {len(RETENTION_PARITY_GRID)} "
        "parity cells, then the soak stream over "
        f"{len(DEFAULT_POLICIES)} policies"
    )
    parity_cells = []
    for family, n, num_instances, inits, label in RETENTION_PARITY_GRID:
        instances = instances_for(family, n, num_instances, MASTER_SEED)
        spec = algorithm_by_name(label)
        legs = {}
        for leg, store, retention in (
            ("default", "dict", None),
            ("keep-all", "dict", "keep-all"),
            ("lru-dict", "dict", f"lru:{RETENTION_SOAK_BUDGET}"),
            ("lru-watched", "watched", f"lru:{RETENTION_SOAK_BUDGET}"),
        ):
            cell = run_cell(
                instances,
                spec,
                inits_per_instance=inits,
                master_seed=MASTER_SEED,
                n=n,
                max_cycles=MAX_CYCLES,
                workers=1,
                store=store,
                retention=retention,
            )
            legs[leg] = cell_measures(cell)
        name = f"{family}-n{n}-{label}"
        if legs["default"] != legs["keep-all"]:
            print(f"FATAL: keep-all diverges from the default on {name}")
            return 1
        if legs["lru-dict"] != legs["lru-watched"]:
            print(
                f"FATAL: lru evictions diverge between dict and watched "
                f"stores on {name}"
            )
            return 1
        parity_cells.append(name)
    print(
        f"parity: keep-all == default and lru dict == watched on "
        f"{len(parity_cells)} cells"
    )

    started = time.perf_counter()
    soak = run_soak(
        policies=DEFAULT_POLICIES,
        budget=RETENTION_SOAK_BUDGET,
        episodes=RETENTION_SOAK_EPISODES,
        pool=RETENTION_SOAK_POOL,
        n=RETENTION_SOAK_N,
        max_cycles=RETENTION_SOAK_CYCLES,
        seed=MASTER_SEED,
    )
    elapsed = time.perf_counter() - started
    if not soak.all_verified:
        print("FATAL: a solved soak episode failed solution re-verification")
        return 1
    if not soak.all_within_budget:
        print(
            f"FATAL: a bounded policy exceeded the "
            f"{RETENTION_SOAK_BUDGET}-nogood budget"
        )
        return 1
    total_checks = sum(row.total_checks for row in soak.policies)
    checks_per_second = round(total_checks / elapsed) if elapsed else 0

    report = {
        "benchmark": "kb_memory",
        "machine": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "parity": {
            "cells": parity_cells,
            "legs": ["default", "keep-all", "lru-dict", "lru-watched"],
            "results_identical": True,
        },
        "soak": {
            **soak.to_json(),
            "wall_seconds": round(elapsed, 4),
            "total_checks": total_checks,
            "checks_per_second": checks_per_second,
        },
        "results_identical": True,
        "note": (
            "parity reruns real table cells asserting keep-all == the "
            "retention-free default (bit-identical) and that lru evicts "
            "identically on the dict and watched store backends; the soak "
            "leg streams episodes through persistent agent populations "
            "under a nogood budget, re-verifying every solution and "
            "asserting bounded policies stay within budget — "
            "checks_per_second is the gated end-to-end throughput"
        ),
    }
    Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(soak.format_text())
    print(
        f"soak: {elapsed:.2f}s, {total_checks:,} checks "
        f"({checks_per_second:,} checks/s)"
    )
    print(f"wrote {output}")
    if gate is not None:
        metric_path, label, direction = GATE_METRICS["retention"]
        return check_gate(
            gate, checks_per_second, metric_path, label, direction
        )
    return 0


def run_verify_bench(output: str, gate: Optional[str]) -> int:
    """``--axis verify``: the interleaving verifier as a benchmark.

    Explores the pinned corpus (pruned DFS + capped naive count) and
    reports schedule throughput and the prune ratio. Two properties are
    load-bearing and asserted here rather than merely reported: zero
    invariant violations, and at least a 10x prune ratio (the static
    commutativity matrix must keep paying for itself as the corpus and
    the agent code evolve).
    """
    from ..verify.explorer import explore_corpus

    report_data = explore_corpus()
    schedules_per_second = report_data.schedules_per_second
    report = {
        "benchmark": "verify_smoke",
        "python": platform.python_version(),
        "cores": os.cpu_count() or 1,
        "verify": {
            "schedules_per_second": round(schedules_per_second, 1),
            "prune_ratio": round(report_data.prune_ratio, 2),
            "explored": report_data.explored,
            "naive": report_data.naive,
            "total_runs": report_data.total_runs,
            "violations": report_data.violations,
            "entries": [entry.as_dict() for entry in report_data.entries],
        },
        "note": (
            "DPOR exploration of the pinned n<=8 corpus: 'explored' counts "
            "schedules the pruned search ran, 'naive' the unpruned "
            "enumeration (capped at 15x explored, so a capped prune_ratio "
            "is a lower bound); schedules_per_second counts every "
            "simulation run, including the naive walk"
        ),
    }
    Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"verify: {report_data.explored} schedules explored "
        f"({report_data.total_runs} runs), prune ratio "
        f"{report_data.prune_ratio:.1f}x, "
        f"{schedules_per_second:,.0f} schedules/s"
    )
    print(f"wrote {output}")
    if report_data.violations:
        for violation in report_data.violations:
            print(f"FATAL: invariant violation: {violation}")
        return 1
    if report_data.prune_ratio < 10.0:
        print(
            f"FATAL: prune ratio {report_data.prune_ratio:.1f}x fell "
            "below the 10x bar — the commutativity matrix is no longer "
            "pruning effectively"
        )
        return 1
    if gate is not None:
        metric_path, label, direction = GATE_METRICS["verify"]
        return check_gate(
            gate, schedules_per_second, metric_path, label, direction
        )
    return 0


# -- the alloc axis -------------------------------------------------------------

#: The d3c/d3s cells replayed for per-message allocation accounting.
ALLOC_GRID = GRID[:4]

#: Pre-remediation reference for the alloc axis, measured on this tree
#: immediately before the H1-H4 fixes (same grid, same seeds, same
#: probe). Committed so ``BENCH_alloc.json`` can report the reduction the
#: fixes bought without needing to check out the old tree.
ALLOC_PRE_FIX_REFERENCE = {
    "transient_bytes_per_1k_messages": 391277.0,
    "python": "3.11.7",
    "note": (
        "measured before the H1-H4 remediation: hoisted hot-path lambdas, "
        "cached domain/recipient/nogood-variable views, count-based store "
        "consultation instead of throwaway violation lists, reusable "
        "candidate scratch buffers, and a tuple-free priority-key miss path"
    ),
}


class _AllocProbe:
    """Accumulates transient allocation across instrumented handler calls.

    ``wrap()`` shadows an agent's ``initialize``/``step`` bound methods
    with closures that bracket the call in ``tracemalloc.reset_peak()`` /
    ``get_traced_memory()``. ``peak - current`` after the call is the
    memory that existed at some point during the handler but not at its
    end — i.e. the per-message garbage H1-H4 police. Retained allocation
    (nogoods entering the store) appears in both terms and cancels out.
    """

    def __init__(self) -> None:
        self.handler_calls = 0
        self.delivered_messages = 0
        self.transient_bytes = 0

    def wrap(self, agent) -> None:
        probe = self
        inner_initialize = agent.initialize
        inner_step = agent.step

        def initialize():
            probe.handler_calls += 1
            tracemalloc.reset_peak()
            result = inner_initialize()
            current, peak = tracemalloc.get_traced_memory()
            probe.transient_bytes += peak - current
            return result

        def step(messages):
            probe.handler_calls += 1
            probe.delivered_messages += len(messages)
            tracemalloc.reset_peak()
            result = inner_step(messages)
            current, peak = tracemalloc.get_traced_memory()
            probe.transient_bytes += peak - current
            return result

        agent.initialize = initialize
        agent.step = step


def _run_alloc_trial(problem, spec, seed, probe: _AllocProbe):
    """One instrumented trial; mirrors ``runner.run_trial`` (sync/dict)."""
    metrics = MetricsCollector()
    initial = random_initial_assignment(problem, seed)
    agents = spec.build(problem, metrics, seed, initial)
    for agent in agents:
        probe.wrap(agent)
    simulator = SynchronousSimulator(
        problem,
        agents,
        network=synchronous_network_factory(seed),
        max_cycles=MAX_CYCLES,
        metrics=metrics,
    )
    return simulator.run()


def run_alloc_bench(output: str, gate: Optional[str]) -> int:
    """``--axis alloc``: allocation churn per 1k delivered messages.

    Replays the d3c/d3s cells twice: once uninstrumented (the reference),
    once with every handler call bracketed by a :class:`_AllocProbe`. The
    probe is purely observational, so the instrumented leg must reproduce
    the reference results bit-for-bit — a divergence means the probe (or
    an allocation "fix") changed behaviour, and the run fails. The
    headline metric is transient bytes per 1k delivered messages (lower
    is better); the committed :data:`ALLOC_PRE_FIX_REFERENCE` turns it
    into the reduction the H1-H4 remediation bought.
    """
    print(
        f"bench_smoke: alloc axis — {len(ALLOC_GRID)} d3c/d3s cells, "
        "tracemalloc transient probe around every handler call"
    )
    rows = []
    mismatches = []
    totals = {
        "handler_calls": 0,
        "delivered_messages": 0,
        "transient_bytes": 0,
    }
    for family, n, num_instances, inits, label in ALLOC_GRID:
        instances = instances_for(family, n, num_instances, MASTER_SEED)
        spec = algorithm_by_name(label)
        reference_cell = run_cell(
            instances,
            spec,
            inits_per_instance=inits,
            master_seed=MASTER_SEED,
            n=n,
            max_cycles=MAX_CYCLES,
            workers=1,
        )
        probe = _AllocProbe()
        trials = []
        tracemalloc.start()
        try:
            for instance_index, _init_index, seed in trial_parameters(
                num_instances, inits, MASTER_SEED
            ):
                trials.append(
                    _run_alloc_trial(
                        instances[instance_index], spec, seed, probe
                    )
                )
        finally:
            tracemalloc.stop()
        instrumented_cell = CellResult(label=label, n=n, trials=trials)
        if cell_measures(reference_cell) != cell_measures(instrumented_cell):
            mismatches.append(f"{family}-n{n}-{label}")
        per_1k = (
            probe.transient_bytes * 1000.0 / probe.delivered_messages
            if probe.delivered_messages
            else 0.0
        )
        rows.append(
            {
                "family": family,
                "n": n,
                "algorithm": label,
                "trials": len(trials),
                "handler_calls": probe.handler_calls,
                "delivered_messages": probe.delivered_messages,
                "transient_bytes": probe.transient_bytes,
                "transient_bytes_per_1k_messages": round(per_1k, 1),
            }
        )
        for key in totals:
            totals[key] += getattr(probe, key)
    if mismatches:
        print(
            "FATAL: instrumented replay diverges from the reference run: "
            f"{mismatches}"
        )
        return 1
    bytes_per_1k = (
        totals["transient_bytes"] * 1000.0 / totals["delivered_messages"]
        if totals["delivered_messages"]
        else 0.0
    )
    reference_per_1k = ALLOC_PRE_FIX_REFERENCE[
        "transient_bytes_per_1k_messages"
    ]
    reduction = (
        1.0 - bytes_per_1k / reference_per_1k if reference_per_1k else 0.0
    )
    report = {
        "benchmark": "alloc_smoke",
        "grid": [
            {
                "family": family,
                "n": n,
                "instances": instances,
                "inits": inits,
                "algorithm": label,
            }
            for family, n, instances, inits, label in ALLOC_GRID
        ],
        "max_cycles": MAX_CYCLES,
        "master_seed": MASTER_SEED,
        "machine": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "cells": rows,
        "alloc": {
            **totals,
            "transient_bytes_per_1k_messages": round(bytes_per_1k, 1),
        },
        "pre_fix_reference": ALLOC_PRE_FIX_REFERENCE,
        "reduction_vs_pre_fix": round(reduction, 3),
        "results_identical": True,
        "note": (
            "transient bytes = tracemalloc peak minus surviving bytes per "
            "handler call, summed over the replay and normalised per 1k "
            "delivered messages; it counts per-message garbage (temporary "
            "containers, sort copies, closures) while retained state "
            "(nogoods entering the store) cancels out. Deterministic for "
            "a fixed Python version; lower is better"
        ),
    }
    Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"alloc: {totals['delivered_messages']:,} messages over "
        f"{totals['handler_calls']:,} handler calls, "
        f"{bytes_per_1k:,.0f} transient bytes/1k msgs "
        f"({reduction:.1%} below the pre-fix reference)"
    )
    print(f"wrote {output}")
    if gate is not None:
        metric_path, metric_label, direction = GATE_METRICS["alloc"]
        return check_gate(gate, bytes_per_1k, metric_path, metric_label,
                          direction)
    return 0


#: Where each gated axis keeps its metric in its report, and which
#: direction is "better" ("max": higher, gate is a floor; "min": lower,
#: gate is a ceiling).
GATE_METRICS: Dict[str, Tuple[Tuple[str, ...], str, str]] = {
    "lint": (
        ("pass_wall_max_seconds",),
        "full-tree lint wall seconds",
        "min",
    ),
    "store": (
        ("kernel_replay", "watched", "checks_per_second"),
        "watched-kernel checks/sec",
        "max",
    ),
    "verify": (
        ("verify", "schedules_per_second"),
        "verify schedules/sec",
        "max",
    ),
    "retention": (
        ("soak", "checks_per_second"),
        "retention soak checks/sec",
        "max",
    ),
    "alloc": (
        ("alloc", "transient_bytes_per_1k_messages"),
        "transient bytes/1k messages",
        "min",
    ),
}


def check_gate(
    baseline_path: str,
    measured: float,
    metric_path: Tuple[str, ...] = GATE_METRICS["store"][0],
    label: str = GATE_METRICS["store"][1],
    direction: str = "max",
) -> int:
    """Fail if *measured* regressed >20% against the committed baseline.

    ``direction`` says which way is better: ``"max"`` metrics (throughput)
    gate on a floor 20% below the baseline, ``"min"`` metrics (allocation
    churn) on a ceiling 20% above it.

    A gate was explicitly requested, so a baseline that cannot be read is
    an error, never a silent skip — one line, no traceback.
    """
    path = Path(baseline_path)
    if not path.exists():
        print(f"FATAL: gate baseline {baseline_path} does not exist")
        return 1
    try:
        baseline = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
        print(f"FATAL: gate baseline {baseline_path} is unreadable: {error}")
        return 1
    try:
        value: object = baseline
        for key in metric_path:
            value = value[key]  # type: ignore[index]
        baseline_value = float(value)  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError):
        print(
            f"FATAL: gate baseline {baseline_path} has no "
            f"{'.'.join(metric_path)} metric"
        )
        return 1
    if direction == "min":
        bound = baseline_value * (1.0 + GATE_TOLERANCE)
        bound_name = "ceiling"
        regressed = measured > bound
    else:
        bound = baseline_value * (1.0 - GATE_TOLERANCE)
        bound_name = "floor"
        regressed = measured < bound
    print(
        f"gate: measured {measured:,.0f} vs baseline "
        f"{baseline_value:,.0f} {label} ({bound_name} {bound:,.0f})"
    )
    if regressed:
        print(
            f"FATAL: {label} regressed more than "
            f"{GATE_TOLERANCE:.0%} vs {baseline_path}"
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--axis",
        choices=(
            "workers", "backend", "lint", "store", "verify", "retention",
            "alloc",
        ),
        default="workers",
        help="what to compare: sequential vs parallel execution, the "
        "sync vs event-driven engines (both legs sequential), two "
        "passes of the whole-program lint analyzer, the dict vs "
        "watched/bitset nogood-store backends, the interleaving "
        "verifier's schedule-exploration throughput, the nogood "
        "retention subsystem's parity and soak stream, or the "
        "per-message allocation churn of the handler hot paths",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="workers for the parallel leg of --axis workers "
        "(default: min(4, cores))",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON report (default: "
        "BENCH_trial_engine.json / BENCH_event_engine.json / "
        "BENCH_lint.json / BENCH_store_kernel.json by axis)",
    )
    parser.add_argument(
        "--gate",
        nargs="?",
        const="",
        default=None,
        metavar="BASELINE",
        help="(--axis lint/store/verify/retention/alloc) fail if the "
        "axis's metric regresses more than 20%% against the BASELINE "
        "report (default: the committed BENCH_lint.json / "
        "BENCH_store_kernel.json / BENCH_verify.json / "
        "BENCH_kb_memory.json / BENCH_alloc.json)",
    )
    args = parser.parse_args(argv)
    cores = os.cpu_count() or 1
    jobs = args.jobs if args.jobs is not None else min(4, cores)
    repo_root = _repo_root()

    if args.axis == "lint":
        output = args.output or str(repo_root / "BENCH_lint.json")
        gate = args.gate
        if gate == "":
            gate = str(repo_root / "BENCH_lint.json")
        return run_lint_bench(repo_root, output, gate)

    if args.axis == "store":
        output = args.output or str(repo_root / "BENCH_store_kernel.json")
        gate = args.gate
        if gate == "":
            gate = str(repo_root / "BENCH_store_kernel.json")
        return run_store_bench(output, gate)

    if args.axis == "verify":
        output = args.output or str(repo_root / "BENCH_verify.json")
        gate = args.gate
        if gate == "":
            gate = str(repo_root / "BENCH_verify.json")
        return run_verify_bench(output, gate)

    if args.axis == "alloc":
        output = args.output or str(repo_root / "BENCH_alloc.json")
        gate = args.gate
        if gate == "":
            gate = str(repo_root / "BENCH_alloc.json")
        return run_alloc_bench(output, gate)

    if args.axis == "retention":
        output = args.output or str(repo_root / "BENCH_kb_memory.json")
        gate = args.gate
        if gate == "":
            gate = str(repo_root / "BENCH_kb_memory.json")
        return run_retention_bench(output, gate)

    if args.axis == "backend":
        output = args.output or str(repo_root / "BENCH_event_engine.json")
        print(
            f"bench_smoke: {len(GRID)} cells, sync simulator vs "
            "event-driven engine (parity mode, sequential)"
        )
        baseline_name, candidate_name = "sync", "events"
        baseline_rows, baseline_totals = run_grid(workers=1, backend="sync")
        candidate_rows, candidate_totals = run_grid(
            workers=1, backend="events"
        )
        benchmark = "event_engine_smoke"
        diverge_message = "event-driven results diverge from sync (parity)"
        note = (
            "both legs are sequential; identical results are the parity "
            "guarantee of the unit-latency event engine, and the speedup "
            "(sync wall time / events wall time) is the discrete-event "
            "loop's overhead relative to lockstep cycles"
        )
        extra = {}
    else:
        output = args.output or str(repo_root / "BENCH_trial_engine.json")
        print(
            f"bench_smoke: {len(GRID)} cells, sequential vs {jobs} workers "
            f"({cores} cores available)"
        )
        baseline_name, candidate_name = "sequential", "parallel"
        baseline_rows, baseline_totals = run_grid(workers=1)
        candidate_rows, candidate_totals = run_grid(workers=jobs)
        benchmark = "trial_engine_smoke"
        diverge_message = "parallel results diverge from sequential"
        note = (
            "speedup is bounded by physical cores: with "
            f"{cores} core(s) available, {jobs} workers can at best "
            f"approach {min(jobs, cores)}x minus pool overhead"
        )
        extra = {"workers": jobs}

    mismatches = [
        f"{s['family']}-n{s['n']}-{s['algorithm']}"
        for s, p in zip(baseline_rows, candidate_rows)
        if cell_measures(s.pop("cell")) != cell_measures(p.pop("cell"))
    ]
    if mismatches:
        print(f"FATAL: {diverge_message}: {mismatches}")
        return 1

    speedup = (
        baseline_totals["wall_seconds"] / candidate_totals["wall_seconds"]
        if candidate_totals["wall_seconds"]
        else 0.0
    )
    report = {
        "benchmark": benchmark,
        "grid": [
            {
                "family": family,
                "n": n,
                "instances": instances,
                "inits": inits,
                "algorithm": label,
            }
            for family, n, instances, inits, label in GRID
        ],
        "max_cycles": MAX_CYCLES,
        "master_seed": MASTER_SEED,
        "machine": {
            "cpu_count": cores,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        **extra,
        baseline_name: {"cells": baseline_rows, "totals": baseline_totals},
        candidate_name: {"cells": candidate_rows, "totals": candidate_totals},
        "speedup": round(speedup, 3),
        "results_identical": True,
        "note": note,
    }
    Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"{baseline_name} {baseline_totals['wall_seconds']:.2f}s "
        f"({baseline_totals['checks_per_second']:,} checks/s), "
        f"{candidate_name} {candidate_totals['wall_seconds']:.2f}s "
        f"({candidate_totals['checks_per_second']:,} checks/s), "
        f"speedup {speedup:.2f}x"
    )
    print(f"wrote {output}")
    return 0
