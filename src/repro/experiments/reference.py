"""The paper's reported numbers, transcribed for side-by-side comparison.

Every value below is copied from Tables 1–10 (and the Figure 2 discussion)
of Hirayama & Yokoo, ICDCS 2000. They are the *targets of shape*: our
reproduction runs on a different substrate (Python, different RNG streams,
regenerated instances), so absolute equality is not expected — orderings and
rough ratios are.

Keys are ``(n, label)``; values are ``(cycle, maxcck, percent)``. ``nan``
marks the one cell the paper leaves blank (Table 3, No learning at n=200:
0 % of trials finished, so no averages are reported).
"""

from __future__ import annotations

from typing import Dict, Tuple

NAN = float("nan")

Reference = Dict[Tuple[int, str], Tuple[float, float, float]]

#: Table 1 — learning methods on distributed 3-coloring.
TABLE1: Reference = {
    (60, "AWC+Rslv"): (83.2, 58084.4, 100),
    (60, "AWC+Mcs"): (88.8, 119019.2, 100),
    (60, "AWC+No"): (458.2, 52601.6, 100),
    (90, "AWC+Rslv"): (125.4, 135569.8, 100),
    (90, "AWC+Mcs"): (133.2, 275099.1, 100),
    (90, "AWC+No"): (2923.9, 358486.1, 91),
    (120, "AWC+Rslv"): (178.5, 263115.1, 100),
    (120, "AWC+Mcs"): (172.3, 494266.7, 100),
    (120, "AWC+No"): (6121.9, 793280.3, 60),
    (150, "AWC+Rslv"): (173.9, 273823.3, 100),
    (150, "AWC+Mcs"): (177.1, 512657.0, 100),
    (150, "AWC+No"): (8800.5, 1188345.1, 21),
}

#: Table 2 — learning methods on distributed 3SAT (3SAT-GEN).
TABLE2: Reference = {
    (50, "AWC+Rslv"): (125.0, 76256.2, 100),
    (50, "AWC+Mcs"): (120.7, 180122.0, 100),
    (50, "AWC+No"): (360.0, 15959.3, 100),
    (100, "AWC+Rslv"): (215.3, 233003.8, 100),
    (100, "AWC+Mcs"): (238.9, 830660.5, 100),
    (100, "AWC+No"): (3949.8, 188182.3, 80),
    (150, "AWC+Rslv"): (275.3, 399146.6, 100),
    (150, "AWC+Mcs"): (286.0, 1146204.1, 100),
    (150, "AWC+No"): (7793.8, 382634.7, 41),
}

#: Table 3 — learning methods on distributed 3SAT (3ONESAT-GEN).
TABLE3: Reference = {
    (50, "AWC+Rslv"): (140.4, 64011.0, 100),
    (50, "AWC+Mcs"): (120.3, 90813.5, 100),
    (50, "AWC+No"): (1378.1, 47784.3, 62),
    (100, "AWC+Rslv"): (155.4, 81086.1, 100),
    (100, "AWC+Mcs"): (138.2, 132518.7, 100),
    (100, "AWC+No"): (9179.5, 340172.3, 14),
    (200, "AWC+Rslv"): (263.8, 294334.5, 100),
    (200, "AWC+Mcs"): (237.4, 544732.6, 100),
    (200, "AWC+No"): (NAN, NAN, 0),
}

#: Table 4 — mean redundant nogood generations, keyed by (problem, n, policy).
TABLE4: Dict[Tuple[str, int, str], float] = {
    ("d3c", 60, "AWC+Rslv/rec"): 69.1,
    ("d3c", 60, "AWC+Rslv/norec"): 1612.3,
    ("d3c", 90, "AWC+Rslv/rec"): 208.1,
    ("d3c", 90, "AWC+Rslv/norec"): 24399.3,
    ("d3c", 120, "AWC+Rslv/rec"): 432.5,
    ("d3c", 120, "AWC+Rslv/norec"): 69784.6,
    ("d3c", 150, "AWC+Rslv/rec"): 565.3,
    ("d3c", 150, "AWC+Rslv/norec"): 135502.5,
    ("d3s", 50, "AWC+Rslv/rec"): 195.3,
    ("d3s", 50, "AWC+Rslv/norec"): 1105.3,
    ("d3s", 100, "AWC+Rslv/rec"): 908.0,
    ("d3s", 100, "AWC+Rslv/norec"): 42998.7,
    ("d3s", 150, "AWC+Rslv/rec"): 1947.2,
    ("d3s", 150, "AWC+Rslv/norec"): 133162.6,
    ("d3s1", 50, "AWC+Rslv/rec"): 276.6,
    ("d3s1", 50, "AWC+Rslv/norec"): 5523.3,
    ("d3s1", 100, "AWC+Rslv/rec"): 651.9,
    ("d3s1", 100, "AWC+Rslv/norec"): 86595.8,
    ("d3s1", 200, "AWC+Rslv/rec"): 2683.4,
    ("d3s1", 200, "AWC+Rslv/norec"): 190501.8,
}

#: Table 5 — size-bounded learning on distributed 3-coloring.
TABLE5: Reference = {
    (60, "AWC+Rslv"): (83.2, 58084.4, 100),
    (60, "AWC+3rdRslv"): (85.6, 40594.2, 100),
    (60, "AWC+4thRslv"): (90.6, 66622.4, 100),
    (90, "AWC+Rslv"): (125.4, 135569.8, 100),
    (90, "AWC+3rdRslv"): (126.4, 76923.5, 100),
    (90, "AWC+4thRslv"): (136.0, 151973.7, 100),
    (120, "AWC+Rslv"): (178.5, 263115.1, 100),
    (120, "AWC+3rdRslv"): (171.8, 124226.1, 100),
    (120, "AWC+4thRslv"): (167.3, 217033.4, 100),
    (150, "AWC+Rslv"): (173.9, 273823.3, 100),
    (150, "AWC+3rdRslv"): (186.1, 153139.2, 100),
    (150, "AWC+4thRslv"): (180.4, 249459.3, 100),
}

#: Table 6 — size-bounded learning on distributed 3SAT (3SAT-GEN).
TABLE6: Reference = {
    (50, "AWC+Rslv"): (125.0, 76256.2, 100),
    (50, "AWC+4thRslv"): (124.7, 37717.9, 100),
    (50, "AWC+5thRslv"): (113.0, 49770.3, 100),
    (100, "AWC+Rslv"): (215.3, 233003.8, 100),
    (100, "AWC+4thRslv"): (387.9, 311048.8, 100),
    (100, "AWC+5thRslv"): (216.0, 171115.7, 100),
    (150, "AWC+Rslv"): (275.3, 399146.6, 100),
    (150, "AWC+4thRslv"): (595.7, 522191.2, 100),
    (150, "AWC+5thRslv"): (255.5, 246534.5, 100),
}

#: Table 7 — size-bounded learning on distributed 3SAT (3ONESAT-GEN).
TABLE7: Reference = {
    (50, "AWC+Rslv"): (140.4, 64011.0, 100),
    (50, "AWC+4thRslv"): (130.8, 38892.5, 100),
    (50, "AWC+5thRslv"): (128.9, 46611.6, 100),
    (100, "AWC+Rslv"): (155.4, 81086.1, 100),
    (100, "AWC+4thRslv"): (167.8, 68777.9, 100),
    (100, "AWC+5thRslv"): (162.8, 84404.4, 100),
    (200, "AWC+Rslv"): (263.8, 294334.5, 100),
    (200, "AWC+4thRslv"): (265.7, 181491.7, 100),
    (200, "AWC+5thRslv"): (272.6, 290999.9, 100),
}

#: Table 8 — AWC+3rdRslv vs DB on distributed 3-coloring.
TABLE8: Reference = {
    (60, "AWC+3rdRslv"): (85.6, 40594.2, 100),
    (60, "DB"): (164.9, 7730.0, 100),
    (90, "AWC+3rdRslv"): (126.4, 76923.5, 100),
    (90, "DB"): (282.1, 14228.5, 100),
    (120, "AWC+3rdRslv"): (171.8, 124226.1, 100),
    (120, "DB"): (522.4, 26931.5, 100),
    (150, "AWC+3rdRslv"): (186.1, 153139.2, 100),
    (150, "DB"): (523.7, 29207.0, 100),
}

#: Table 9 — AWC+5thRslv vs DB on distributed 3SAT (3SAT-GEN).
TABLE9: Reference = {
    (50, "AWC+5thRslv"): (113.0, 49770.3, 100),
    (50, "DB"): (322.6, 6461.3, 100),
    (100, "AWC+5thRslv"): (216.0, 171115.7, 100),
    (100, "DB"): (847.2, 19870.8, 100),
    (150, "AWC+5thRslv"): (255.5, 246534.5, 100),
    (150, "DB"): (1257.2, 31717.2, 100),
}

#: Table 10 — AWC+4thRslv vs DB on distributed 3SAT (3ONESAT-GEN).
TABLE10: Reference = {
    (50, "AWC+4thRslv"): (130.8, 38892.5, 100),
    (50, "DB"): (690.1, 11691.1, 100),
    (100, "AWC+4thRslv"): (167.8, 68777.9, 100),
    (100, "DB"): (1917.4, 38210.5, 97),
    (200, "AWC+4thRslv"): (265.7, 181491.7, 100),
    (200, "DB"): (5246.5, 117277.4, 69),
}

#: Figure 2's quoted crossover delays (time-units where AWC becomes better).
FIGURE2_CROSSOVERS = {
    ("d3s1", 50): 50.0,   # "around 50 time-unit"
    ("d3s", 150): 210.0,  # "around 210 time-unit"
    ("d3c", 150): 370.0,  # "around 370 time-unit"
}

ALL_TABLES = {
    1: TABLE1,
    2: TABLE2,
    3: TABLE3,
    5: TABLE5,
    6: TABLE6,
    7: TABLE7,
    8: TABLE8,
    9: TABLE9,
    10: TABLE10,
}
