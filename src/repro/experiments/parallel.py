"""Parallel trial execution: one cell's trials across a process pool.

A table cell aggregates up to 100 independent trials (`EXPERIMENTS.md`);
nothing couples them — each has its own derived seed, agents, network and
metrics — so they parallelize perfectly. This module farms the trials of
:func:`~repro.experiments.runner.run_cell` out to a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping the results
**bit-identical** to the sequential path:

* trial seeds come from the same
  :func:`~repro.experiments.runner.trial_parameters` iterator the
  sequential runner uses, so trial *i* sees exactly the same RNG streams in
  both modes;
* results are placed into the cell by trial index, not completion order,
  so ``CellResult.trials`` is deterministically ordered;
* only wall-clock fields (``wall_time``/``sim_time``) differ between modes
  — every simulated measure (``cycles``, ``maxcck``, checks, messages,
  assignments) is equal, and the determinism tests assert it.

Worker-count selection: an explicit ``workers`` argument wins, otherwise
the ``REPRO_JOBS`` environment variable, otherwise 1 (sequential —
today's behavior). ``workers=0`` means "all cores". The ``repro`` CLI
exposes this as ``--jobs``.

Not everything can cross a process boundary: algorithm specs built from
closures are reconstructed in the workers from their registry label, and a
cell whose algorithm or network factory cannot be shipped falls back to
the sequential runner with a :class:`RuntimeWarning` rather than failing.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

from ..algorithms.registry import AlgorithmSpec, algorithm_by_name
from ..core.exceptions import ModelError
from ..core.problem import DisCSP
from ..runtime.events.transport import TransportFactory
from ..runtime.random_source import Seed
from ..runtime.simulator import DEFAULT_MAX_CYCLES, RunResult
from . import runner as _runner
from .runner import (
    CellResult,
    NetworkFactory,
    run_trial,
    synchronous_network_factory,
    trial_parameters,
)

#: How an algorithm travels to a worker: by registry label or by pickle.
_AlgorithmRef = Tuple[str, Union[str, AlgorithmSpec]]

#: Environment variable naming the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: argument, else ``REPRO_JOBS``, else 1.

    ``0`` (from either source) means "use every core". Negative counts are
    rejected.
    """
    if workers is None:
        raw = os.environ.get(JOBS_ENV_VAR)
        if raw is None:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ModelError(
                f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if workers < 0:
        raise ModelError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _algorithm_reference(algorithm: AlgorithmSpec) -> Optional[_AlgorithmRef]:
    """How to rebuild *algorithm* inside a worker, or None if we cannot.

    Registry-buildable labels are shipped by name (the builders are
    closures, which do not pickle); anything else is shipped by pickle when
    possible.
    """
    try:
        rebuilt = algorithm_by_name(algorithm.name)
        if rebuilt.name == algorithm.name:
            return ("name", algorithm.name)
    except ModelError:
        pass
    try:
        pickle.dumps(algorithm)
        return ("pickle", algorithm)
    except Exception:
        return None


def _is_picklable(value: object) -> bool:
    try:
        pickle.dumps(value)
        return True
    except Exception:
        return False


# -- worker-side state ---------------------------------------------------------

#: Set once per worker process by :func:`_init_worker`.
_WORKER: dict = {}


def _init_worker(
    instances: Tuple[DisCSP, ...],
    algorithm_ref: _AlgorithmRef,
    max_cycles: int,
    network_factory: NetworkFactory,
    backend: str = "sync",
    transport_factory: Optional[TransportFactory] = None,
    store: str = "dict",
    retention: Optional[str] = None,
) -> None:
    kind, payload = algorithm_ref
    algorithm = (
        algorithm_by_name(payload) if kind == "name" else payload
    )
    _WORKER["instances"] = instances
    _WORKER["algorithm"] = algorithm
    _WORKER["max_cycles"] = max_cycles
    _WORKER["network_factory"] = network_factory
    _WORKER["backend"] = backend
    _WORKER["transport_factory"] = transport_factory
    _WORKER["store"] = store
    _WORKER["retention"] = retention


def _run_trial_task(
    trial_index: int, instance_index: int, trial_seed: Seed
) -> Tuple[int, RunResult]:
    result = run_trial(
        _WORKER["instances"][instance_index],
        _WORKER["algorithm"],
        trial_seed,
        max_cycles=_WORKER["max_cycles"],
        network_factory=_WORKER["network_factory"],
        backend=_WORKER["backend"],
        transport_factory=_WORKER["transport_factory"],
        store=_WORKER["store"],
        retention=_WORKER["retention"],
    )
    return trial_index, result


# -- the parallel cell runner --------------------------------------------------


def run_cell_parallel(
    instances: Sequence[DisCSP],
    algorithm: AlgorithmSpec,
    inits_per_instance: int,
    master_seed: Seed,
    n: int,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    network_factory: NetworkFactory = synchronous_network_factory,
    workers: Optional[int] = None,
    backend: str = "sync",
    transport_factory: Optional[TransportFactory] = None,
    store: str = "dict",
    retention: Optional[str] = None,
) -> CellResult:
    """One cell, trials distributed over *workers* processes.

    Drop-in equivalent of :func:`repro.experiments.runner.run_cell`:
    identical signature plus ``workers``, identical results apart from
    timing fields. Falls back to the sequential runner (with a warning)
    when the algorithm or network factory cannot be shipped to workers,
    and silently when one worker would gain nothing. The ``backend`` /
    ``transport_factory`` pair travels to the workers like the network
    factory does, so event-driven cells parallelize identically; the
    ``store`` backend label is a plain string and ships the same way, as
    does the ``retention`` policy spec (workers rebuild the policy objects
    from it, one per store, so no policy state crosses the boundary).
    """
    effective = resolve_workers(workers)
    tasks = list(
        trial_parameters(len(instances), inits_per_instance, master_seed)
    )
    if effective <= 1 or len(tasks) <= 1:
        return _run_sequentially(
            instances,
            algorithm,
            inits_per_instance,
            master_seed,
            n,
            max_cycles,
            network_factory,
            backend,
            transport_factory,
            store,
            retention,
        )
    algorithm_ref = _algorithm_reference(algorithm)
    shippable = (
        algorithm_ref is not None
        and _is_picklable(network_factory)
        and _is_picklable(transport_factory)
        and _is_picklable(tuple(instances))
    )
    if not shippable:
        warnings.warn(
            f"cell {algorithm.name!r} cannot be shipped to worker "
            "processes (unpicklable algorithm, network/transport factory, "
            "or instances); running sequentially",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_sequentially(
            instances,
            algorithm,
            inits_per_instance,
            master_seed,
            n,
            max_cycles,
            network_factory,
            backend,
            transport_factory,
            store,
            retention,
        )
    effective = min(effective, len(tasks))
    results: List[Optional[RunResult]] = [None] * len(tasks)
    with ProcessPoolExecutor(
        max_workers=effective,
        initializer=_init_worker,
        initargs=(
            tuple(instances),
            algorithm_ref,
            max_cycles,
            network_factory,
            backend,
            transport_factory,
            store,
            retention,
        ),
    ) as pool:
        futures = [
            pool.submit(
                _run_trial_task, trial_index, instance_index, trial_seed
            )
            for trial_index, (instance_index, _init_index, trial_seed) in (
                enumerate(tasks)
            )
        ]
        # Aggregation is by trial index, so completion order is irrelevant.
        for future in futures:
            trial_index, result = future.result()
            results[trial_index] = result
    cell = CellResult(label=algorithm.name, n=n)
    cell.trials.extend(results)  # type: ignore[arg-type]
    return cell


def _run_sequentially(
    instances: Sequence[DisCSP],
    algorithm: AlgorithmSpec,
    inits_per_instance: int,
    master_seed: Seed,
    n: int,
    max_cycles: int,
    network_factory: NetworkFactory,
    backend: str = "sync",
    transport_factory: Optional[TransportFactory] = None,
    store: str = "dict",
    retention: Optional[str] = None,
) -> CellResult:
    return _runner.run_cell(
        instances,
        algorithm,
        inits_per_instance=inits_per_instance,
        master_seed=master_seed,
        n=n,
        max_cycles=max_cycles,
        network_factory=network_factory,
        workers=1,
        backend=backend,
        transport_factory=transport_factory,
        store=store,
        retention=retention,
    )
