"""The soak harness: sustained solve streams under a nogood budget.

The paper measures one-shot trials — build agents, solve once, discard
everything. A long-running service looks different: the same agent
population keeps solving, its knowledge base keeps growing, and the
memory question the retention subsystem answers only shows up over a
*stream* of solves. This harness provides that stream:

* a seeded pool of instances from one of the paper's families;
* one **persistent AWC population per pool instance** — stores, pins,
  retention policies and the cross-agent interner survive from episode
  to episode (learned nogoods are logical consequences of the same
  instance's constraints, so carrying them is sound);
* a stream of *episodes*, each re-solving a pool instance from fresh
  seeded initial values (round-robin over the pool, so coverage is even
  and deterministic);
* per-policy reporting: solve rate, peak learned-nogood count (the
  budgeted quantity), checks per solve, evictions, interner dedup — the
  solve-rate-vs-memory-vs-policy study Section 4.2's one-shot ``kthRslv``
  ablation could not run.

Every solved episode is re-verified against the *original* constraints
(:meth:`~repro.core.problem.DisCSP.is_solution`), so a retention bug that
manufactured false solutions would be caught here, not just in unit
tests. Bounded policies must additionally keep the peak learned count
within the budget; :attr:`PolicySoakResult.within_budget` records it and
``repro bench --axis retention`` gates on it.

Wall-clock use is fine here (experiments layer); the simulated measures
remain deterministic per ``(seed, policy, store)``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..algorithms.awc import AwcAgent, build_awc_agents
from ..core.exceptions import ModelError
from ..core.problem import DisCSP
from ..core.store import STORE_BACKENDS, store_class_by_name
from ..learning import learning_method
from ..retention import (
    NogoodInterner,
    retention_factory,
    spec_with_budget,
)
from ..runtime.metrics import MetricsCollector
from ..runtime.network import SynchronousNetwork
from ..runtime.random_source import Seed, derive_rng, derive_seed
from ..runtime.simulator import SynchronousSimulator
from .paper import instances_for

#: Default stream length (the acceptance bar is a >= 200-episode stream).
DEFAULT_EPISODES = 200

#: Default number of distinct pool instances the stream cycles through.
DEFAULT_POOL = 10

#: Default per-store learned-nogood budget for bounded policies.
DEFAULT_BUDGET = 64

#: Default per-episode cycle cap (episodes re-solve small instances from
#: warm stores; the paper's 10 000 cap would hide pathologies here).
DEFAULT_EPISODE_CYCLES = 1_000

#: The soak default policy set, in report order.
DEFAULT_POLICIES = ("keep-all", "lru", "decay", "subsume")


@dataclass
class PolicySoakResult:
    """One policy's aggregate over the whole episode stream."""

    policy: str
    bounded: bool
    episodes: int
    solved: int
    verified: int
    capped: int
    total_cycles: int
    total_checks: int
    total_maxcck: int
    peak_learned: int
    peak_pinned: int
    evictions: int
    interner: Dict[str, int] = field(default_factory=dict)

    @property
    def solve_rate(self) -> float:
        """Share of episodes solved within the cycle cap, in percent."""
        if not self.episodes:
            return 0.0
        return 100.0 * self.solved / self.episodes

    @property
    def checks_per_solve(self) -> float:
        """Mean nogood checks spent per solved episode."""
        if not self.solved:
            return float(self.total_checks)
        return self.total_checks / self.solved

    def within_budget(self, budget: int) -> bool:
        """True when the peak learned count respected *budget*.

        Only meaningful for bounded policies; unbounded ones report their
        peak but are exempt from the bound.
        """
        if not self.bounded:
            return True
        return self.peak_learned <= budget


@dataclass
class SoakReport:
    """The full soak run: stream parameters plus one row per policy."""

    family: str
    n: int
    pool: int
    episodes: int
    budget: int
    store: str
    learning: str
    seed: Seed
    policies: List[PolicySoakResult] = field(default_factory=list)

    @property
    def all_verified(self) -> bool:
        """True when every solved episode re-verified, for every policy."""
        return all(
            result.verified == result.solved for result in self.policies
        )

    @property
    def all_within_budget(self) -> bool:
        """True when every bounded policy respected the budget."""
        return all(
            result.within_budget(self.budget) for result in self.policies
        )

    def format_text(self) -> str:
        lines = [
            f"soak: {self.episodes} episodes over {self.pool} "
            f"{self.family} n={self.n} instances, budget={self.budget}, "
            f"store={self.store}, learning={self.learning}, "
            f"seed={self.seed}",
            f"{'policy':<14} {'solve%':>7} {'peak':>6} {'pinned':>7} "
            f"{'evict':>7} {'chk/solve':>11} {'interned':>9} {'budget':>7}",
        ]
        for result in self.policies:
            bound = (
                "ok"
                if result.within_budget(self.budget)
                else "OVER"
            ) if result.bounded else "-"
            lines.append(
                f"{result.policy:<14} {result.solve_rate:>6.1f}% "
                f"{result.peak_learned:>6d} {result.peak_pinned:>7d} "
                f"{result.evictions:>7d} {result.checks_per_solve:>11.1f} "
                f"{result.interner.get('hits', 0):>9d} {bound:>7}"
            )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "n": self.n,
            "pool": self.pool,
            "episodes": self.episodes,
            "budget": self.budget,
            "store": self.store,
            "learning": self.learning,
            "seed": self.seed,
            "all_verified": self.all_verified,
            "all_within_budget": self.all_within_budget,
            "policies": {
                result.policy: {
                    "bounded": result.bounded,
                    "episodes": result.episodes,
                    "solved": result.solved,
                    "verified": result.verified,
                    "capped": result.capped,
                    "solve_rate": result.solve_rate,
                    "total_cycles": result.total_cycles,
                    "total_checks": result.total_checks,
                    "total_maxcck": result.total_maxcck,
                    "checks_per_solve": result.checks_per_solve,
                    "peak_learned": result.peak_learned,
                    "peak_pinned": result.peak_pinned,
                    "evictions": result.evictions,
                    "within_budget": result.within_budget(self.budget),
                    "interner": dict(result.interner),
                }
                for result in self.policies
            },
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class _Population:
    """One pool instance's persistent agents plus its shared interner."""

    def __init__(
        self,
        problem: DisCSP,
        agents: List[AwcAgent],
        interner: NogoodInterner,
    ) -> None:
        self.problem = problem
        self.agents = agents
        self.interner = interner

    def peak_counts(self) -> Tuple[int, int]:
        """(max learned, max pinned) over this population's stores."""
        learned = 0
        pinned = 0
        for agent in self.agents:
            count = agent.store.learned_count()
            if count > learned:
                learned = count
            pins = sum(
                1
                for nogood in agent.store.nogoods()
                if agent.store.is_pinned(nogood)
            )
            if pins > pinned:
                pinned = pins
        return learned, pinned

    def evictions(self) -> int:
        return sum(agent.store.evictions for agent in self.agents)


def _build_population(
    problem: DisCSP,
    learning_name: str,
    policy_spec: str,
    store: str,
    seed: Seed,
) -> _Population:
    metrics = MetricsCollector()
    agents = build_awc_agents(
        problem, learning_method(learning_name), metrics, seed
    )
    if store != "dict":
        store_class = store_class_by_name(store)
        for agent in agents:
            agent.rebind_store(store_class)
    factory = (
        retention_factory(policy_spec)
        if policy_spec != "keep-all"
        else None
    )
    interner = NogoodInterner()
    for agent in agents:
        agent.attach_retention(factory, interner)
    return _Population(problem, agents, interner)


def run_soak(
    policies: Sequence[str] = DEFAULT_POLICIES,
    budget: int = DEFAULT_BUDGET,
    episodes: int = DEFAULT_EPISODES,
    pool: int = DEFAULT_POOL,
    family: str = "d3c",
    n: int = 20,
    learning: str = "Rslv",
    store: str = "dict",
    seed: Seed = 0,
    max_cycles: int = DEFAULT_EPISODE_CYCLES,
) -> SoakReport:
    """Stream *episodes* re-solves through persistent populations per policy.

    Every policy sees the same instance pool, the same episode order and
    the same per-episode initial values (all derived from *seed*), so the
    rows of the report differ only by retention behaviour. ``budget`` is
    attached as the cap of bare bounded specs (``lru`` -> ``lru:<budget>``);
    explicit caps (``lru:100``) are honoured as written.
    """
    if episodes < 1:
        raise ModelError(f"episodes must be positive, got {episodes}")
    if pool < 1:
        raise ModelError(f"pool must be positive, got {pool}")
    if budget < 1:
        raise ModelError(f"budget must be positive, got {budget}")
    if store not in STORE_BACKENDS:
        raise ModelError(
            f"unknown store backend {store!r}; expected one of "
            f"{STORE_BACKENDS}"
        )
    if not policies:
        raise ModelError("at least one retention policy is required")
    # Validate every spec before the (expensive) pool build, so a typo in
    # the last policy fails fast instead of after minutes of streaming.
    specs = [spec_with_budget(policy, budget) for policy in policies]
    for spec in specs:
        if spec != "keep-all":
            retention_factory(spec)
    instances = instances_for(family, n, pool, derive_seed(seed, "soak-pool"))
    report = SoakReport(
        family=family,
        n=n,
        pool=pool,
        episodes=episodes,
        budget=budget,
        store=store,
        learning=learning,
        seed=seed,
    )
    for spec in specs:
        populations = [
            _build_population(
                instance,
                learning,
                spec,
                store,
                derive_seed(seed, "soak-agents", spec, index),
            )
            for index, instance in enumerate(instances)
        ]
        result = PolicySoakResult(
            policy=spec,
            bounded=spec.startswith(("lru", "decay")),
            episodes=episodes,
            solved=0,
            verified=0,
            capped=0,
            total_cycles=0,
            total_checks=0,
            total_maxcck=0,
            peak_learned=0,
            peak_pinned=0,
            evictions=0,
        )
        for episode in range(episodes):
            population = populations[episode % len(populations)]
            problem = population.problem
            init_rng = derive_rng(seed, "soak-init", spec, episode)
            initial = {
                variable: init_rng.choice(
                    problem.csp.domain_of(variable).values
                )
                for variable in sorted(problem.variables)
            }
            metrics = MetricsCollector()
            for agent in population.agents:
                agent.reset_episode(metrics, initial[agent.variable])
            run = SynchronousSimulator(
                problem,
                population.agents,
                network=SynchronousNetwork(),
                max_cycles=max_cycles,
                metrics=metrics,
            ).run()
            if run.solved:
                result.solved += 1
                # Re-verify against the original constraints only: an
                # eviction bug can never be hidden by learned state.
                if problem.is_solution(run.assignment):
                    result.verified += 1
            if run.capped:
                result.capped += 1
            result.total_cycles += run.cycles
            result.total_checks += run.total_checks
            result.total_maxcck += run.maxcck
            # Only the active population's stores changed this episode, so
            # scanning it alone suffices for the running peaks.
            learned, pinned = population.peak_counts()
            if learned > result.peak_learned:
                result.peak_learned = learned
            if pinned > result.peak_pinned:
                result.peak_pinned = pinned
        result.evictions = sum(
            population.evictions() for population in populations
        )
        interner_totals = {"unique": 0, "hits": 0, "misses": 0}
        for population in populations:
            for key, value in population.interner.stats().items():
                interner_totals[key] += value
        result.interner = interner_totals
        report.policies.append(result)
    return report
