"""Figure 2: estimated efficiency of AWC+4thRslv vs DB over message delay.

The paper plots the efficiency model of :mod:`repro.experiments.efficiency`
using the measured (cycle, maxcck) of Table 10 at n = 50. This module runs
those two cells and renders the figure's series plus the crossover delay —
the point past which AWC's learning pays for its computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..algorithms.registry import algorithm_by_name
from ..runtime.random_source import Seed
from .efficiency import CostLine, crossover_delay, format_figure
from .paper import Scale, run_table_cell, scale_from_environment


@dataclass(frozen=True)
class Figure2Result:
    """The two cost lines, the crossover, and the rendered figure."""

    awc: CostLine
    db: CostLine
    crossover: Optional[float]
    delays: Tuple[float, ...]
    text: str


def default_delays(crossover: Optional[float]) -> Tuple[float, ...]:
    """Delay grid covering the crossover comfortably (or 0..100 without one)."""
    upper = 100.0 if crossover is None else max(10.0, 2.5 * crossover)
    steps = 10
    return tuple(round(upper * i / steps, 2) for i in range(steps + 1))


def run_figure2(
    scale: Optional[Scale] = None,
    seed: Seed = 0,
    delays: Optional[Sequence[float]] = None,
) -> Figure2Result:
    """Measure the Figure 2 cells and evaluate the efficiency model."""
    if scale is None:
        scale = scale_from_environment()
    n, num_instances, inits = scale.onesat[0]
    awc_cell = run_table_cell(
        "d3s1",
        n,
        num_instances,
        inits,
        algorithm_by_name("AWC+4thRslv"),
        seed,
        scale.max_cycles,
    )
    db_cell = run_table_cell(
        "d3s1",
        n,
        num_instances,
        inits,
        algorithm_by_name("DB"),
        seed,
        scale.max_cycles,
    )
    awc_line = CostLine("AWC+4thRslv", awc_cell.mean_cycle, awc_cell.mean_maxcck)
    db_line = CostLine("DB", db_cell.mean_cycle, db_cell.mean_maxcck)
    crossing = crossover_delay(awc_line, db_line)
    grid = tuple(delays) if delays is not None else default_delays(crossing)
    text = format_figure(
        [awc_line, db_line],
        grid,
        title=(
            f"Figure 2 (d3s1 n={n}, scale={scale.name}): "
            "total time-units vs communication delay"
        ),
    )
    return Figure2Result(
        awc=awc_line,
        db=db_line,
        crossover=crossing,
        delays=grid,
        text=text,
    )
