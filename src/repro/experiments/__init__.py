"""The paper's experimental harness: trials, cells, tables, Figure 2."""

from .efficiency import (
    CostLine,
    EfficiencyPoint,
    crossover_delay,
    figure_series,
    format_figure,
)
from .figure2 import Figure2Result, run_figure2
from .persistence import (
    load_cell,
    load_cells,
    save_cell,
    save_cells,
)
from .paper import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    QUICK_SCALE,
    Scale,
    TABLE_SPECS,
    coloring_instances,
    instances_for,
    onesat_instances,
    run_table,
    run_table4,
    run_table_cell,
    sat_instances,
    scale_by_name,
    scale_from_environment,
)
from .reference import ALL_TABLES, FIGURE2_CROSSOVERS, TABLE4
from .asynchrony import (
    DEFAULT_NETWORKS,
    NetworkModel,
    delay_response,
    network_model,
    run_asynchrony_table,
)
from .report import ReportResult, ShapeCheck, generate_report
from .sweep import (
    best_bound,
    sweep_problem_size,
    sweep_size_bound,
)
from .validation import (
    DelayPoint,
    ValidationResult,
    validate_delay_model,
)
from .parallel import resolve_workers, run_cell_parallel
from .soak import PolicySoakResult, SoakReport, run_soak
from .runner import (
    CellResult,
    random_initial_assignment,
    run_cell,
    run_trial,
    synchronous_network_factory,
    trial_parameters,
)
from .tables import Table, TableRow

__all__ = [
    "ALL_TABLES",
    "CellResult",
    "CostLine",
    "DEFAULT_NETWORKS",
    "DEFAULT_SCALE",
    "DelayPoint",
    "NetworkModel",
    "ValidationResult",
    "validate_delay_model",
    "best_bound",
    "delay_response",
    "network_model",
    "run_asynchrony_table",
    "sweep_problem_size",
    "sweep_size_bound",
    "EfficiencyPoint",
    "FIGURE2_CROSSOVERS",
    "Figure2Result",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "Scale",
    "TABLE4",
    "TABLE_SPECS",
    "Table",
    "TableRow",
    "coloring_instances",
    "crossover_delay",
    "figure_series",
    "format_figure",
    "generate_report",
    "instances_for",
    "load_cell",
    "load_cells",
    "onesat_instances",
    "random_initial_assignment",
    "resolve_workers",
    "run_cell",
    "run_cell_parallel",
    "run_figure2",
    "run_table",
    "PolicySoakResult",
    "ReportResult",
    "ShapeCheck",
    "SoakReport",
    "run_soak",
    "run_table4",
    "run_table_cell",
    "run_trial",
    "sat_instances",
    "save_cell",
    "save_cells",
    "scale_by_name",
    "scale_from_environment",
    "synchronous_network_factory",
    "trial_parameters",
]
