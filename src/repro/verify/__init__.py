"""The dynamic half of the interleaving verifier: ``repro verify``.

The static half (:mod:`repro.lint.effects` + rules R1/R2/R3) predicts which
message handlers commute; this package *tests* those predictions by driving
:class:`~repro.runtime.events.EventDrivenSimulator` through systematically
chosen delivery orders on a pinned corpus of small instances.

* :mod:`repro.verify.corpus` — the pinned n≤8 coloring instances and the
  algorithms run on them;
* :mod:`repro.verify.explorer` — the DPOR-style schedule explorer: a DFS
  over scheduling decisions recorded by
  :class:`~repro.runtime.events.ScheduledTransport`, pruning reorderings
  the static commutativity matrix proves equivalent;
* :mod:`repro.verify.invariants` — what must hold on *every* explored
  interleaving: outcome agreement, no lost nogoods, termination-detector
  agreement, and bit-identical replay where the engine claims determinism
  (unit latency).

See DESIGN.md ("Interleaving verification") for the equivalence-class
argument and the soundness caveats of the pruning.
"""

from .corpus import PINNED_CORPUS, CorpusEntry, corpus_by_name
from .explorer import (
    EntryReport,
    ExplorationReport,
    ScheduleRun,
    explore_corpus,
    explore_entry,
    repo_commutativity_matrix,
)
from .boundary_audit import (
    AuditReport,
    PayloadRecorder,
    audit_corpus,
    audit_entry,
    static_payload_types,
)
from .invariants import check_determinism, check_run

__all__ = [
    "AuditReport",
    "PINNED_CORPUS",
    "CorpusEntry",
    "EntryReport",
    "ExplorationReport",
    "PayloadRecorder",
    "ScheduleRun",
    "audit_corpus",
    "audit_entry",
    "check_determinism",
    "check_run",
    "corpus_by_name",
    "explore_corpus",
    "explore_entry",
    "repo_commutativity_matrix",
    "static_payload_types",
]
