"""``repro verify`` — the interleaving verifier's command line.

Two modes:

* default (no ``--explore``) — print the statically derived handler-effect
  footprints and commutativity matrix for the repo's agent classes: the
  quick way to see what the explorer will and won't prune, and what rules
  R1/R2/R3 reason about.
* ``--explore`` — run the DPOR schedule explorer over the pinned corpus
  (or a ``--only`` subset), print the per-entry exploration report, and
  exit 1 if any invariant was violated on any explored interleaving.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..core.exceptions import ReproError
from .corpus import corpus_by_name
from .explorer import (
    DEFAULT_BUDGET,
    ExplorationReport,
    explore_corpus,
    repo_commutativity_matrix,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description=(
            "Interleaving verifier: static handler commutativity and "
            "DPOR schedule exploration of the event runtime."
        ),
    )
    parser.add_argument(
        "--explore",
        action="store_true",
        help="run the schedule explorer over the pinned corpus",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="ENTRY",
        help="restrict to this corpus entry (repeatable)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_BUDGET,
        help="max schedules the pruned search runs per entry",
    )
    parser.add_argument(
        "--naive-budget",
        type=int,
        default=None,
        help=(
            "max schedules the naive (unpruned) count runs per entry "
            "(default: 15x the pruned count)"
        ),
    )
    parser.add_argument(
        "--no-prune",
        action="store_true",
        help="disable commutativity pruning (the naive baseline, run live)",
    )
    parser.add_argument(
        "--no-naive",
        action="store_true",
        help="skip the naive count (invariants only; much faster)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    parser.add_argument(
        "--output", default=None, help="also write the JSON report here"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.explore:
        return _print_matrix()
    try:
        entries = corpus_by_name(args.only)
    except ReproError as error:
        print(f"FATAL: {error}", file=sys.stderr)
        return 2
    report = explore_corpus(
        entries,
        budget=args.budget,
        naive_budget=args.naive_budget,
        prune=not args.no_prune,
        count_naive=not args.no_naive,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        json.dump(report.as_dict(), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        _print_text(report)
    return 1 if report.violations else 0


def _print_matrix() -> int:
    from ..lint.effects import format_matrix, handler_effects
    from ..lint.graph import ProjectGraph
    from .explorer import _repo_source_paths

    graph = ProjectGraph.build(_repo_source_paths())
    print(format_matrix(handler_effects(graph)))
    return 0


def _print_text(report: ExplorationReport) -> None:
    for entry in report.entries:
        ratio = f"{entry.prune_ratio:.1f}x"
        if entry.naive_capped:
            ratio = f">={ratio}"
        outcomes = ", ".join(
            f"{label}={count}"
            for label, count in sorted(entry.outcomes.items())
        )
        flags = " (capped)" if entry.explored_capped else ""
        print(
            f"{entry.name:>16}  {entry.algorithm:<16} "
            f"schedules={entry.explored}{flags} prune={ratio} "
            f"branch_points={entry.branch_points} [{outcomes}] "
            f"{entry.seconds:.1f}s"
        )
        for violation in entry.violations:
            print(f"                  VIOLATION: {violation}")
    print(
        f"total: {report.explored} schedules explored "
        f"({report.total_runs} runs incl. naive count), "
        f"prune ratio {report.prune_ratio:.1f}x, "
        f"{report.schedules_per_second:.0f} schedules/sec, "
        f"{len(report.violations)} violation(s)"
    )


if __name__ == "__main__":
    sys.exit(main())
