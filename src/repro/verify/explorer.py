"""The DPOR-style schedule explorer.

Exploration model
-----------------

A run under :class:`~repro.runtime.events.ScheduledTransport` is fully
determined by its *decision sequence*: at each epoch the transport exposes
the enabled set (per-channel FIFO heads, deterministically sorted) and an
index picks the delivery. A **schedule** here is a finite prefix of such
indices — beyond the prefix the default head (index 0) is taken, so every
prefix extends to exactly one complete run.

The explorer is a depth-first search over prefixes. After running a prefix
it inspects the decisions taken *at or past* the prefix (decisions before
it were already branched by an ancestor) and, for each branching choice
point, pushes sibling prefixes that pick a different enabled delivery.
Unpruned, this enumerates every interleaving of channel-head deliveries —
the ``--no-prune`` baseline the prune ratio is measured against.

Pruning via the static commutativity matrix
-------------------------------------------

Two enabled deliveries are *independent* when executing them in either
order provably reaches the same state:

* different recipients — handler effects are confined to the recipient's
  state (rule A2 enforces the agent/transport separation statically), so
  cross-agent deliveries commute;
* same recipient — commute iff the handler-effect footprints
  (:func:`repro.lint.effects.commutativity_matrix`) do not conflict for
  that (agent class, message type, message type) triple. An (unknown
  class, unknown type) pair is conservatively *dependent*.

At a branching choice point the explorer only explores siblings inside the
*dependency group* of the default delivery — the connected component of
the dependency relation over the enabled set. Reordering against anything
outside the component commutes step-by-step with the whole component, so
some explored schedule already covers that ordering's equivalence class.

This is a persistent-set style approximation, not a full Godefroid DPOR:
early termination (an agent solving the instance before draining mail) can
in principle hide a suffix that only a pruned ordering reaches. The
verifier trades that corner for tractable corpus exploration; the racing
handlers it hunts are same-recipient conflicts, which are never pruned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.problem import AgentId, DisCSP
from ..lint.effects import (
    CommutativityMatrix,
    commutativity_matrix,
    handler_effects,
)
from ..lint.graph import ProjectGraph
from ..runtime.agent import SimulatedAgent
from ..runtime.events import (
    Delivery,
    EventDrivenSimulator,
    ScheduledTransport,
)
from ..runtime.simulator import RunResult
from .corpus import PINNED_CORPUS, CorpusEntry
from .invariants import check_determinism, check_run

#: Default cap on schedules the DPOR search runs per entry; the pinned
#: corpus is sized so its trees close well under this.
DEFAULT_BUDGET = 2000

#: Naive counting floor — when no explicit budget is given, the naive walk
#: is capped at ``max(NAIVE_FLOOR, NAIVE_FACTOR * explored)`` so a capped
#: count still lower-bounds the prune ratio at NAIVE_FACTOR.
NAIVE_FLOOR = 2000
NAIVE_FACTOR = 15


@dataclass(frozen=True)
class ScheduleRun:
    """One executed interleaving of a corpus entry."""

    schedule: Tuple[int, ...]
    choices: Tuple[int, ...]
    result: RunResult
    violations: Tuple[str, ...]


@dataclass
class EntryReport:
    """Exploration outcome for one corpus entry."""

    name: str
    algorithm: str
    explored: int = 0
    explored_capped: bool = False
    naive: int = 0
    naive_counted: bool = False
    naive_capped: bool = False
    branch_points: int = 0
    max_enabled: int = 0
    violations: List[str] = field(default_factory=list)
    outcomes: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def prune_ratio(self) -> float:
        """Naive schedules per explored schedule (>= 1.0).

        A lower bound whenever ``naive_capped`` — the naive walk stopped
        counting at its budget, not at the end of its tree.
        """
        if not self.naive_counted or self.explored == 0:
            return 1.0
        return self.naive / self.explored

    @property
    def total_runs(self) -> int:
        """Simulations actually executed (the naive walk runs them too)."""
        return self.explored + (self.naive if self.naive_counted else 0)

    @property
    def schedules_per_second(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.total_runs / self.seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "algorithm": self.algorithm,
            "explored": self.explored,
            "explored_capped": self.explored_capped,
            "naive": self.naive,
            "naive_counted": self.naive_counted,
            "naive_capped": self.naive_capped,
            "branch_points": self.branch_points,
            "max_enabled": self.max_enabled,
            "prune_ratio": round(self.prune_ratio, 2),
            "schedules_per_second": round(self.schedules_per_second, 1),
            "outcomes": dict(self.outcomes),
            "violations": list(self.violations),
            "seconds": round(self.seconds, 3),
        }


@dataclass
class ExplorationReport:
    """The whole corpus run — what ``repro verify --explore`` prints."""

    entries: List[EntryReport] = field(default_factory=list)

    @property
    def explored(self) -> int:
        return sum(entry.explored for entry in self.entries)

    @property
    def naive(self) -> int:
        return sum(entry.naive for entry in self.entries)

    @property
    def total_runs(self) -> int:
        return sum(entry.total_runs for entry in self.entries)

    @property
    def prune_ratio(self) -> float:
        counted = [entry for entry in self.entries if entry.naive_counted]
        explored = sum(entry.explored for entry in counted)
        if explored == 0:
            return 1.0
        return sum(entry.naive for entry in counted) / explored

    @property
    def violations(self) -> List[str]:
        found: List[str] = []
        for entry in self.entries:
            found.extend(
                f"[{entry.name}] {violation}"
                for violation in entry.violations
            )
        return found

    @property
    def seconds(self) -> float:
        return sum(entry.seconds for entry in self.entries)

    @property
    def schedules_per_second(self) -> float:
        seconds = self.seconds
        if seconds <= 0.0:
            return 0.0
        return self.total_runs / seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "explored": self.explored,
            "naive": self.naive,
            "prune_ratio": round(self.prune_ratio, 2),
            "schedules_per_second": round(self.schedules_per_second, 1),
            "violations": self.violations,
            "entries": [entry.as_dict() for entry in self.entries],
        }


# -- the static matrix, built once per process ---------------------------------


def _repo_source_paths() -> List[str]:
    """Every python file of the installed ``repro`` package."""
    root = Path(__file__).resolve().parents[1]
    return sorted(str(path) for path in root.rglob("*.py"))


def repo_commutativity_matrix() -> CommutativityMatrix:
    """The commutativity matrix of the repo's own agent classes.

    Parses ``src/repro`` into a fresh
    :class:`~repro.lint.graph.ProjectGraph` and runs the handler-effect
    pass — the same analysis that powers lint rule R2, so the explorer
    prunes with exactly what the static layer proved.
    """
    graph = ProjectGraph.build(_repo_source_paths())
    return commutativity_matrix(handler_effects(graph))


def matrix_for_agents(
    agents: Sequence[SimulatedAgent], matrix: CommutativityMatrix
) -> Tuple[Dict[AgentId, str], CommutativityMatrix]:
    """Pair each agent id with its class name for matrix lookups."""
    classes = {agent.id: type(agent).__name__ for agent in agents}
    return classes, matrix


# -- dependency reasoning -------------------------------------------------------


def _dependent(
    left: Delivery,
    right: Delivery,
    classes: Dict[AgentId, str],
    matrix: CommutativityMatrix,
) -> bool:
    """Whether delivery order can matter (conservative on unknowns)."""
    if left.recipient != right.recipient:
        return False
    cls = classes.get(left.recipient)
    if cls is None:
        return True
    key = (
        cls,
        type(left.message).__name__,
        type(right.message).__name__,
    )
    commutes = matrix.get(key)
    if commutes is None:
        return True
    return not commutes


def _dependency_group(
    enabled: Tuple[Delivery, ...],
    chosen: int,
    classes: Dict[AgentId, str],
    matrix: CommutativityMatrix,
) -> Set[int]:
    """Indices in the chosen delivery's dependency component."""
    group: Set[int] = {chosen}
    frontier = [chosen]
    while frontier:
        current = frontier.pop()
        for index, candidate in enumerate(enabled):
            if index in group:
                continue
            if _dependent(enabled[current], candidate, classes, matrix):
                group.add(index)
                frontier.append(index)
    return group


# -- running one schedule -------------------------------------------------------


def run_schedule(
    problem: DisCSP,
    agents: Sequence[SimulatedAgent],
    schedule: Tuple[int, ...],
    max_epochs: int,
) -> Tuple[ScheduleRun, ScheduledTransport]:
    """Execute one interleaving and check its per-run invariants."""
    transport = ScheduledTransport(schedule=schedule)
    simulator = EventDrivenSimulator(
        problem, agents, transport=transport, max_epochs=max_epochs
    )
    result = simulator.run()
    violations = check_run(problem, agents, result, transport.delivery_log)
    run = ScheduleRun(
        schedule=schedule,
        choices=transport.choices_taken,
        result=result,
        violations=tuple(violations),
    )
    return run, transport


# -- exploring one entry --------------------------------------------------------


def explore_entry(
    entry: CorpusEntry,
    matrix: Optional[CommutativityMatrix] = None,
    budget: int = DEFAULT_BUDGET,
    naive_budget: Optional[int] = None,
    prune: bool = True,
    count_naive: bool = True,
) -> EntryReport:
    """DFS over schedules of *entry*, checking invariants on each run."""
    if matrix is None:
        matrix = repo_commutativity_matrix()
    report = EntryReport(name=entry.name, algorithm=entry.algorithm)
    started = time.perf_counter()
    classes = {
        agent.id: type(agent).__name__ for agent in entry.build()[1]
    }
    baseline_outcome: Optional[Tuple[bool, bool]] = None

    stack: List[Tuple[int, ...]] = [()]
    seen: Set[Tuple[int, ...]] = {()}
    while stack:
        if report.explored >= budget:
            report.explored_capped = True
            break
        prefix = stack.pop()
        problem, agents = entry.build()
        run, transport = run_schedule(
            problem, agents, prefix, entry.max_epochs
        )
        report.explored += 1
        report.violations.extend(
            f"schedule {prefix}: {violation}" for violation in run.violations
        )
        label = _outcome_label(run.result)
        report.outcomes[label] = report.outcomes.get(label, 0) + 1
        # Capped runs are inconclusive — the epoch budget ran out, which
        # says nothing about where the schedule would have converged — so
        # outcome agreement is asserted across conclusive runs only.
        if not run.result.capped:
            outcome = (run.result.solved, run.result.unsolvable)
            if baseline_outcome is None:
                baseline_outcome = outcome
            elif outcome != baseline_outcome:
                report.violations.append(
                    f"schedule {prefix}: outcome {label} diverges from "
                    "the first conclusive schedule's "
                    f"{_outcome_pair_label(baseline_outcome)}"
                )
        for index, point in enumerate(transport.choice_log):
            if index < len(prefix) or not point.branching:
                continue
            report.branch_points += 1
            report.max_enabled = max(report.max_enabled, len(point.enabled))
            if prune:
                siblings = _dependency_group(
                    point.enabled, point.chosen, classes, matrix
                )
                siblings.discard(point.chosen)
            else:
                siblings = {
                    sibling
                    for sibling in range(len(point.enabled))
                    if sibling != point.chosen
                }
            base = run.choices[:index]
            for sibling in sorted(siblings):
                candidate = base + (sibling,)
                if candidate not in seen:
                    seen.add(candidate)
                    stack.append(candidate)

    # Determinism is orthogonal to schedule choice: check it once per entry.
    report.violations.extend(check_determinism(entry))

    if count_naive:
        cap = (
            naive_budget
            if naive_budget is not None
            else max(NAIVE_FLOOR, NAIVE_FACTOR * report.explored)
        )
        naive, capped = _naive_count(entry, cap)
        report.naive, report.naive_capped = naive, capped
        report.naive_counted = True
    report.seconds = time.perf_counter() - started
    return report


def _naive_count(entry: CorpusEntry, budget: int) -> Tuple[int, bool]:
    """Count the unpruned schedule tree (the denominator-free baseline).

    Walks the same DFS *without* running the agents twice per node: each
    schedule still requires one run (the tree's shape depends on execution),
    so the count is capped by *budget* — a capped count understates the
    naive tree, making the reported prune ratio a lower bound.
    """
    count = 0
    stack: List[Tuple[int, ...]] = [()]
    seen: Set[Tuple[int, ...]] = {()}
    while stack:
        if count >= budget:
            return count, True
        prefix = stack.pop()
        problem, agents = entry.build()
        run, transport = run_schedule(
            problem, agents, prefix, entry.max_epochs
        )
        count += 1
        for index, point in enumerate(transport.choice_log):
            if index < len(prefix) or not point.branching:
                continue
            base = run.choices[:index]
            for sibling in range(len(point.enabled)):
                if sibling == point.chosen:
                    continue
                candidate = base + (sibling,)
                if candidate not in seen:
                    seen.add(candidate)
                    stack.append(candidate)
    return count, False


def _outcome_label(result: RunResult) -> str:
    if result.solved:
        return "solved"
    if result.unsolvable:
        return "unsolvable"
    if result.quiescent:
        return "quiescent"
    return "capped"


def _outcome_pair_label(outcome: Tuple[bool, bool]) -> str:
    solved, unsolvable = outcome
    if solved:
        return "solved"
    if unsolvable:
        return "unsolvable"
    return "unsolved"


# -- the corpus ----------------------------------------------------------------


def explore_corpus(
    entries: Sequence[CorpusEntry] = PINNED_CORPUS,
    matrix: Optional[CommutativityMatrix] = None,
    budget: int = DEFAULT_BUDGET,
    naive_budget: Optional[int] = None,
    prune: bool = True,
    count_naive: bool = True,
) -> ExplorationReport:
    """Explore every corpus entry with a shared static matrix."""
    if matrix is None:
        matrix = repo_commutativity_matrix()
    report = ExplorationReport()
    for entry in entries:
        report.entries.append(
            explore_entry(
                entry,
                matrix=matrix,
                budget=budget,
                naive_budget=naive_budget,
                prune=prune,
                count_naive=count_naive,
            )
        )
    return report
