"""``python -m repro.verify`` — the interleaving verifier."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
