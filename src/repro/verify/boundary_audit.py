"""Dynamic cross-validation of the S1 serialization-closure analysis.

S1 (:mod:`repro.lint.rules_dist`) statically claims that everything
crossing a process boundary — in particular every message payload — is
free of unpicklable values. This module is the runtime half of that
claim, in the same spirit as ``--check-trace`` for the event engine: it
replays the verifier's pinned corpus (:data:`~repro.verify.corpus.
PINNED_CORPUS`) with an observing tracer, pickle-round-trips **every
payload actually sent**, and checks the observation against the static
analysis two ways:

* *superset* — every message type observed on the wire is in
  :func:`~repro.lint.boundary.transported_payload_types`' static closure
  (the analysis saw every crossing the runtime exercised);
* *agreement* — on an S1-clean tree no observed payload may fail the
  pickle round-trip (a failure would be a hazard the static closure
  missed, and fails CI loudly rather than on a remote shard).

The corpus is pinned (instance seed, algorithm, agent seed), so the set
of payloads audited is reproducible run-to-run and the guarantee is not
probabilistic hand-waving about "typical" traffic.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence, Set

from ..algorithms.registry import algorithm_by_name
from ..experiments.runner import run_trial
from ..runtime.messages import Message
from .corpus import PINNED_CORPUS, CorpusEntry


class PayloadRecorder:
    """A tracer that keeps every payload routed during a trial."""

    def __init__(self) -> None:
        self.payloads: List[Message] = []

    def on_message(self, cycle, sender, recipient, message) -> None:
        self.payloads.append(message)

    def on_cycle_end(self, cycle, assignment) -> None:
        pass


@dataclass(frozen=True)
class RoundTripFailure:
    """One payload the runtime sent that does not survive pickling."""

    entry: str
    message_type: str
    error: str


@dataclass
class AuditReport:
    """What the pinned-corpus payload audit observed."""

    entries_run: int = 0
    payloads_sent: int = 0
    observed_types: Set[str] = field(default_factory=set)
    failures: List[RoundTripFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _round_trip(entry_name: str, message: Message) -> RoundTripFailure | None:
    try:
        clone = pickle.loads(pickle.dumps(message))
    except Exception as error:  # noqa: BLE001 — any failure is the finding
        return RoundTripFailure(
            entry_name, type(message).__name__, repr(error)
        )
    if clone != message:
        return RoundTripFailure(
            entry_name,
            type(message).__name__,
            "round-trip clone compares unequal to the original",
        )
    return None


def audit_entry(entry: CorpusEntry) -> AuditReport:
    """Run one pinned trial, round-tripping every payload it sends."""
    recorder = PayloadRecorder()
    run_trial(
        entry.problem(),
        algorithm_by_name(entry.algorithm),
        entry.agent_seed,
        max_cycles=entry.max_epochs,
        tracer=recorder,
    )
    report = AuditReport(entries_run=1, payloads_sent=len(recorder.payloads))
    for message in recorder.payloads:
        report.observed_types.add(type(message).__name__)
        failure = _round_trip(entry.name, message)
        if failure is not None:
            report.failures.append(failure)
    return report


def audit_corpus(
    entries: Sequence[CorpusEntry] = PINNED_CORPUS,
) -> AuditReport:
    """Audit every pinned entry; reports are merged into one."""
    merged = AuditReport()
    for entry in entries:
        report = audit_entry(entry)
        merged.entries_run += report.entries_run
        merged.payloads_sent += report.payloads_sent
        merged.observed_types |= report.observed_types
        merged.failures.extend(report.failures)
    return merged


def static_payload_types(source_root: str = "src/") -> FrozenSet[str]:
    """S1's static view: every type name the analysis sees crossing a wire.

    Built the same way the lint engine builds its graph (one parse of the
    tree under *source_root*), then reduced to the payload-type closure of
    :mod:`repro.lint.boundary`. The audit asserts this is a superset of
    what the corpus actually put on the wire.
    """
    from ..lint.boundary import transported_payload_types
    from ..lint.engine import DEFAULT_EXCLUDES, iter_python_files
    from ..lint.graph import ProjectGraph

    files = iter_python_files([source_root], excludes=list(DEFAULT_EXCLUDES))
    graph = ProjectGraph.build(files)
    return frozenset(transported_payload_types(graph))


__all__ = [
    "AuditReport",
    "PayloadRecorder",
    "RoundTripFailure",
    "audit_corpus",
    "audit_entry",
    "static_payload_types",
]
