"""What must hold on every explored interleaving.

The explorer's job is to *vary* the delivery order; these checks pin down
what must **not** vary with it:

* **Detector agreement** — the engine's (incremental) termination decision
  must match a from-scratch :class:`GlobalSolutionDetector` re-check of the
  final assignment. A divergence means the incremental detector's
  change-tracking was confused by the schedule.
* **No lost nogoods** — every delivered ``NogoodMessage`` whose learning
  policy says "record" must actually be present in the recipient's store at
  the end of the run. A reordering that drops a nogood silently breaks the
  completeness argument of the learning algorithms.
* **Outcome agreement** (cross-run, checked by the explorer) — every
  schedule of the same pinned entry must reach the same solved/unsolvable
  verdict; solvable instances must not become unsolvable under reordering.
* **Determinism** (:func:`check_determinism`) — where the engine *claims*
  bit-reproducibility (the default unit-latency transport), two fresh runs
  must agree on every reproducibility-contract field of the RunResult.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..core.store import NogoodStore
from ..core.problem import DisCSP
from ..runtime.agent import SimulatedAgent
from ..runtime.events import (
    Delivery,
    EventDrivenSimulator,
    InProcessTransport,
)
from ..runtime.messages import NogoodMessage
from ..runtime.simulator import RunResult
from ..runtime.termination import GlobalSolutionDetector
from .corpus import CorpusEntry

#: RunResult fields covered by the unit-latency determinism contract
#: (wall_time/sim_time are wall-clock and excluded by design).
DETERMINISM_FIELDS = (
    "solved",
    "unsolvable",
    "capped",
    "quiescent",
    "cycles",
    "maxcck",
    "total_checks",
    "messages_sent",
    "generated_nogoods",
    "redundant_generations",
    "assignment",
    "logical_time",
)


def check_run(
    problem: DisCSP,
    agents: Sequence[SimulatedAgent],
    result: RunResult,
    deliveries: Iterable[Delivery],
) -> List[str]:
    """Per-schedule invariants; returns human-readable violations."""
    violations: List[str] = []
    recheck = GlobalSolutionDetector(problem).is_solution(result.assignment)
    if recheck != result.solved:
        violations.append(
            "detector disagreement: full re-check says "
            f"solved={recheck} but the run reported solved={result.solved}"
        )
    by_id = {agent.id: agent for agent in agents}
    for delivery in deliveries:
        message = delivery.message
        if not isinstance(message, NogoodMessage):
            continue
        recipient = by_id[delivery.recipient]
        stores = _stores_of(recipient)
        if not stores:
            continue
        if not _should_record(recipient, message):
            continue
        if not any(message.nogood in store for store in stores):
            violations.append(
                f"lost nogood: {message.nogood} was delivered to agent "
                f"{delivery.recipient} at t={delivery.time} (recording "
                "policy accepts it) but is absent from the store after "
                "the run"
            )
    return violations


def check_determinism(entry: CorpusEntry) -> List[str]:
    """Unit-latency bit-reproducibility: two fresh runs, identical results."""
    first = _unit_latency_result(entry)
    second = _unit_latency_result(entry)
    violations: List[str] = []
    for field in DETERMINISM_FIELDS:
        left, right = getattr(first, field), getattr(second, field)
        if left != right:
            violations.append(
                f"determinism violation on {entry.name}: RunResult."
                f"{field} differs between identical unit-latency runs "
                f"({left!r} != {right!r})"
            )
    return violations


def _unit_latency_result(entry: CorpusEntry) -> RunResult:
    problem, agents = entry.build()
    simulator = EventDrivenSimulator(
        problem,
        agents,
        transport=InProcessTransport(),
        max_epochs=entry.max_epochs,
    )
    return simulator.run()


def _stores_of(agent: SimulatedAgent) -> Tuple[NogoodStore, ...]:
    """The nogood stores an agent ends the run with (none for DB)."""
    store = getattr(agent, "store", None)
    if store is not None:
        return (store,)
    handlers = getattr(agent, "_handlers", None)
    if handlers is not None:  # the multi-variable agent: one per variable
        return tuple(
            handler.store for _, handler in sorted(handlers.items())
        )
    return ()


def _should_record(agent: SimulatedAgent, message: NogoodMessage) -> bool:
    """Whether the agent's learning policy records this received nogood.

    ABT's ``learning`` attribute is a mode string (always records); AWC's
    is a :class:`~repro.learning.LearningMethod` with ``should_record``.
    The multi-variable agent delegates to its handlers, which share one
    learning method — probe the first.
    """
    learning = getattr(agent, "learning", None)
    if learning is None:
        handlers = getattr(agent, "_handlers", None)
        if handlers:
            learning = next(iter(handlers.values())).learning
    should = getattr(learning, "should_record", None)
    if should is None:
        return True
    return bool(should(message.nogood))
