"""The pinned instance corpus the explorer runs on.

Schedule exploration is exponential in the number of racing messages, so
the corpus is deliberately tiny — coloring instances with at most 8 nodes,
the same family as the paper's benchmarks, at the paper's edge density.
What makes the corpus useful is not size but *pinning*: every entry fixes
(instance seed, algorithm, agent seed), so the exploration tree is
reproducible run-to-run and the CI job explores exactly the corpus that the
committed BENCH_verify.json numbers describe.

Entries cover every agent family the handler-effect analysis models:
single-variable AWC (with and without learning), ABT, distributed
breakout, and the multi-variable AWC agent (which exercises wakeups —
internal carryover work — on top of deliveries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..algorithms.registry import algorithm_by_name
from ..core.exceptions import ModelError
from ..core.problem import DisCSP
from ..problems.coloring import random_coloring_instance
from ..runtime.agent import SimulatedAgent
from ..runtime.metrics import MetricsCollector
from ..runtime.random_source import Seed

#: The largest instance the corpus may contain (ISSUE: n <= 8).
MAX_NODES = 8


@dataclass(frozen=True)
class CorpusEntry:
    """One pinned (instance, algorithm) cell of the verify corpus."""

    name: str
    algorithm: str
    num_nodes: int
    num_colors: int = 3
    instance_seed: Seed = 0
    agent_seed: Seed = 0
    max_epochs: int = 600
    #: Pinned edge count — the paper's 2.7 edges/node over-constrains
    #: graphs this small, so every entry names its count explicitly.
    num_edges: int | None = None
    #: Re-own the variables onto this many agents (round-robin) — the
    #: multi-variable workload. None keeps one variable per agent.
    num_agents: int | None = None

    def __post_init__(self) -> None:
        if self.num_nodes > MAX_NODES:
            raise ModelError(
                f"corpus entry {self.name!r} has {self.num_nodes} nodes; "
                f"the verify corpus is pinned to n <= {MAX_NODES}"
            )

    def problem(self) -> DisCSP:
        instance = random_coloring_instance(
            self.num_nodes,
            num_colors=self.num_colors,
            seed=self.instance_seed,
            num_edges=self.num_edges,
        )
        if self.num_agents is None:
            return instance.to_discsp()
        csp = instance.to_csp()
        owner = {
            variable: variable % self.num_agents
            for variable in csp.variables
        }
        return DisCSP.from_csp(csp, owner)

    def build(self) -> Tuple[DisCSP, Sequence[SimulatedAgent]]:
        """Fresh problem + agents; identical on every call (pinned seeds)."""
        problem = self.problem()
        spec = algorithm_by_name(self.algorithm)
        agents = spec.build(problem, MetricsCollector(), self.agent_seed, None)
        return problem, agents


#: The corpus CI explores and BENCH_verify.json measures. Names are stable
#: identifiers (used by ``repro verify --only``); append entries rather
#: than renaming.
#: Seeds are pinned to instances whose full DPOR tree closes within a few
#: hundred schedules (measured), so default explorations terminate rather
#: than truncate and the prune ratio compares two *complete* trees
#: wherever the naive tree fits its budget too.
PINNED_CORPUS: Tuple[CorpusEntry, ...] = (
    CorpusEntry("awc-rslv-n4", "AWC+Rslv", 4, instance_seed=11, num_edges=5),
    CorpusEntry(
        "awc-norec-n4", "AWC+Rslv/norec", 4, instance_seed=5, num_edges=5
    ),
    CorpusEntry("awc-no-n4", "AWC+No", 4, instance_seed=2, num_edges=5),
    CorpusEntry("abt-n6", "ABT", 6, instance_seed=3, num_edges=9),
    CorpusEntry(
        "db-n4", "DB", 4, instance_seed=11, num_edges=4, max_epochs=900
    ),
    CorpusEntry(
        "multi-awc-n5",
        "MultiAWC+Rslv",
        5,
        instance_seed=2,
        num_edges=7,
        num_agents=3,
    ),
)


def corpus_by_name(names: Sequence[str]) -> Tuple[CorpusEntry, ...]:
    """Resolve ``--only`` selections; unknown names are an error."""
    if not names:
        return PINNED_CORPUS
    by_name: Dict[str, CorpusEntry] = {
        entry.name: entry for entry in PINNED_CORPUS
    }
    missing = [name for name in names if name not in by_name]
    if missing:
        raise ModelError(
            f"unknown corpus entries {missing}; "
            f"known: {sorted(by_name)}"
        )
    return tuple(by_name[name] for name in names)
