"""The learning-method interface that AWC is parameterized over.

The paper's central experimental axis is *which nogood an agent makes at a
deadend and who records it*. We express each method as a stateless strategy
object with two responsibilities:

* :meth:`LearningMethod.make_nogood` — called by the deadend agent to
  construct the nogood it will announce (or None to announce nothing);
* :meth:`LearningMethod.should_record` — called by each *recipient* to
  decide whether the announced nogood enters its store (this is where size
  bounds and the Table 4 ``norec`` variant live).

Strategies are stateless so a single instance is safely shared by all agents
of a run; per-agent state (like AWC's "previously generated nogood") stays in
the agent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..core.assignment import AgentView
from ..core.exceptions import ModelError
from ..core.nogood import Nogood
from ..core.store import NogoodStore
from ..core.variables import Domain, VariableId


@dataclass(frozen=True)
class DeadendContext:
    """Everything a learning method may consult at a deadend.

    The context is a read-only window onto the deadend agent: its variable,
    domain and priority, its current view of other variables, and its nogood
    store (whose check counter the method must use for every violation test,
    so the method's cost lands in ``maxcck`` exactly like the paper's).
    """

    variable: VariableId
    domain: Domain
    priority: int
    view: AgentView
    store: NogoodStore


class LearningMethod(ABC):
    """A nogood-learning strategy plugged into AWC."""

    #: Short name used in experiment tables ("Rslv", "Mcs", "No", "3rdRslv"...).
    name: str = "?"

    @abstractmethod
    def make_nogood(self, context: DeadendContext) -> Optional[Nogood]:
        """Build the nogood to announce at a deadend.

        Returns None when the method announces nothing (the paper's "no
        learning": the deadend is broken by the priority raise alone). The
        returned nogood never mentions the deadend variable itself; the
        *empty* nogood is a valid return and proves the problem unsolvable.
        """

    def should_record(self, nogood: Nogood) -> bool:
        """Whether a recipient should add *nogood* to its store.

        The default records everything, which is the complete-AWC behaviour.

        This policy also gates AWC's "same nogood as before → do nothing"
        completeness rule: that rule is only sound when the announced nogood
        is actually recorded somewhere (the recorded copy eventually forces
        another agent to move). For dropped nogoods — size bounds, the
        Table 4 ``norec`` variant — AWC instead always breaks the deadend by
        raising its priority (the paper's footnote 1), otherwise the system
        can freeze.
        """
        del nogood
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


def ensure_deadend_nogood(context: DeadendContext, nogood: Nogood) -> Nogood:
    """Validate an internally constructed nogood before announcing it.

    A learned nogood must be a subset of the agent's view and must not
    mention the agent's own variable; violations indicate a bug in the
    learning method, not in the caller, so this raises ``ModelError``.
    """
    if nogood.mentions(context.variable):
        raise ModelError(
            f"learned nogood {nogood!r} mentions the deadend variable "
            f"x{context.variable}"
        )
    for variable, value in nogood.pairs:
        if context.view.value_of(variable) != value:
            raise ModelError(
                f"learned nogood {nogood!r} disagrees with the agent view "
                f"on x{variable}"
            )
    return nogood
