"""Resolvent-based learning — the paper's contribution (Section 3).

At a deadend, every value of the agent's variable violates some higher
nogood. The method:

1. for each value ``d`` in the domain, collects the higher nogoods violated
   under the current view with ``x_i = d``;
2. selects one of them — the **smallest**, breaking ties by the **highest
   nogood priority** (the paper's rationale: a highly-prioritized variable
   has made a strong commitment, so the agent holding it should be told as
   early as possible if its value is wrong);
3. unions the selected nogoods and removes every pair mentioning ``x_i``.

The result is "virtually equivalent to a resolvent in propositional logic":
each selected nogood is the clause forbidding one value, and resolving them
all on ``x_i`` leaves a constraint purely over other agents' variables.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.exceptions import ModelError
from ..core.nogood import Nogood, union_nogoods
from .base import DeadendContext, LearningMethod, ensure_deadend_nogood


def stable_nogood_key(nogood: Nogood) -> Tuple[Tuple[int, str], ...]:
    """A deterministic, type-agnostic ordering key for nogoods.

    Used as the *final* tie-break after the paper's two criteria (size, then
    nogood priority) are exhausted, so that runs are reproducible regardless
    of store iteration order.
    """
    return tuple(sorted((var, repr(val)) for var, val in nogood.pairs))


#: Selection policies for the per-value nogood (ablation axis):
#: "paper" — smallest, ties by highest priority (Section 3.1's rule);
#: "size-only" — smallest, ignoring priorities;
#: "largest" — the anti-rule, used to demonstrate why small nogoods matter.
TIE_BREAKS = ("paper", "size-only", "largest")


def select_nogood_for_value(
    context: DeadendContext,
    violated: List[Nogood],
    tie_break: str = "paper",
) -> Nogood:
    """Pick one nogood among those prohibiting a value.

    Under the paper's rule: smallest first; among equally small ones, the
    one with the highest nogood priority (under the priorities in the
    agent's view); any residual tie is broken by :func:`stable_nogood_key`
    so runs are reproducible regardless of store iteration order.
    """
    if not violated:
        raise ModelError(
            "select_nogood_for_value called with no violated nogoods; "
            "the caller is not actually at a deadend"
        )
    if tie_break not in TIE_BREAKS:
        raise ModelError(
            f"unknown tie_break {tie_break!r}; choose from {TIE_BREAKS}"
        )
    prefer_small = tie_break != "largest"
    use_priority = tie_break == "paper"
    best = violated[0]
    best_priority = context.store.priority_key_of(best, context.view)
    for candidate in violated[1:]:
        size_delta = len(candidate) - len(best)
        if not prefer_small:
            size_delta = -size_delta
        if size_delta > 0:
            continue
        candidate_priority = context.store.priority_key_of(
            candidate, context.view
        )
        if size_delta < 0:
            better = True
        elif use_priority and candidate_priority != best_priority:
            better = candidate_priority > best_priority
        else:
            better = stable_nogood_key(candidate) < stable_nogood_key(best)
        if better:
            best = candidate
            best_priority = candidate_priority
    return best


def resolvent_nogood(
    context: DeadendContext, tie_break: str = "paper"
) -> Nogood:
    """Construct the resolvent nogood for a deadend (steps 1–3 above).

    Every violation test performed while collecting the per-value nogoods is
    counted through the store's check counter, so the method's cost is part
    of ``maxcck`` exactly as in the paper.
    """
    selected: List[Nogood] = []
    for value in context.domain:
        violated = context.store.violated_higher(
            context.view, value, context.priority
        )
        if not violated:
            raise ModelError(
                f"value {value!r} of x{context.variable} violates no higher "
                "nogood; resolvent learning requires an actual deadend"
            )
        selected.append(
            select_nogood_for_value(context, violated, tie_break)
        )
    # Strip the deadend variable from each selected nogood before taking the
    # union: the selected nogoods bind x_i to *different* values (one per
    # domain value), which is precisely what resolving on x_i removes.
    resolvent = union_nogoods(
        nogood.without(context.variable) for nogood in selected
    )
    return ensure_deadend_nogood(context, resolvent)


class ResolventLearning(LearningMethod):
    """The paper's ``Rslv``: unrestricted resolvent-based learning.

    *tie_break* selects the per-value nogood policy (see
    :data:`TIE_BREAKS`); anything but the default ``"paper"`` is an
    ablation variant, named accordingly in experiment tables.
    """

    name = "Rslv"

    def __init__(self, tie_break: str = "paper") -> None:
        if tie_break not in TIE_BREAKS:
            raise ModelError(
                f"unknown tie_break {tie_break!r}; choose from {TIE_BREAKS}"
            )
        self.tie_break = tie_break
        if tie_break != "paper":
            self.name = f"Rslv[{tie_break}]"

    def make_nogood(self, context: DeadendContext) -> Optional[Nogood]:
        return resolvent_nogood(context, self.tie_break)
