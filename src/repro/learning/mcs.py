"""Mcs-based learning: minimize the nogood down to a minimal conflict set.

The paper describes the method (after Mammen & Lesser) as: "make a nogood
with the resolvent-based learning and test whether a subset of the nogood is
a conflict set or not from larger subsets to smaller subsets". A *conflict
set* is a subset of the agent view under which no value of the deadend
variable is consistent with the higher nogoods.

We implement the larger-to-smaller walk as deletion-based minimization: try
dropping each element in turn and keep the drop whenever the remainder is
still a conflict set. This visits subsets in strictly decreasing size and
ends at a conflict set none of whose proper subsets obtained by a single
further deletion is conflicting — i.e. a *minimal* conflict set. (Finding a
true minimum-cardinality set is NP-hard; the paper's point is precisely that
even this subset search is expensive, which our check counting reproduces.)

Cost model: every "does this nogood prohibit value d under subset S?" test
counts one nogood check, which is why Mcs shows a much larger ``maxcck``
than Rslv in Tables 1–3.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.nogood import Nogood
from ..core.variables import Value, VariableId
from .base import DeadendContext, LearningMethod, ensure_deadend_nogood
from .resolvent import resolvent_nogood


def _prohibited_under(
    context: DeadendContext,
    subset: Dict[VariableId, Value],
    value: Value,
) -> bool:
    """True if some higher nogood forbids ``x_i = value`` using only *subset*.

    A nogood qualifies when all its non-own pairs are contained in *subset*
    (values included) and its own-variable pair matches *value*. Each nogood
    examined costs one check.
    """
    store = context.store
    for nogood in store.for_value(value):
        if not store.is_higher(nogood, context.view, context.priority):
            continue
        store.counter.bump()
        applicable = True
        for variable, bound in nogood.pairs:
            if variable == context.variable:
                continue
            if subset.get(variable, _MISSING) != bound:
                applicable = False
                break
        if applicable:
            return True
    return False


_MISSING = object()


def is_conflict_set(context: DeadendContext, subset: Nogood) -> bool:
    """True if *subset* (pairs consistent with the view) is a conflict set."""
    bound = {variable: value for variable, value in subset.pairs}
    return all(
        _prohibited_under(context, bound, value) for value in context.domain
    )


def minimize_conflict_set(context: DeadendContext, start: Nogood) -> Nogood:
    """Shrink *start* to a minimal conflict set by deletion.

    Elements are tried for removal lowest-ranked variable first (under the
    view's priorities), so that — like the resolvent tie-break — the
    surviving set prefers to keep highly prioritized variables, which are
    the ones worth notifying early.
    """
    ordered = sorted(
        start.pairs,
        key=lambda pair: (
            context.view.priority_of(pair[0]),
            -pair[0],
        ),
    )
    current = start
    for pair in ordered:
        if len(current) <= 1:
            break
        candidate = Nogood(p for p in current.pairs if p != pair)
        if is_conflict_set(context, candidate):
            current = candidate
    return current


class McsLearning(LearningMethod):
    """The paper's ``Mcs``: record a minimal conflict set."""

    name = "Mcs"

    def make_nogood(self, context: DeadendContext) -> Optional[Nogood]:
        start = resolvent_nogood(context)
        if len(start) <= 1:
            return start
        minimal = minimize_conflict_set(context, start)
        return ensure_deadend_nogood(context, minimal)
