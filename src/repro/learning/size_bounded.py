"""Size-bounded learning (Section 4.2): record only nogoods of size ≤ k.

The counter-measure to *nogood-explosion*: agents still generate and
announce full resolvent nogoods (generation is where the deadend information
comes from), but recipients record only those with at most *k* pairs —
"KthRslv refers to the resolvent-based learning where agents only record the
nogoods of size k or less."

The bound trades completeness for bounded per-cycle cost: small k keeps the
store small (light cycles) but can force many more cycles on hard instances;
the paper finds the best k is problem-dependent (3 for distributed
3-coloring, 5 for 3SAT-GEN, 4 for 3ONESAT-GEN instances).
"""

from __future__ import annotations

from typing import Optional

from ..core.exceptions import ModelError
from ..core.nogood import Nogood
from .base import DeadendContext, LearningMethod
from .resolvent import resolvent_nogood

_ORDINALS = {1: "1st", 2: "2nd", 3: "3rd"}


def ordinal(k: int) -> str:
    """The paper's naming: 3 → "3rd", 4 → "4th", 5 → "5th"."""
    return _ORDINALS.get(k, f"{k}th")


class SizeBoundedResolventLearning(LearningMethod):
    """The paper's ``kthRslv``: resolvent generation, size-bounded recording."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ModelError(f"size bound must be at least 1, got {k}")
        self.k = k
        self.name = f"{ordinal(k)}Rslv"

    def make_nogood(self, context: DeadendContext) -> Optional[Nogood]:
        return resolvent_nogood(context)

    def should_record(self, nogood: Nogood) -> bool:
        return len(nogood) <= self.k
