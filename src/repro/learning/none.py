"""No learning: the deadend is broken by the priority raise alone.

This is the AWC variant of Yokoo's original papers that the paper's tables
label ``No``: "an agent doesn't make a nogood when meeting deadends". The
algorithm cannot get stuck — raising the deadend variable's priority and
moving to a minimum-violation value always makes progress possible — but
without recorded nogoods it revisits the same dead ends, which is exactly
the cycle blow-up (and loss of completeness) Tables 1–3 show.
"""

from __future__ import annotations

from typing import Optional

from ..core.nogood import Nogood
from .base import DeadendContext, LearningMethod


class NoLearning(LearningMethod):
    """The paper's ``No``: never construct or record nogoods."""

    name = "No"

    def make_nogood(self, context: DeadendContext) -> Optional[Nogood]:
        del context
        return None

    def should_record(self, nogood: Nogood) -> bool:
        del nogood
        return False
