"""Nogood-learning methods for AWC — the paper's experimental axis.

Factory: :func:`learning_method` maps the paper's table labels ("Rslv",
"Mcs", "No", "3rdRslv", "Rslv/norec", ...) to strategy instances.
"""

from __future__ import annotations

import re

from ..core.exceptions import ModelError
from .base import DeadendContext, LearningMethod, ensure_deadend_nogood
from .mcs import McsLearning, is_conflict_set, minimize_conflict_set
from .none import NoLearning
from .recording import (
    NonRecordingResolventLearning,
    RecordingResolventLearning,
)
from .resolvent import (
    TIE_BREAKS,
    ResolventLearning,
    resolvent_nogood,
    select_nogood_for_value,
    stable_nogood_key,
)
from .size_bounded import SizeBoundedResolventLearning, ordinal

_KTH_PATTERN = re.compile(r"^(\d+)(st|nd|rd|th)Rslv$")


def learning_method(name: str) -> LearningMethod:
    """Build the learning method named *name* (the paper's table labels).

    Accepted names: ``"Rslv"``, ``"Mcs"``, ``"No"``, ``"Rslv/rec"``,
    ``"Rslv/norec"``, and ``"<k>thRslv"`` (e.g. ``"3rdRslv"``, ``"5thRslv"``).
    """
    if name == "Rslv":
        return ResolventLearning()
    if name == "Mcs":
        return McsLearning()
    if name == "No":
        return NoLearning()
    if name == "Rslv/rec":
        return RecordingResolventLearning()
    if name == "Rslv/norec":
        return NonRecordingResolventLearning()
    match = _KTH_PATTERN.match(name)
    if match:
        return SizeBoundedResolventLearning(int(match.group(1)))
    raise ModelError(f"unknown learning method: {name!r}")


__all__ = [
    "DeadendContext",
    "LearningMethod",
    "McsLearning",
    "NoLearning",
    "NonRecordingResolventLearning",
    "RecordingResolventLearning",
    "ResolventLearning",
    "SizeBoundedResolventLearning",
    "TIE_BREAKS",
    "ensure_deadend_nogood",
    "is_conflict_set",
    "learning_method",
    "minimize_conflict_set",
    "ordinal",
    "resolvent_nogood",
    "select_nogood_for_value",
    "stable_nogood_key",
]
