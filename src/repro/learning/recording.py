"""Recording policies for the Table 4 experiment (Rslv/rec vs Rslv/norec).

Table 4 isolates *why* learning reduces cycles: it counts redundant nogood
generations under two policies —

* ``Rslv/rec`` — the normal method: recipients record announced nogoods
  (this is plain :class:`~repro.learning.resolvent.ResolventLearning`);
* ``Rslv/norec`` — agents generate and announce resolvent nogoods, but *no
  other agent records them*. Without the recorded constraint, agents run
  into the same dead ends and regenerate the same nogoods over and over.

The redundant-generation count itself is kept by the metrics collector
(:meth:`~repro.runtime.metrics.MetricsCollector.record_generation`); these
classes only control the recording side.
"""

from __future__ import annotations

from typing import Optional

from ..core.nogood import Nogood
from .base import DeadendContext, LearningMethod
from .resolvent import ResolventLearning, resolvent_nogood


class NonRecordingResolventLearning(LearningMethod):
    """The paper's ``Rslv/norec``: generate resolvents, record nothing.

    With nobody recording, the "same nogood → do nothing" completeness rule
    would freeze the system at the first repeated deadend. Because
    ``should_record`` is always False here, AWC skips that rule: every
    deadend is broken by the priority raise (footnote 1), and the repeated
    generations are exactly what Table 4 counts.
    """

    name = "Rslv/norec"

    def make_nogood(self, context: DeadendContext) -> Optional[Nogood]:
        return resolvent_nogood(context)

    def should_record(self, nogood: Nogood) -> bool:
        del nogood
        return False


class RecordingResolventLearning(ResolventLearning):
    """The paper's ``Rslv/rec`` — an explicit alias for experiment tables."""

    name = "Rslv/rec"
