"""A centralized backtracking solver over nogood constraints.

Used as a reference oracle — verifying that generated instances are
solvable, that distributed solutions agree with centralized ones, and that
"unsolvable" verdicts from the distributed algorithms are genuine. It is
deliberately simple (chronological backtracking, static most-constrained
variable order, partial-nogood forward checking): correctness and clarity
over speed, since the test and verification workloads are small.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..core.exceptions import SolverError
from ..core.nogood import Nogood
from ..core.problem import CSP
from ..core.variables import Value, VariableId


class BacktrackingSolver:
    """Chronological backtracking with per-variable nogood indexing."""

    def __init__(self, csp: CSP, max_nodes: int = 2_000_000) -> None:
        self.csp = csp
        self.max_nodes = max_nodes
        # Static order: most-constrained (highest nogood degree) first.
        self._order: List[VariableId] = sorted(
            csp.variables,
            key=lambda variable: (-len(csp.relevant_nogoods(variable)), variable),
        )
        self._position = {
            variable: index for index, variable in enumerate(self._order)
        }
        # A nogood is checked when its *last* variable (in search order) is
        # assigned: each nogood is tested exactly once per branch.
        self._checks_at: Dict[VariableId, List[Nogood]] = {
            variable: [] for variable in csp.variables
        }
        for nogood in csp.nogoods:
            if len(nogood) == 0:
                self._trivially_unsolvable = True
                break
            last = max(nogood.variables, key=self._position.__getitem__)
            self._checks_at[last].append(nogood)
        else:
            self._trivially_unsolvable = False

    def solve(self) -> Optional[Dict[VariableId, Value]]:
        """One solution, or None if the problem has none."""
        for solution in self.solutions(limit=1):
            return solution
        return None

    def count_solutions(self, limit: int = 2) -> int:
        """The number of solutions, capped at *limit*."""
        count = 0
        for _solution in self.solutions(limit=limit):
            count += 1
        return count

    def solutions(
        self, limit: Optional[int] = None
    ) -> Iterator[Dict[VariableId, Value]]:
        """Yield solutions (up to *limit*) in search order."""
        if self._trivially_unsolvable:
            return
        assignment: Dict[VariableId, Value] = {}
        nodes = [0]
        yielded = [0]

        def extend(depth: int) -> Iterator[Dict[VariableId, Value]]:
            nodes[0] += 1
            if nodes[0] > self.max_nodes:
                raise SolverError(
                    f"backtracking node budget exhausted ({self.max_nodes})"
                )
            if depth == len(self._order):
                yielded[0] += 1
                yield dict(assignment)
                return
            variable = self._order[depth]
            for value in self.csp.domain_of(variable):
                assignment[variable] = value
                if not self._violates(variable, assignment):
                    yield from extend(depth + 1)
                    if limit is not None and yielded[0] >= limit:
                        del assignment[variable]
                        return
            del assignment[variable]

        yield from extend(0)

    def _violates(
        self, variable: VariableId, assignment: Dict[VariableId, Value]
    ) -> bool:
        for nogood in self._checks_at[variable]:
            if nogood.prohibits(assignment):
                return True
        return False


def solve_csp(csp: CSP) -> Optional[Dict[VariableId, Value]]:
    """Convenience wrapper: one solution of *csp*, or None."""
    return BacktrackingSolver(csp).solve()


def count_csp_solutions(csp: CSP, limit: int = 2) -> int:
    """Convenience wrapper: number of solutions of *csp*, capped at *limit*."""
    return BacktrackingSolver(csp).count_solutions(limit)


def brute_force_solutions(csp: CSP) -> List[Dict[VariableId, Value]]:
    """All solutions by exhaustive enumeration — tiny problems only.

    Exists so tests can cross-check the backtracking solver (and the
    distributed algorithms) against an implementation too simple to be
    wrong. Guarded to at most ~1e6 candidate assignments.
    """
    import itertools

    variables = list(csp.variables)
    sizes = 1
    for variable in variables:
        sizes *= len(csp.domain_of(variable))
        if sizes > 1_000_000:
            raise SolverError(
                "brute force restricted to ~1e6 candidates; "
                f"this problem has more ({sizes}+)"
            )
    solutions = []
    domains = [csp.domain_of(variable).values for variable in variables]
    for combo in itertools.product(*domains):
        assignment = dict(zip(variables, combo))
        if csp.is_solution(assignment):
            solutions.append(assignment)
    return solutions
