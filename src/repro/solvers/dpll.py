"""A DPLL SAT solver with counter-based unit propagation.

This is substrate, not the paper's contribution: the 3ONESAT-GEN-style
generator needs a *complete* SAT procedure to (a) find models different from
the planted one and (b) prove, at the end, that exactly one model remains.
The solver therefore exposes both :meth:`DpllSolver.solve` and bounded model
counting (:meth:`DpllSolver.count_models`).

Design notes:

* clauses are tuples of non-zero DIMACS-style literals (``3`` means variable
  3 true, ``-3`` false); tautological clauses are dropped at load time and
  duplicate literals collapsed;
* propagation is counter-based: each clause tracks how many of its literals
  are satisfied and how many are unassigned; assigning a literal touches
  only the clauses that contain the variable (via occurrence lists), which
  keeps propagation linear in occurrences rather than in formula size;
* the search assigns decision variables in static frequency order with an
  optional *polarity hint* (the generator hints "away from the planted
  model" to find distant second models quickly);
* model counting uses no pure-literal rule (which would under-count) and
  credits ``2**k`` models when all clauses are satisfied with *k* variables
  still unassigned;
* a node budget guards against pathological instances; exceeding it raises
  :class:`~repro.core.exceptions.SolverError` rather than silently lying.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import SolverError

#: A clause: a tuple of non-zero integers, DIMACS sign convention.
Clause = Tuple[int, ...]

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


def normalize_clause(literals: Sequence[int]) -> Optional[Clause]:
    """Sort, deduplicate and screen one clause.

    Returns None for tautologies (a literal and its negation). Raises
    :class:`SolverError` for malformed input (a zero literal).
    """
    unique = sorted(set(literals), key=abs)
    if any(literal == 0 for literal in unique):
        raise SolverError("clause contains the literal 0")
    seen = set(unique)
    if any(-literal in seen for literal in unique):
        return None
    return tuple(unique)


class DpllSolver:
    """A reusable DPLL engine over a fixed variable count.

    One instance holds one formula; :meth:`solve` and :meth:`count_models`
    can be called repeatedly (all search state is reset per call), and
    :meth:`add_clause` permanently extends the formula — the generator uses
    this to grow an instance clause by clause.
    """

    def __init__(
        self,
        num_vars: int,
        clauses: Sequence[Sequence[int]] = (),
        max_nodes: int = 2_000_000,
    ) -> None:
        if num_vars < 1:
            raise SolverError(f"num_vars must be positive, got {num_vars}")
        self.num_vars = num_vars
        self.max_nodes = max_nodes
        self._clauses: List[Clause] = []
        self._pos_occ: List[List[int]] = [[] for _ in range(num_vars + 1)]
        self._neg_occ: List[List[int]] = [[] for _ in range(num_vars + 1)]
        self._has_empty_clause = False
        for clause in clauses:
            self.add_clause(clause)

    # -- formula management ------------------------------------------------------

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add one clause; returns False if it was a dropped tautology."""
        clause = normalize_clause(literals)
        if clause is None:
            return False
        if len(clause) == 0:
            self._has_empty_clause = True
            return True
        for literal in clause:
            variable = abs(literal)
            if variable > self.num_vars:
                raise SolverError(
                    f"literal {literal} exceeds num_vars={self.num_vars}"
                )
        index = len(self._clauses)
        self._clauses.append(clause)
        for literal in clause:
            occ = self._pos_occ if literal > 0 else self._neg_occ
            occ[abs(literal)].append(index)
        return True

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        """The (normalized) clauses currently in the formula."""
        return tuple(self._clauses)

    # -- public queries ------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        polarity: Optional[Dict[int, bool]] = None,
    ) -> Optional[Dict[int, bool]]:
        """Find one model (as ``{variable: bool}``) or None if unsatisfiable.

        *assumptions* are literals fixed before search (useful for blocking
        or probing). *polarity* chooses which value each decision variable
        tries first; variables not listed try True first. Free variables in
        a satisfied formula take their polarity-preferred value.
        """
        self._reset()
        if self._has_empty_clause:
            return None
        if not self._assume(assumptions):
            return None
        found = self._search_model(polarity or {})
        if not found:
            return None
        model = {}
        prefer = polarity or {}
        for variable in range(1, self.num_vars + 1):
            state = self._assign[variable]
            if state == _UNASSIGNED:
                model[variable] = prefer.get(variable, True)
            else:
                model[variable] = state == _TRUE
        return model

    def count_models(self, limit: int = 2) -> int:
        """Count models, stopping early at *limit*.

        ``count_models(limit=2)`` is the uniqueness test: 0 = unsat,
        1 = exactly one model, 2 = at least two.
        """
        if limit < 1:
            raise SolverError(f"limit must be positive, got {limit}")
        self._reset()
        if self._has_empty_clause:
            return 0
        return self._search_count(limit)

    def is_satisfiable(self, assumptions: Sequence[int] = ()) -> bool:
        """True if the formula (under *assumptions*) has a model."""
        return self.solve(assumptions) is not None

    # -- search internals ------------------------------------------------------------

    def _reset(self) -> None:
        self._assign: List[int] = [_UNASSIGNED] * (self.num_vars + 1)
        self._sat_count: List[int] = [0] * len(self._clauses)
        self._unassigned_count: List[int] = [
            len(clause) for clause in self._clauses
        ]
        self._num_satisfied = 0
        self._num_assigned = 0
        self._trail: List[int] = []
        self._nodes = 0
        self._order = self._static_order()

    def _static_order(self) -> List[int]:
        frequency = [0] * (self.num_vars + 1)
        for clause in self._clauses:
            for literal in clause:
                frequency[abs(literal)] += 1
        return sorted(
            range(1, self.num_vars + 1),
            key=lambda variable: (-frequency[variable], variable),
        )

    def _assume(self, assumptions: Sequence[int]) -> bool:
        for literal in assumptions:
            if not self._assign_literal(literal):
                return False
        return True

    def _assign_literal(self, literal: int) -> bool:
        """Assign and propagate; False on conflict (caller must undo)."""
        queue = [literal]
        while queue:
            current = queue.pop()
            variable = abs(current)
            value = _TRUE if current > 0 else _FALSE
            state = self._assign[variable]
            if state != _UNASSIGNED:
                if state != value:
                    return False
                continue
            self._assign[variable] = value
            self._num_assigned += 1
            self._trail.append(variable)
            sat_occ = self._pos_occ if value == _TRUE else self._neg_occ
            unsat_occ = self._neg_occ if value == _TRUE else self._pos_occ
            for index in sat_occ[variable]:
                if self._sat_count[index] == 0:
                    self._num_satisfied += 1
                self._sat_count[index] += 1
                self._unassigned_count[index] -= 1
            # Complete every counter update before reporting a conflict:
            # _undo_to reverses whole assignments, so a partial update here
            # would corrupt the counters for the rest of the search.
            conflict = False
            for index in unsat_occ[variable]:
                self._unassigned_count[index] -= 1
                if self._sat_count[index] == 0:
                    remaining = self._unassigned_count[index]
                    if remaining == 0:
                        conflict = True
                    elif remaining == 1 and not conflict:
                        queue.append(self._unit_literal(index))
            if conflict:
                return False
        return True

    def _unit_literal(self, index: int) -> int:
        for literal in self._clauses[index]:
            if self._assign[abs(literal)] == _UNASSIGNED:
                return literal
        raise SolverError(
            f"clause {index} has no unassigned literal despite unit status"
        )

    def _undo_to(self, mark: int) -> None:
        while len(self._trail) > mark:
            variable = self._trail.pop()
            value = self._assign[variable]
            sat_occ = self._pos_occ if value == _TRUE else self._neg_occ
            unsat_occ = self._neg_occ if value == _TRUE else self._pos_occ
            for index in sat_occ[variable]:
                self._sat_count[index] -= 1
                if self._sat_count[index] == 0:
                    self._num_satisfied -= 1
                self._unassigned_count[index] += 1
            for index in unsat_occ[variable]:
                self._unassigned_count[index] += 1
            self._assign[variable] = _UNASSIGNED
            self._num_assigned -= 1

    def _next_decision(self) -> Optional[int]:
        for variable in self._order:
            if self._assign[variable] == _UNASSIGNED:
                return variable
        return None

    def _bump_nodes(self) -> None:
        self._nodes += 1
        if self._nodes > self.max_nodes:
            raise SolverError(
                f"DPLL node budget exhausted ({self.max_nodes} nodes)"
            )

    def _search_model(self, polarity: Dict[int, bool]) -> bool:
        self._bump_nodes()
        if self._num_satisfied == len(self._clauses):
            return True
        variable = self._next_decision()
        if variable is None:
            # Every variable assigned but some clause unsatisfied.
            return False
        first = polarity.get(variable, True)
        for value in (first, not first):
            literal = variable if value else -variable
            mark = len(self._trail)
            if self._assign_literal(literal) and self._search_model(polarity):
                return True
            self._undo_to(mark)
        return False

    def _search_count(self, limit: int) -> int:
        self._bump_nodes()
        if self._num_satisfied == len(self._clauses):
            free = self.num_vars - self._num_assigned
            return min(limit, 1 << free) if free < 63 else limit
        variable = self._next_decision()
        if variable is None:
            return 0
        total = 0
        for value in (True, False):
            literal = variable if value else -variable
            mark = len(self._trail)
            if self._assign_literal(literal):
                total += self._search_count(limit - total)
            self._undo_to(mark)
            if total >= limit:
                break
        return total


def blocking_clause(model: Dict[int, bool]) -> Clause:
    """The clause excluding exactly *model* (over the variables it assigns)."""
    return tuple(
        -variable if value else variable
        for variable, value in sorted(model.items())
    )
