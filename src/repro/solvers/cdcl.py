"""A CDCL SAT solver: watched literals, 1UIP learning, backjumping, restarts.

Why a second SAT engine: the 3ONESAT-GEN-style generator must *prove* that
no second model exists, and its final UNSAT call on a 200-variable
instance is exactly the kind of search that plain DPLL (see
:mod:`repro.solvers.dpll`) struggles with. Conflict-driven clause learning
— the centralized cousin of the paper's distributed nogood learning —
shortens those proofs by orders of magnitude.

The design is the standard modern core, sized for this library's needs
(hundreds of variables, thousands of clauses):

* **two-watched-literal** propagation (lazy clause scanning);
* **first-UIP conflict analysis** with clause minimization skipped (not
  worth its complexity at this scale) and **non-chronological
  backjumping** to the learned clause's assertion level;
* **VSIDS-style activities** with exponential decay via periodic
  rescaling, phase saving for decision polarity;
* **Luby restarts**;
* learned clauses are kept (no deletion): the workloads here never grow
  the database far enough to need it.

The solver is deterministic: no randomized tie-breaking, so identical
inputs yield identical runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import SolverError
from .dpll import normalize_clause

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


def luby(index: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    *index* is 1-based. Iterative form of the classic recursion: if the
    index is one below a power of two, it is that half-power; otherwise
    recurse on the remainder of the enclosing block.
    """
    if index < 1:
        raise SolverError(f"luby index must be >= 1, got {index}")
    while True:
        k = index.bit_length()
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        index -= (1 << (k - 1)) - 1


class CdclSolver:
    """Conflict-driven clause learning over a fixed variable count."""

    def __init__(
        self,
        num_vars: int,
        clauses: Sequence[Sequence[int]] = (),
        max_conflicts: int = 2_000_000,
        restart_base: int = 64,
    ) -> None:
        if num_vars < 1:
            raise SolverError(f"num_vars must be positive, got {num_vars}")
        self.num_vars = num_vars
        self.max_conflicts = max_conflicts
        self.restart_base = restart_base
        self._clauses: List[List[int]] = []
        self._has_empty_clause = False
        self._units: List[int] = []
        # Watch lists are keyed by the literal being falsified: watches[lit]
        # holds indices of clauses currently watching lit.
        self._watches: Dict[int, List[int]] = {}
        for clause in clauses:
            self.add_clause(clause)

    # -- formula management -----------------------------------------------------

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add a clause (tautologies dropped; returns False for those)."""
        clause = normalize_clause(literals)
        if clause is None:
            return False
        for literal in clause:
            if abs(literal) > self.num_vars:
                raise SolverError(
                    f"literal {literal} exceeds num_vars={self.num_vars}"
                )
        if len(clause) == 0:
            self._has_empty_clause = True
            return True
        if len(clause) == 1:
            self._units.append(clause[0])
            return True
        self._attach(list(clause))
        return True

    def _attach(self, clause: List[int]) -> int:
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(index)
        self._watches.setdefault(clause[1], []).append(index)
        return index

    # -- public API ----------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        polarity: Optional[Dict[int, bool]] = None,
    ) -> Optional[Dict[int, bool]]:
        """One model, or None if unsatisfiable (under *assumptions*).

        Assumptions are enqueued as level-0 facts, so an UNSAT result means
        "unsatisfiable together with the assumptions"; learned clauses may
        depend on them, which is why each :meth:`solve` call starts from a
        fresh search state (learned clauses from previous calls with
        *different* assumptions are discarded along with everything else —
        reuse an instance for its formula, not its learnings).
        """
        state = _SearchState(self, assumptions)
        if polarity:
            for variable, value in polarity.items():
                if 1 <= variable <= self.num_vars:
                    state.phase[variable] = value
        return state.run()

    def is_satisfiable(self, assumptions: Sequence[int] = ()) -> bool:
        """True if a model exists under *assumptions*."""
        return self.solve(assumptions) is not None


class _SearchState:
    """One CDCL search run (fresh per solve call)."""

    def __init__(self, solver: CdclSolver, assumptions: Sequence[int]) -> None:
        self.base = solver
        self.num_vars = solver.num_vars
        # Clause database: shared problem clauses are copied by reference;
        # learned clauses are appended locally.
        self.clauses: List[List[int]] = [
            list(clause) for clause in solver._clauses
        ]
        self.watches: Dict[int, List[int]] = {
            literal: list(indices)
            for literal, indices in solver._watches.items()
        }
        self.assign = [_UNASSIGNED] * (self.num_vars + 1)
        self.level = [0] * (self.num_vars + 1)
        self.reason: List[Optional[int]] = [None] * (self.num_vars + 1)
        self.trail: List[int] = []  # literals in assignment order
        self.trail_limits: List[int] = []  # trail length per decision level
        self.queue_head = 0
        self.activity = [0.0] * (self.num_vars + 1)
        self.activity_increment = 1.0
        self.phase = [True] * (self.num_vars + 1)
        self.conflicts = 0
        self.assumptions = list(assumptions)
        self.pending_units = list(solver._units)

    # -- assignment primitives --------------------------------------------------

    @property
    def decision_level(self) -> int:
        return len(self.trail_limits)

    def value_of(self, literal: int) -> int:
        state = self.assign[abs(literal)]
        if state == _UNASSIGNED:
            return _UNASSIGNED
        return state if literal > 0 else -state

    def enqueue(self, literal: int, reason: Optional[int]) -> bool:
        current = self.value_of(literal)
        if current == _TRUE:
            return True
        if current == _FALSE:
            return False
        variable = abs(literal)
        self.assign[variable] = _TRUE if literal > 0 else _FALSE
        self.level[variable] = self.decision_level
        self.reason[variable] = reason
        self.phase[variable] = literal > 0
        self.trail.append(literal)
        return True

    def propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self.queue_head < len(self.trail):
            literal = self.trail[self.queue_head]
            self.queue_head += 1
            falsified = -literal
            watching = self.watches.get(falsified)
            if not watching:
                continue
            keep: List[int] = []
            conflict: Optional[int] = None
            for position, index in enumerate(watching):
                clause = self.clauses[index]
                # Ensure the falsified literal sits at slot 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self.value_of(first) == _TRUE:
                    keep.append(index)
                    continue
                # Look for a replacement watch.
                moved = False
                for slot in range(2, len(clause)):
                    candidate = clause[slot]
                    if self.value_of(candidate) != _FALSE:
                        clause[1], clause[slot] = clause[slot], clause[1]
                        self.watches.setdefault(candidate, []).append(index)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(index)
                if self.value_of(first) == _FALSE:
                    conflict = index
                    keep.extend(watching[position + 1:])
                    break
                if not self.enqueue(first, reason=index):
                    raise SolverError("enqueue failed on unassigned literal")
            self.watches[falsified] = keep
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis -----------------------------------------------------------

    def bump(self, variable: int) -> None:
        self.activity[variable] += self.activity_increment
        if self.activity[variable] > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.activity_increment *= 1e-100

    def analyze(self, conflict_index: int) -> Tuple[List[int], int]:
        """First-UIP learned clause and its backjump level."""
        learned: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0  # literals of the current level still to resolve
        literal = 0
        index = conflict_index
        trail_position = len(self.trail) - 1
        while True:
            clause = self.clauses[index]
            # For a *reason* clause the asserting literal sits at slot 0
            # (propagation maintains this while the clause is locked as a
            # reason) and is the resolved-upon variable: skip it. The
            # initial conflict clause contributes every literal.
            relevant = clause if literal == 0 else clause[1:]
            for clause_literal in relevant:
                variable = abs(clause_literal)
                if seen[variable] or self.level[variable] == 0:
                    continue
                seen[variable] = True
                self.bump(variable)
                if self.level[variable] == self.decision_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            # Find the next current-level literal on the trail to resolve.
            while not seen[abs(self.trail[trail_position])]:
                trail_position -= 1
            literal = self.trail[trail_position]
            seen[abs(literal)] = False
            counter -= 1
            trail_position -= 1
            if counter == 0:
                learned[0] = -literal
                break
            index = self.reason[abs(literal)]
            if index is None:
                raise SolverError("reached a decision while resolving")
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the learned clause, and
        # put a literal of that level in slot 1 (watch invariant).
        best_slot = 1
        for slot in range(2, len(learned)):
            if (
                self.level[abs(learned[slot])]
                > self.level[abs(learned[best_slot])]
            ):
                best_slot = slot
        learned[1], learned[best_slot] = learned[best_slot], learned[1]
        return learned, self.level[abs(learned[1])]

    def backjump(self, target_level: int) -> None:
        while self.decision_level > target_level:
            limit = self.trail_limits.pop()
            while len(self.trail) > limit:
                literal = self.trail.pop()
                variable = abs(literal)
                self.assign[variable] = _UNASSIGNED
                self.reason[variable] = None
            self.queue_head = min(self.queue_head, len(self.trail))

    # -- the main loop -------------------------------------------------------------------

    def pick_variable(self) -> Optional[int]:
        best = None
        best_activity = -1.0
        for variable in range(1, self.num_vars + 1):
            if self.assign[variable] == _UNASSIGNED:
                if self.activity[variable] > best_activity:
                    best_activity = self.activity[variable]
                    best = variable
        return best

    def run(self) -> Optional[Dict[int, bool]]:
        if self.base._has_empty_clause:
            return None
        for literal in self.pending_units + self.assumptions:
            if not self.enqueue(literal, reason=None):
                return None
        if self.propagate() is not None:
            return None
        restart_index = 1
        conflicts_until_restart = self.base.restart_base * luby(restart_index)
        while True:
            conflict = self.propagate()
            if conflict is not None:
                self.conflicts += 1
                if self.conflicts > self.base.max_conflicts:
                    raise SolverError(
                        f"CDCL conflict budget exhausted "
                        f"({self.base.max_conflicts})"
                    )
                if self.decision_level == 0:
                    return None
                learned, backjump_level = self.analyze(conflict)
                self.backjump(backjump_level)
                if len(learned) == 1:
                    if not self.enqueue(learned[0], reason=None):
                        return None
                else:
                    index = len(self.clauses)
                    self.clauses.append(learned)
                    self.watches.setdefault(learned[0], []).append(index)
                    self.watches.setdefault(learned[1], []).append(index)
                    self.enqueue(learned[0], reason=index)
                self.activity_increment *= 1.05
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0 and self.decision_level > 0:
                    restart_index += 1
                    conflicts_until_restart = self.base.restart_base * luby(
                        restart_index
                    )
                    self.backjump(0)
                continue
            variable = self.pick_variable()
            if variable is None:
                return {
                    v: self.assign[v] == _TRUE
                    for v in range(1, self.num_vars + 1)
                }
            self.trail_limits.append(len(self.trail))
            literal = variable if self.phase[variable] else -variable
            self.enqueue(literal, reason=None)
