"""Centralized solver substrate: SAT engines and CSP backtracking.

These are reference/oracle components, not the paper's contribution:

* :class:`DpllSolver` — simple and auditable; does bounded model counting
  (the uniqueness verification oracle);
* :class:`CdclSolver` — conflict-driven clause learning (watched literals,
  1UIP, backjumping, restarts); the workhorse behind the unique-solution
  generator, whose final no-second-model proof is a genuinely hard UNSAT
  call at n = 200;
* :class:`BacktrackingSolver` — CSP ground truth for tests.
"""

from .backtracking import (
    BacktrackingSolver,
    brute_force_solutions,
    count_csp_solutions,
    solve_csp,
)
from .cdcl import CdclSolver, luby
from .dpll import Clause, DpllSolver, blocking_clause, normalize_clause

__all__ = [
    "BacktrackingSolver",
    "CdclSolver",
    "Clause",
    "DpllSolver",
    "blocking_clause",
    "brute_force_solutions",
    "count_csp_solutions",
    "luby",
    "normalize_clause",
    "solve_csp",
]
