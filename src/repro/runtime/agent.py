"""The protocol every simulated agent implements.

The simulator drives agents through exactly two entry points:

* :meth:`SimulatedAgent.initialize` — called once at cycle 0; the agent
  chooses its initial value(s) and returns its first messages;
* :meth:`SimulatedAgent.step` — called once per cycle with the messages
  delivered this cycle; the agent updates its state and returns outgoing
  messages, which the network will deliver in a later cycle.

Agents never touch the network or other agents directly; all interaction is
through returned :data:`~repro.runtime.messages.Outgoing` pairs. That
restriction is what makes the synchronous-cycle semantics (and the cost
accounting) airtight.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Type

from ..core.exceptions import UnsolvableError
from ..core.problem import AgentId
from ..core.store import CheckCounter, NogoodStore
from ..core.variables import Value, VariableId
from .messages import Message, Outgoing

if TYPE_CHECKING:
    from ..retention import NogoodInterner, PolicyFactory


class SimulatedAgent(ABC):
    """Base class for agents run by the synchronous simulator."""

    def __init__(self, agent_id: AgentId) -> None:
        self.id = agent_id
        #: Shared with this agent's nogood store; sampled by the metrics
        #: collector at cycle boundaries.
        self.check_counter = CheckCounter()
        #: Set when the agent derives the empty nogood. The simulator
        #: terminates the run and reports the problem unsolvable.
        self.failure: Optional[UnsolvableError] = None

    @abstractmethod
    def initialize(self) -> List[Outgoing]:
        """Choose initial value(s); return the first messages to send."""

    @abstractmethod
    def step(self, messages: Sequence[Message]) -> List[Outgoing]:
        """Process one cycle's incoming messages; return outgoing ones."""

    @abstractmethod
    def local_assignment(self) -> Dict[VariableId, Value]:
        """The agent's current values for the variables it owns."""

    def rebind_store(self, store_class: Type[NogoodStore]) -> None:
        """Swap this agent's nogood store implementation, keeping contents.

        The experiment runner calls this right after building the agents to
        apply the ``--store`` backend axis. The default is a no-op: agents
        without a nogood store (or with bespoke storage) simply ignore the
        request. Subclasses that own stores must rebuild them with the same
        check counter and re-add every nogood in insertion order, so the
        swap is invisible to the cost accounting.
        """

    def attach_retention(
        self,
        policy_factory: Optional["PolicyFactory"],
        interner: Optional["NogoodInterner"] = None,
    ) -> None:
        """Attach a nogood retention policy and/or a shared interner.

        The experiment runner calls this after building (and possibly
        rebinding) the agents to apply the ``--retention`` axis. The
        factory is invoked once per store — policies hold per-nogood
        state and must never be shared between stores — while the
        interner is one object per trial, shared by every agent. The
        default is a no-op for agents without a nogood store.
        """

    def has_pending_work(self) -> bool:
        """True when the agent needs another step even without new mail.

        The synchronous simulator steps every agent every cycle, so an
        agent with leftover internal work (e.g. the multi-variable AWC
        agent's intra-round carryover queue) is always revisited. The
        event-driven engine activates agents only on message arrival;
        agents that buffer work across steps must override this so the
        engine schedules a wakeup at the next timestamp. The default is
        False: for agents whose ``step([])`` is a no-op, nothing is owed.
        """
        return False

    def fail_unsolvable(self, message: str = "") -> None:
        """Record that this agent proved the problem unsolvable."""
        self.failure = UnsolvableError(self.id, message)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id})"
