"""Message types exchanged by the distributed algorithms.

The paper's algorithms use a small vocabulary of messages:

* ``ok?`` — a variable's current value (and, for AWC, its priority);
* ``nogood`` — a newly generated nogood, sent to the agents it mentions;
* value requests — when a received nogood mentions an unknown variable, the
  receiver "has to request the corresponding agent to send its value"
  (this is ABT's add-link mechanism);
* ``improve`` — the distributed breakout's possible-improvement exchange.

All messages are frozen dataclasses: the network layer may buffer and
re-order them, and immutability guarantees a message read later is the
message that was sent. Every message carries its sender so receivers can
maintain links without trusting delivery metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from ..core.nogood import Nogood
from ..core.problem import AgentId
from ..core.variables import Value, VariableId


@dataclass(frozen=True)
class OkMessage:
    """'ok?' — the sender's variable has this value (and priority).

    Priority is meaningful for AWC and ABT-with-priorities; the distributed
    breakout ignores it (it is always 0 there).
    """

    sender: AgentId
    variable: VariableId
    value: Value
    priority: int = 0


@dataclass(frozen=True)
class NogoodMessage:
    """'nogood' — the sender derived this nogood at a deadend."""

    sender: AgentId
    nogood: Nogood


@dataclass(frozen=True)
class RequestValueMessage:
    """Ask the owner of *variable* to (re)announce its value.

    Sent when a received nogood mentions a variable the receiver has never
    heard from. The owner responds with an ``ok?`` and adds the requester to
    its outgoing links, so future changes reach it too.
    """

    sender: AgentId
    variable: VariableId


@dataclass(frozen=True)
class ImproveMessage:
    """'improve' — distributed breakout's cost/improvement announcement.

    *round_index* identifies which ok?/improve alternation this message
    belongs to; with delayed delivery, rounds may overlap in flight and the
    receiver must buffer messages from future rounds rather than conflate
    them.
    """

    sender: AgentId
    eval: int
    improve: int
    round_index: int


@dataclass(frozen=True)
class OkRoundMessage:
    """'ok?' variant carrying a round index, for the distributed breakout."""

    sender: AgentId
    variable: VariableId
    value: Value
    round_index: int


Message = Union[
    OkMessage,
    NogoodMessage,
    RequestValueMessage,
    ImproveMessage,
    OkRoundMessage,
]

#: An outgoing message paired with its recipient.
Outgoing = Tuple[AgentId, Message]
