"""Execution tracing for simulated runs.

Distributed algorithms are miserable to debug from final states alone. A
:class:`TraceRecorder` attached to the simulator records, per cycle, every
message routed and every variable whose value changed, and can render the
whole run as a readable log. Tracing is strictly observational — it never
alters delivery, ordering, or cost accounting — and is off by default
(recording every message of a 10 000-cycle run is memory-hungry; the
``max_events`` bound drops the oldest events past the cap).
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..core.nogood import Nogood
from ..core.problem import AgentId
from ..core.variables import Value, VariableId
from .messages import Message


@dataclass(frozen=True)
class MessageEvent:
    """One message routed during a cycle.

    ``sequence`` is the transport's monotone send counter when the backend
    exposes one (the event engine); the synchronous simulator leaves it
    None. It is what lets the trace validator pair each delivery with its
    send.
    """

    cycle: int
    sender: AgentId
    recipient: AgentId
    message: Message
    sequence: Optional[int] = None

    def describe(self) -> str:
        kind = type(self.message).__name__.replace("Message", "")
        return (
            f"[{self.cycle:>5}] {self.sender} -> {self.recipient}: "
            f"{kind} {self.message}"
        )


@dataclass(frozen=True)
class DeliveryEvent:
    """One message handed to its recipient by the event-driven transport.

    ``cycle`` is the *arrival* timestamp; ``sequence`` identifies the send
    it completes. Recorded only by the event engine — the synchronous
    simulator's deliveries are implicit (everything sent in cycle *t*
    arrives in *t + 1*).
    """

    cycle: int
    sequence: int
    sender: AgentId
    recipient: AgentId

    def describe(self) -> str:
        return (
            f"[{self.cycle:>5}] {self.sender} => {self.recipient}: "
            f"delivered #{self.sequence}"
        )


@dataclass(frozen=True)
class ValueChangeEvent:
    """One variable changing value between consecutive cycles."""

    cycle: int
    variable: VariableId
    old_value: Optional[Value]
    new_value: Value

    def describe(self) -> str:
        return (
            f"[{self.cycle:>5}] x{self.variable}: "
            f"{self.old_value!r} -> {self.new_value!r}"
        )


class TraceRecorder:
    """Collects message and value-change events from a simulated run."""

    def __init__(self, max_events: int = 100_000) -> None:
        self.max_events = max_events
        self.messages: List[MessageEvent] = []
        self.deliveries: List[DeliveryEvent] = []
        self.changes: List[ValueChangeEvent] = []
        self.dropped = 0
        self._last_assignment: Dict[VariableId, Value] = {}

    # -- hooks called by the simulator ------------------------------------------

    def on_message(
        self,
        cycle: int,
        sender: AgentId,
        recipient: AgentId,
        message: Message,
        sequence: Optional[int] = None,
    ) -> None:
        if len(self.messages) >= self.max_events:
            self.dropped += 1
            return
        self.messages.append(
            MessageEvent(cycle, sender, recipient, message, sequence)
        )

    def on_delivery(
        self,
        cycle: int,
        sequence: int,
        sender: AgentId,
        recipient: AgentId,
    ) -> None:
        if len(self.deliveries) >= self.max_events:
            self.dropped += 1
            return
        self.deliveries.append(
            DeliveryEvent(cycle, sequence, sender, recipient)
        )

    def on_cycle_end(
        self, cycle: int, assignment: Dict[VariableId, Value]
    ) -> None:
        for variable, value in assignment.items():
            previous = self._last_assignment.get(variable)
            if previous != value:
                if len(self.changes) < self.max_events:
                    self.changes.append(
                        ValueChangeEvent(cycle, variable, previous, value)
                    )
                else:
                    self.dropped += 1
        self._last_assignment = dict(assignment)

    # -- queries -----------------------------------------------------------------

    def messages_in_cycle(self, cycle: int) -> List[MessageEvent]:
        """Messages routed during one cycle."""
        return [event for event in self.messages if event.cycle == cycle]

    def changes_of(self, variable: VariableId) -> List[ValueChangeEvent]:
        """The value history of one variable."""
        return [
            event for event in self.changes if event.variable == variable
        ]

    def message_counts_by_type(self) -> Dict[str, int]:
        """How many messages of each type were sent over the run."""
        counts: Counter = Counter(
            type(event.message).__name__ for event in self.messages
        )
        return dict(counts)

    def busiest_agents(self, top: int = 5) -> List[Tuple[AgentId, int]]:
        """Agents ranked by messages sent."""
        counts: Counter = Counter(event.sender for event in self.messages)
        return counts.most_common(top)

    def to_jsonl_records(self) -> Iterator[Dict[str, Any]]:
        """The merged event log as JSON-safe dicts, in cycle order.

        Message events carry ``event: "message"``, the message's type name
        as ``kind``, and its fields flattened JSON-safe (nogoods become
        sorted ``[variable, value]`` pair lists) — plus the transport send
        ``sequence`` when the backend provides one. Deliveries carry
        ``event: "delivery"`` stamped with the *arrival* cycle and the
        sequence of the send they complete. Value changes carry
        ``event: "value_change"``. A final ``event: "summary"`` record
        reports totals and the drop count, so a truncated trace is
        detectable from the file alone.

        ``repro lint --check-trace`` replays this format and asserts the
        runtime invariants (clock monotonicity, causal delivery, the FIFO
        clamp) hold over the recorded run.
        """
        merged: List[
            Union[MessageEvent, DeliveryEvent, ValueChangeEvent]
        ] = sorted(
            self.messages + self.deliveries + self.changes,
            key=lambda event: event.cycle,
        )
        for event in merged:
            if isinstance(event, MessageEvent):
                record: Dict[str, Any] = {
                    "event": "message",
                    "cycle": event.cycle,
                    "sender": event.sender,
                    "recipient": event.recipient,
                    "kind": type(event.message).__name__,
                    **{
                        field.name: _json_safe(
                            getattr(event.message, field.name)
                        )
                        for field in dataclasses.fields(event.message)
                    },
                }
                if event.sequence is not None:
                    record["sequence"] = event.sequence
                yield record
            elif isinstance(event, DeliveryEvent):
                yield {
                    "event": "delivery",
                    "cycle": event.cycle,
                    "sequence": event.sequence,
                    "sender": event.sender,
                    "recipient": event.recipient,
                }
            else:
                yield {
                    "event": "value_change",
                    "cycle": event.cycle,
                    "variable": event.variable,
                    "old_value": _json_safe(event.old_value),
                    "new_value": _json_safe(event.new_value),
                }
        summary: Dict[str, Any] = {
            "event": "summary",
            "messages": len(self.messages),
            "value_changes": len(self.changes),
            "dropped": self.dropped,
        }
        if self.deliveries:
            summary["deliveries"] = len(self.deliveries)
        yield summary

    def write_jsonl(self, path: Union[str, Path]) -> int:
        """Write the event log to *path* as JSON Lines; returns the record
        count (including the trailing summary record)."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.to_jsonl_records():
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
                count += 1
        return count

    def render(self, limit: int = 200) -> str:
        """The merged event log as text (first *limit* events)."""
        merged: List[
            Union[MessageEvent, DeliveryEvent, ValueChangeEvent]
        ] = sorted(
            self.messages + self.deliveries + self.changes,
            key=lambda event: event.cycle,
        )
        lines = [event.describe() for event in merged[:limit]]
        if len(merged) > limit:
            lines.append(f"... {len(merged) - limit} more events")
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (max_events)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"TraceRecorder({len(self.messages)} messages, "
            f"{len(self.changes)} value changes)"
        )


def _json_safe(value: Any) -> Any:
    """A JSON-serializable rendering of a message field value.

    Nogoods have no natural JSON form (a frozenset of pairs), so they
    become sorted ``[variable, value]`` lists — deterministic, hence
    diffable across runs.
    """
    if isinstance(value, Nogood):
        return sorted([variable, value_] for variable, value_ in value.pairs)
    if isinstance(value, (frozenset, set)):
        return sorted(_json_safe(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)
