"""Execution tracing for simulated runs.

Distributed algorithms are miserable to debug from final states alone. A
:class:`TraceRecorder` attached to the simulator records, per cycle, every
message routed and every variable whose value changed, and can render the
whole run as a readable log. Tracing is strictly observational — it never
alters delivery, ordering, or cost accounting — and is off by default
(recording every message of a 10 000-cycle run is memory-hungry; the
``max_events`` bound drops the oldest events past the cap).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.problem import AgentId
from ..core.variables import Value, VariableId
from .messages import Message


@dataclass(frozen=True)
class MessageEvent:
    """One message routed during a cycle."""

    cycle: int
    sender: AgentId
    recipient: AgentId
    message: Message

    def describe(self) -> str:
        kind = type(self.message).__name__.replace("Message", "")
        return (
            f"[{self.cycle:>5}] {self.sender} -> {self.recipient}: "
            f"{kind} {self.message}"
        )


@dataclass(frozen=True)
class ValueChangeEvent:
    """One variable changing value between consecutive cycles."""

    cycle: int
    variable: VariableId
    old_value: Optional[Value]
    new_value: Value

    def describe(self) -> str:
        return (
            f"[{self.cycle:>5}] x{self.variable}: "
            f"{self.old_value!r} -> {self.new_value!r}"
        )


class TraceRecorder:
    """Collects message and value-change events from a simulated run."""

    def __init__(self, max_events: int = 100_000) -> None:
        self.max_events = max_events
        self.messages: List[MessageEvent] = []
        self.changes: List[ValueChangeEvent] = []
        self.dropped = 0
        self._last_assignment: Dict[VariableId, Value] = {}

    # -- hooks called by the simulator ------------------------------------------

    def on_message(
        self,
        cycle: int,
        sender: AgentId,
        recipient: AgentId,
        message: Message,
    ) -> None:
        if len(self.messages) >= self.max_events:
            self.dropped += 1
            return
        self.messages.append(MessageEvent(cycle, sender, recipient, message))

    def on_cycle_end(
        self, cycle: int, assignment: Dict[VariableId, Value]
    ) -> None:
        for variable, value in assignment.items():
            previous = self._last_assignment.get(variable)
            if previous != value:
                if len(self.changes) < self.max_events:
                    self.changes.append(
                        ValueChangeEvent(cycle, variable, previous, value)
                    )
                else:
                    self.dropped += 1
        self._last_assignment = dict(assignment)

    # -- queries -----------------------------------------------------------------

    def messages_in_cycle(self, cycle: int) -> List[MessageEvent]:
        """Messages routed during one cycle."""
        return [event for event in self.messages if event.cycle == cycle]

    def changes_of(self, variable: VariableId) -> List[ValueChangeEvent]:
        """The value history of one variable."""
        return [
            event for event in self.changes if event.variable == variable
        ]

    def message_counts_by_type(self) -> Dict[str, int]:
        """How many messages of each type were sent over the run."""
        counts: Counter = Counter(
            type(event.message).__name__ for event in self.messages
        )
        return dict(counts)

    def busiest_agents(self, top: int = 5) -> List[Tuple[AgentId, int]]:
        """Agents ranked by messages sent."""
        counts: Counter = Counter(event.sender for event in self.messages)
        return counts.most_common(top)

    def render(self, limit: int = 200) -> str:
        """The merged event log as text (first *limit* events)."""
        merged = sorted(
            self.messages + self.changes,
            key=lambda event: event.cycle,
        )
        lines = [event.describe() for event in merged[:limit]]
        if len(merged) > limit:
            lines.append(f"... {len(merged) - limit} more events")
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (max_events)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"TraceRecorder({len(self.messages)} messages, "
            f"{len(self.changes)} value changes)"
        )
