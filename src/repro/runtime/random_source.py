"""Deterministic derivation of independent random streams.

Every stochastic choice in the library — initial values, generator
sampling, tie-breaking — draws from an explicit :class:`random.Random`
instance derived from a master seed and a tag path. Deriving (rather than
sharing) streams keeps components independent: adding a draw in one agent
cannot shift the stream of another, so experiments stay reproducible under
refactoring.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Seed = Union[int, str]


def derive_seed(master: Seed, *tags: Seed) -> int:
    """Derive a child seed from *master* and a tag path, stably across runs.

    Uses SHA-256 over an unambiguous encoding, so ``derive_seed(1, "a")`` and
    ``derive_seed(1, "a", "b")`` are unrelated, and the result does not
    depend on Python's per-process hash randomization.
    """
    text = "\x1f".join(str(part) for part in (master, *tags))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(master: Seed, *tags: Seed) -> random.Random:
    """A fresh :class:`random.Random` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(master, *tags))
