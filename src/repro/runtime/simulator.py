"""The synchronous distributed-system simulator.

Section 4 of the paper: "A synchronous distributed system is one of possible
distributed systems, where all processes (agents) do their cycles
synchronously. One cycle consists of activities so that all agents read
incoming messages, do their local computation, and send messages to relevant
agents."

:class:`SynchronousSimulator` implements those semantics over any
:class:`~repro.runtime.network.Network`. With the default
:class:`~repro.runtime.network.SynchronousNetwork` every message takes one
cycle (the paper's setting); with a delay network the same loop models a
slower or asynchronous medium.

Termination:

* a global observer sees a solution (``cycle`` = cycles consumed so far);
* an agent derives the empty nogood (the problem is unsolvable);
* the system quiesces without a solution (possible for the incomplete
  variants: no messages are in flight and no agent will ever act again);
* the cycle cap is reached (the paper uses 10 000 and reports the at-cap
  measurements; so do we, via ``capped=True``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..core.exceptions import SimulationError
from ..core.problem import AgentId, DisCSP
from ..core.variables import Value, VariableId
from .agent import SimulatedAgent
from .messages import Outgoing
from .metrics import MetricsCollector
from .network import Network, SynchronousNetwork
from .termination import (
    GlobalSolutionDetector,
    IncrementalSolutionDetector,
    collect_assignment,
)

if TYPE_CHECKING:
    from .trace import TraceRecorder

#: The paper's cycle cap.
DEFAULT_MAX_CYCLES = 10_000


@dataclass
class RunResult:
    """The outcome and cost of one simulated trial."""

    solved: bool
    unsolvable: bool
    capped: bool
    quiescent: bool
    cycles: int
    maxcck: int
    total_checks: int
    messages_sent: int
    generated_nogoods: int
    redundant_generations: int
    assignment: Dict[VariableId, Value] = field(default_factory=dict)
    wall_time: float = 0.0
    #: Wall-clock seconds minus time spent inside the tracer's hooks: the
    #: simulation cost proper, comparable across traced and untraced runs.
    sim_time: float = 0.0
    max_history: List[int] = field(default_factory=list)
    #: The logical timestamp at which the run ended. For the synchronous
    #: backend this equals ``cycles``; for the event-driven backend it is
    #: the last epoch's timestamp, which grows faster than ``cycles`` under
    #: random message latency (see :mod:`repro.runtime.events`).
    logical_time: int = 0

    @property
    def finished(self) -> bool:
        """True if the run ended with a definite answer (solved/unsolvable)."""
        return self.solved or self.unsolvable


class SynchronousSimulator:
    """Runs a set of agents to completion under synchronous cycles."""

    def __init__(
        self,
        problem: DisCSP,
        agents: Sequence[SimulatedAgent],
        network: Optional[Network] = None,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        metrics: Optional[MetricsCollector] = None,
        detector: Optional[GlobalSolutionDetector] = None,
        tracer: Optional["TraceRecorder"] = None,
    ) -> None:
        if max_cycles < 1:
            raise SimulationError(f"max_cycles must be positive: {max_cycles}")
        ids = [agent.id for agent in agents]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate agent ids: {sorted(ids)}")
        if set(ids) != set(problem.agents):
            raise SimulationError(
                "agents do not match the problem: "
                f"expected {sorted(problem.agents)}, got {sorted(ids)}"
            )
        self.problem = problem
        self.agents: List[SimulatedAgent] = sorted(agents, key=lambda a: a.id)
        self.network = network if network is not None else SynchronousNetwork()
        self.max_cycles = max_cycles
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.detector = (
            detector
            if detector is not None
            else IncrementalSolutionDetector(problem)
        )
        #: Optional TraceRecorder-compatible observer (on_message /
        #: on_cycle_end hooks). Purely observational.
        self.tracer = tracer
        #: Seconds spent inside tracer hooks; subtracted from ``wall_time``
        #: to report ``sim_time``.
        self._tracer_seconds = 0.0
        self._ids = frozenset(ids)
        #: The cycle currently executing: 0 during initialization, then the
        #: 1-based cycle whose agent steps are running. Used to tag traced
        #: messages with the cycle they were *sent* in.
        self._current_cycle = 0
        for agent in self.agents:
            self.metrics.attach(agent.id, agent.check_counter)

    # -- driving --------------------------------------------------------------

    def run(self) -> RunResult:
        """Run to termination and return the trial's result."""
        started = time.perf_counter()
        for agent in self.agents:
            self._route(agent.id, agent.initialize())
        # The paper counts "cycles consumed until a solution is found"; if
        # the random initial values already solve the problem, that is zero.
        solved = self._solution_found()
        quiescent = False
        unsolvable = self._any_failure()
        while (
            not solved
            and not unsolvable
            and not quiescent
            and self.metrics.cycles < self.max_cycles
        ):
            self._current_cycle = self.metrics.cycles + 1
            inbox = self.network.deliver()
            for agent in self.agents:
                outgoing = agent.step(inbox.get(agent.id, ()))
                self._route(agent.id, outgoing)
            self.metrics.end_cycle()
            if self.tracer is not None:
                traced_at = time.perf_counter()
                self.tracer.on_cycle_end(
                    self.metrics.cycles, collect_assignment(self.agents)
                )
                self._tracer_seconds += time.perf_counter() - traced_at
            solved = self._solution_found()
            unsolvable = self._any_failure()
            if not solved and not unsolvable and self.network.is_idle():
                quiescent = True
        capped = (
            not solved
            and not unsolvable
            and not quiescent
            and self.metrics.cycles >= self.max_cycles
        )
        wall_time = time.perf_counter() - started
        return RunResult(
            solved=solved,
            unsolvable=unsolvable,
            capped=capped,
            quiescent=quiescent,
            cycles=self.metrics.cycles,
            maxcck=self.metrics.maxcck,
            total_checks=self.metrics.total_checks,
            messages_sent=self.network.sent_count,
            generated_nogoods=self.metrics.generated_count,
            redundant_generations=self.metrics.redundant_generations,
            assignment=collect_assignment(self.agents),
            wall_time=wall_time,
            sim_time=wall_time - self._tracer_seconds,
            max_history=list(self.metrics.max_history),
            logical_time=self.metrics.cycles,
        )

    # -- internals -------------------------------------------------------------

    def _route(self, sender: AgentId, outgoing: Sequence[Outgoing]) -> None:
        for recipient, message in outgoing:
            if recipient not in self._ids:
                raise SimulationError(
                    f"agent {sender} sent a message to unknown agent "
                    f"{recipient}"
                )
            if self.tracer is not None:
                traced_at = time.perf_counter()
                self.tracer.on_message(
                    self._current_cycle, sender, recipient, message
                )
                self._tracer_seconds += time.perf_counter() - traced_at
            self.network.send(sender, recipient, message)

    def _solution_found(self) -> bool:
        return self.detector.is_solution(collect_assignment(self.agents))

    def _any_failure(self) -> bool:
        return any(agent.failure is not None for agent in self.agents)
