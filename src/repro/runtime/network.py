"""Network models: how messages move between agents.

The paper's experiments run on "a simulator of a synchronous distributed
system": in each cycle all agents read incoming messages, compute, and send.
:class:`SynchronousNetwork` implements exactly that — a message sent during
cycle *t* is readable at cycle *t + 1*.

The paper notes (Section 5) that the algorithms are designed for fully
asynchronous systems and should be analysed on other network types too.
:class:`RandomDelayNetwork` provides that axis: each message independently
takes 1..max_delay cycles, optionally with per-channel FIFO ordering (without
FIFO, messages between the same pair of agents can overtake each other,
which is the harshest asynchrony the algorithms must tolerate).
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import SimulationError
from ..core.problem import AgentId
from .messages import Message
from .random_source import Seed, derive_rng

#: A delivered message tagged with its sender-declared envelope recipient.
Inbox = Dict[AgentId, List[Message]]


class Network:
    """Base class: buffers sent messages and delivers them per cycle."""

    def __init__(self) -> None:
        self.sent_count = 0
        self.delivered_count = 0

    def send(self, sender: AgentId, recipient: AgentId, message: Message) -> None:
        """Queue *message* from *sender* to *recipient*."""
        raise NotImplementedError

    def deliver(self) -> Inbox:
        """Advance one cycle and return the messages readable this cycle."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of messages queued but not yet delivered."""
        raise NotImplementedError

    def is_idle(self) -> bool:
        """True when no messages are in flight."""
        return self.pending() == 0


class SynchronousNetwork(Network):
    """The paper's model: every message takes exactly one cycle."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: List[Tuple[AgentId, Message]] = []

    def send(self, sender: AgentId, recipient: AgentId, message: Message) -> None:
        if recipient == sender:
            raise SimulationError(
                f"agent {sender} attempted to send a message to itself"
            )
        self._queue.append((recipient, message))
        self.sent_count += 1

    def deliver(self) -> Inbox:
        inbox: Inbox = {}
        for recipient, message in self._queue:
            inbox.setdefault(recipient, []).append(message)
            self.delivered_count += 1
        self._queue = []
        return inbox

    def pending(self) -> int:
        return len(self._queue)


class FixedDelayNetwork(Network):
    """Every message takes exactly *delay* cycles.

    This is the network the paper's Figure 2 model abstracts: a per-cycle
    communication delay of a known number of time-units. Running an
    algorithm on ``FixedDelayNetwork(d)`` and comparing the measured cycle
    count against ``d × cycles_at_delay_1`` empirically validates (or
    bounds) the linear model — see ``benchmarks/bench_extensions.py``.
    """

    def __init__(self, delay: int = 1) -> None:
        super().__init__()
        if delay < 1:
            raise SimulationError(f"delay must be at least 1, got {delay}")
        self.delay = delay
        self._now = 0
        self._queue: List[Tuple[int, int, AgentId, Message]] = []
        self._sequence = 0

    def send(self, sender: AgentId, recipient: AgentId, message: Message) -> None:
        if recipient == sender:
            raise SimulationError(
                f"agent {sender} attempted to send a message to itself"
            )
        self._queue.append(
            (self._now + self.delay, self._sequence, recipient, message)
        )
        self._sequence += 1
        self.sent_count += 1

    def deliver(self) -> Inbox:
        self._now += 1
        due = [item for item in self._queue if item[0] <= self._now]
        self._queue = [item for item in self._queue if item[0] > self._now]
        due.sort(key=lambda item: item[1])
        inbox: Inbox = {}
        for _arrival, _sequence, recipient, message in due:
            inbox.setdefault(recipient, []).append(message)
            self.delivered_count += 1
        return inbox

    def pending(self) -> int:
        return len(self._queue)


class LossyNetwork(Network):
    """Messages are dropped with probability *loss_rate* and retransmitted.

    The paper's algorithms assume reliable delivery ("an agent can send
    messages to other agents iff the agents know the addresses ... the
    delay in delivering a message is finite" is the standard DisCSP model).
    Real links lose packets; reliability is then implemented underneath,
    by acknowledgment and retransmission. This network models exactly that
    contract: each send is retried every *retransmit_after* cycles until a
    copy survives the loss process, so delivery is guaranteed but takes a
    geometrically distributed number of retransmission rounds.

    The net effect is a random-delay channel whose delay distribution comes
    from the loss process — which is why the DisCSP model's "finite delay"
    assumption is the right abstraction for lossy links, a point this class
    makes executable (see ``tests/runtime/test_lossy.py``).

    Per-channel FIFO is preserved: a retransmitted message never overtakes
    a later one, because delivery order is decided by send sequence among
    messages that have "arrived" (survived loss).

    The loss process draws from *rng* when given; otherwise from a stream
    derived from *seed* — pass the simulator/trial seed so delay schedules
    are part of the trial's reproducible state (identical sequentially and
    under ``--jobs N``), never from shared global RNG state.
    """

    def __init__(
        self,
        loss_rate: float = 0.3,
        retransmit_after: int = 1,
        rng: Optional[random.Random] = None,
        max_attempts: int = 1000,
        seed: Seed = 0,
    ) -> None:
        super().__init__()
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(
                f"loss_rate must be in [0, 1), got {loss_rate}"
            )
        if retransmit_after < 1:
            raise SimulationError(
                f"retransmit_after must be at least 1, got {retransmit_after}"
            )
        self.loss_rate = loss_rate
        self.retransmit_after = retransmit_after
        self.max_attempts = max_attempts
        self._rng = (
            rng if rng is not None else derive_rng(seed, "network", "lossy")
        )
        self._now = 0
        self._sequence = 0
        self.dropped_count = 0
        self.retransmissions = 0
        # (arrival_cycle, sequence, recipient, message)
        self._in_flight: List[Tuple[int, int, AgentId, Message]] = []
        # Per-channel hold-back (TCP-style): a message is not delivered
        # before its predecessors on the same (sender, recipient) channel.
        self._last_arrival: Dict[Tuple[AgentId, AgentId], int] = {}

    def send(self, sender: AgentId, recipient: AgentId, message: Message) -> None:
        if recipient == sender:
            raise SimulationError(
                f"agent {sender} attempted to send a message to itself"
            )
        # Simulate (re)transmission rounds until a copy gets through; the
        # arrival time reflects how many rounds were needed.
        attempts = 1
        while self._rng.random() < self.loss_rate:
            self.dropped_count += 1
            self.retransmissions += 1
            attempts += 1
            if attempts > self.max_attempts:
                raise SimulationError(
                    "message exceeded the retransmission budget; "
                    "loss_rate is unrealistically high"
                )
        arrival = self._now + 1 + (attempts - 1) * self.retransmit_after
        channel = (sender, recipient)
        arrival = max(arrival, self._last_arrival.get(channel, 0))
        self._last_arrival[channel] = arrival
        self._in_flight.append((arrival, self._sequence, recipient, message))
        self._sequence += 1
        self.sent_count += 1

    def deliver(self) -> Inbox:
        self._now += 1
        due = [item for item in self._in_flight if item[0] <= self._now]
        self._in_flight = [
            item for item in self._in_flight if item[0] > self._now
        ]
        # FIFO among arrivals: order by send sequence.
        due.sort(key=lambda item: item[1])
        inbox: Inbox = {}
        for _arrival, _sequence, recipient, message in due:
            inbox.setdefault(recipient, []).append(message)
            self.delivered_count += 1
        return inbox

    def pending(self) -> int:
        return len(self._in_flight)


class RandomDelayNetwork(Network):
    """Each message independently takes 1..max_delay cycles.

    With ``fifo=True`` messages between an ordered pair of agents are
    delivered in send order (a message's delivery time is clamped to be no
    earlier than the previously sent message on the same channel). With
    ``fifo=False`` messages can overtake each other arbitrarily.

    Deliveries within a cycle are ordered by (send order), independent of the
    heap's internal layout, so runs are reproducible for a fixed seed.

    Delay draws come from *rng* when given; otherwise from a stream derived
    from *seed* — pass the simulator/trial seed so the delay schedule is
    part of the trial's reproducible state (identical sequentially and
    under ``--jobs N``), never from shared global RNG state.
    """

    def __init__(
        self,
        max_delay: int = 3,
        rng: Optional[random.Random] = None,
        fifo: bool = True,
        seed: Seed = 0,
    ) -> None:
        super().__init__()
        if max_delay < 1:
            raise SimulationError(
                f"max_delay must be at least 1, got {max_delay}"
            )
        self.max_delay = max_delay
        self.fifo = fifo
        self._rng = (
            rng if rng is not None else derive_rng(seed, "network", "delay")
        )
        self._now = 0
        self._sequence = 0
        self._heap: List[Tuple[int, int, AgentId, Message]] = []
        self._last_delivery: Dict[Tuple[AgentId, AgentId], int] = {}

    def send(self, sender: AgentId, recipient: AgentId, message: Message) -> None:
        if recipient == sender:
            raise SimulationError(
                f"agent {sender} attempted to send a message to itself"
            )
        arrival = self._now + self._rng.randint(1, self.max_delay)
        if self.fifo:
            channel = (sender, recipient)
            arrival = max(arrival, self._last_delivery.get(channel, 0))
            self._last_delivery[channel] = arrival
        heapq.heappush(self._heap, (arrival, self._sequence, recipient, message))
        self._sequence += 1
        self.sent_count += 1

    def deliver(self) -> Inbox:
        self._now += 1
        due: List[Tuple[int, int, AgentId, Message]] = []
        while self._heap and self._heap[0][0] <= self._now:
            due.append(heapq.heappop(self._heap))
        due.sort(key=lambda item: item[1])
        inbox: Inbox = {}
        for _arrival, _sequence, recipient, message in due:
            inbox.setdefault(recipient, []).append(message)
            self.delivered_count += 1
        return inbox

    def pending(self) -> int:
        return len(self._heap)
