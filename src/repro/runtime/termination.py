"""Detecting when a simulated run is done.

The paper's simulator observes the system globally: a trial ends when the
agents' current values form a solution ("cycles consumed until a solution is
found"), or when the cycle cap (10 000 in the paper) is hit. This module
provides that observer, plus a stricter stability-aware variant used by the
asynchronous-network experiments: under message delays a *transient* global
assignment can look like a solution while contradicting information is still
in flight, and whether to count that as solved is a modelling choice.

For the paper's reproduction the plain detector is correct — the paper's
own simulator does exactly this — and for a consistent assignment of a CSP
in-flight messages can only confirm it, never invalidate it (nogoods are
entailed by the problem), so "solution observed" is safe in both modes.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..core.problem import DisCSP
from ..core.variables import Value, VariableId
from .network import Network


class GlobalSolutionDetector:
    """Checks the agents' combined assignment against the original problem.

    Only the *original* nogoods are checked. Learned nogoods are logically
    entailed by the original ones, so they cannot exclude a true solution,
    and checking them would make termination depend on the learning method.
    """

    def __init__(self, problem: DisCSP) -> None:
        self._problem = problem

    def is_solution(self, assignment: Mapping[VariableId, Value]) -> bool:
        """True if *assignment* solves the problem."""
        return self._problem.is_solution(assignment)


class QuiescentSolutionDetector(GlobalSolutionDetector):
    """A solution only counts once the network is also idle.

    Used by the asynchronous-network experiments to report *stable*
    termination: the assignment solves the problem and no messages are in
    flight that could still perturb agents into moving.
    """

    def __init__(self, problem: DisCSP, network: Network) -> None:
        super().__init__(problem)
        self._network = network

    def is_solution(self, assignment: Mapping[VariableId, Value]) -> bool:
        return self._network.is_idle() and super().is_solution(assignment)


def collect_assignment(agents) -> Dict[VariableId, Value]:
    """Merge the local assignments of *agents* into one global assignment."""
    merged: Dict[VariableId, Value] = {}
    for agent in agents:
        merged.update(agent.local_assignment())
    return merged
