"""Detecting when a simulated run is done.

The paper's simulator observes the system globally: a trial ends when the
agents' current values form a solution ("cycles consumed until a solution is
found"), or when the cycle cap (10 000 in the paper) is hit. This module
provides that observer, plus a stricter stability-aware variant used by the
asynchronous-network experiments: under message delays a *transient* global
assignment can look like a solution while contradicting information is still
in flight, and whether to count that as solved is a modelling choice.

For the paper's reproduction the plain detector is correct — the paper's
own simulator does exactly this — and for a consistent assignment of a CSP
in-flight messages can only confirm it, never invalidate it (nogoods are
entailed by the problem), so "solution observed" is safe in both modes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Set, Tuple

from ..core.nogood import Nogood
from ..core.problem import DisCSP
from ..core.variables import Value, VariableId
from .network import Network

if TYPE_CHECKING:
    from .agent import SimulatedAgent


class GlobalSolutionDetector:
    """Checks the agents' combined assignment against the original problem.

    Only the *original* nogoods are checked. Learned nogoods are logically
    entailed by the original ones, so they cannot exclude a true solution,
    and checking them would make termination depend on the learning method.
    """

    def __init__(self, problem: DisCSP) -> None:
        self._problem = problem

    def is_solution(self, assignment: Mapping[VariableId, Value]) -> bool:
        """True if *assignment* solves the problem."""
        return self._problem.is_solution(assignment)


class IncrementalSolutionDetector(GlobalSolutionDetector):
    """A stateful detector that re-evaluates only what a cycle changed.

    :class:`GlobalSolutionDetector` re-evaluates every original nogood on
    every call — O(constraints) work per cycle even when a single agent
    moved. This variant keeps the last observed assignment and a per-nogood
    violated flag; each call diffs the new assignment against the previous
    one and re-evaluates only the nogoods adjacent (via the problem's
    variable→constraint index) to the variables that changed, maintaining a
    running violated count. Per cycle that is O(variables) for the diff plus
    O(constraints touching changed variables) for re-evaluation, instead of
    O(all constraints).

    Detection is purely observational: it performs no
    :meth:`~repro.core.store.NogoodStore.is_violated` calls, so it
    contributes nothing to the paper's ``maxcck``/check accounting — exactly
    like the full re-scan it replaces.

    The detector is stateful and therefore **per-run**: build a fresh one
    per simulator (the simulator's default does this). A positive answer is
    re-verified against the full problem before being returned, so a
    bookkeeping bug can never report a false solution.
    """

    def __init__(self, problem: DisCSP) -> None:
        super().__init__(problem)
        csp = problem.csp
        self._variables: Tuple[VariableId, ...] = csp.variables
        self._domains = {
            variable: csp.domain_of(variable) for variable in self._variables
        }
        # Adjacency and flags key nogoods by identity: the tuples returned
        # by relevant_nogoods() hold the same objects as csp.nogoods, and
        # identity keys cost one pointer hash instead of hashing pair sets.
        self._adjacent: Dict[VariableId, Tuple[Nogood, ...]] = {
            variable: csp.relevant_nogoods(variable)
            for variable in self._variables
        }
        self._violated_flag: Dict[int, bool] = {
            id(nogood): False for nogood in csp.nogoods
        }
        self._violated_count = 0
        #: Variables currently unassigned or holding an out-of-domain value.
        self._bad_vars: Set[VariableId] = set(self._variables)
        self._last: Dict[VariableId, Value] = {}

    def is_solution(self, assignment: Mapping[VariableId, Value]) -> bool:
        changed = self._diff(assignment)
        if changed:
            self._apply(changed, assignment)
        if self._bad_vars or self._violated_count:
            return False
        # Cheap paranoia: a full check runs only on candidate solutions
        # (at most once per trial plus the rare already-solved cycle 0).
        return self._problem.is_solution(assignment)

    # -- internals ---------------------------------------------------------

    def _diff(
        self, assignment: Mapping[VariableId, Value]
    ) -> List[VariableId]:
        """The variables whose value differs from the last observation."""
        last = self._last
        missing = object()
        changed = [
            variable
            for variable in self._variables
            if assignment.get(variable, missing) != last.get(variable, missing)
        ]
        return changed

    def _apply(
        self,
        changed: List[VariableId],
        assignment: Mapping[VariableId, Value],
    ) -> None:
        """Fold the changed variables into the detector's running state."""
        touched: Dict[int, Nogood] = {}
        for variable in changed:
            if variable in assignment:
                value = assignment[variable]
                self._last[variable] = value
                if value in self._domains[variable]:
                    self._bad_vars.discard(variable)
                else:
                    self._bad_vars.add(variable)
            else:
                self._last.pop(variable, None)
                self._bad_vars.add(variable)
            for nogood in self._adjacent[variable]:
                touched[id(nogood)] = nogood
        flags = self._violated_flag
        for key, nogood in touched.items():
            now = nogood.prohibits(self._last)
            if now != flags[key]:
                flags[key] = now
                self._violated_count += 1 if now else -1


class QuiescentSolutionDetector(GlobalSolutionDetector):
    """A solution only counts once the network is also idle.

    Used by the asynchronous-network experiments to report *stable*
    termination: the assignment solves the problem and no messages are in
    flight that could still perturb agents into moving.
    """

    def __init__(self, problem: DisCSP, network: Network) -> None:
        super().__init__(problem)
        self._network = network

    def is_solution(self, assignment: Mapping[VariableId, Value]) -> bool:
        return self._network.is_idle() and super().is_solution(assignment)


def collect_assignment(
    agents: Iterable["SimulatedAgent"],
) -> Dict[VariableId, Value]:
    """Merge the local assignments of *agents* into one global assignment."""
    merged: Dict[VariableId, Value] = {}
    for agent in agents:
        merged.update(agent.local_assignment())
    return merged
