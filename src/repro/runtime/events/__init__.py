"""Discrete-event asynchronous runtime with pluggable transports.

The second execution backend next to the synchronous cycle simulator
(:mod:`repro.runtime.simulator`): a seeded discrete-event engine that
activates agents only when mail arrives, with the message medium behind a
small :class:`~repro.runtime.events.transport.Transport` protocol — a
deterministic in-process priority-queue transport (the default; with unit
latency it reproduces the synchronous simulator trial-for-trial) and a
multiprocess socket transport for genuinely concurrent agents. See the
module docstrings of :mod:`~repro.runtime.events.engine` and
:mod:`~repro.runtime.events.socket_transport` for the execution and
metrics semantics, and ``EXPERIMENTS.md`` for how the logical-time
measures relate to the paper's ``cycle``/``maxcck``.
"""

from .controlled import ChoicePoint, ScheduledTransport
from .engine import ACTIVATION_MODES, EventDrivenSimulator
from .socket_transport import run_socket_trial
from .transport import (
    Delivery,
    InProcessTransport,
    InProcessTransportFactory,
    LatencyModel,
    Transport,
    TransportFactory,
    UniformLatency,
    UnitLatency,
)

__all__ = [
    "ACTIVATION_MODES",
    "ChoicePoint",
    "Delivery",
    "EventDrivenSimulator",
    "ScheduledTransport",
    "InProcessTransport",
    "InProcessTransportFactory",
    "LatencyModel",
    "Transport",
    "TransportFactory",
    "UniformLatency",
    "UnitLatency",
    "run_socket_trial",
]
