"""Pluggable transports for the discrete-event runtime.

The engine (:mod:`repro.runtime.events.engine`) never schedules deliveries
itself; it hands every outgoing message to a :class:`Transport` and asks the
transport which logical timestamp comes next. That split is what makes the
backend pluggable:

* :class:`InProcessTransport` — the default: a seeded priority queue of
  ``(arrival time, send sequence)`` keys. Given a seed it is bit-
  reproducible, so event-driven trials are part of the repo's determinism
  contract exactly like the synchronous simulator's networks.
* :class:`~repro.runtime.events.socket_transport.SocketRouter` — real
  sockets between genuinely concurrent agent processes (wall-clock, not
  deterministic; see its module docstring).

Latency is a separate, equally pluggable axis (:class:`LatencyModel`):
:class:`UnitLatency` gives the paper's one-unit-per-message medium (parity
mode), :class:`UniformLatency` draws a seeded per-message delay in
``1..max_delay`` — the event-driven analogue of
:class:`~repro.runtime.network.RandomDelayNetwork`. The FIFO clamp lives in
the transport (it needs per-channel state), not in the latency model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
)

from ...core.exceptions import SimulationError
from ...core.problem import AgentId
from ..messages import Message
from ..random_source import Seed, derive_rng

if TYPE_CHECKING:
    import random


@dataclass(frozen=True)
class Delivery:
    """One message arriving at its recipient at a logical timestamp."""

    time: int
    sequence: int
    sender: AgentId
    recipient: AgentId
    message: Message


class LatencyModel(Protocol):
    """How long a message takes, in logical time units (at least 1)."""

    def delay(self, sender: AgentId, recipient: AgentId) -> int:
        """The latency of one message from *sender* to *recipient*."""
        ...


class UnitLatency:
    """Every message takes exactly one logical time unit.

    This is the paper's synchronous medium re-expressed as a latency model;
    it is what parity mode runs on.
    """

    def delay(self, sender: AgentId, recipient: AgentId) -> int:
        del sender, recipient
        return 1


class UniformLatency:
    """Seeded per-message uniform latency in ``1..max_delay``.

    Draws come from *rng* when given; otherwise from a stream derived from
    *seed* — pass the trial seed so the latency schedule is part of the
    trial's reproducible state (identical sequentially and under
    ``--jobs N``), never from shared global RNG state.
    """

    def __init__(
        self,
        max_delay: int = 3,
        seed: Seed = 0,
        rng: Optional["random.Random"] = None,
    ) -> None:
        if max_delay < 1:
            raise SimulationError(
                f"max_delay must be at least 1, got {max_delay}"
            )
        self.max_delay = max_delay
        self._rng = (
            rng if rng is not None else derive_rng(seed, "events", "latency")
        )

    def delay(self, sender: AgentId, recipient: AgentId) -> int:
        del sender, recipient
        return self._rng.randint(1, self.max_delay)


class Transport(Protocol):
    """What the event engine requires of a message medium.

    The engine calls :meth:`send` while executing an epoch at logical time
    ``now``; the transport decides the arrival timestamp. :meth:`next_time`
    and :meth:`pop_due` drive the event loop; deliveries within a timestamp
    are returned in deterministic (send sequence) order so runs are
    reproducible for a fixed seed.
    """

    sent_count: int

    def send(
        self, sender: AgentId, recipient: AgentId, message: Message, now: int
    ) -> None:
        """Schedule *message*, sent at logical time *now*."""
        ...

    def next_time(self) -> Optional[int]:
        """The earliest pending arrival timestamp, or None when idle."""
        ...

    def pop_due(self, now: int) -> List[Delivery]:
        """Remove and return every delivery arriving exactly at *now*."""
        ...

    def pending(self) -> int:
        """Number of messages in flight."""
        ...


class InProcessTransport:
    """The default transport: a deterministic in-process priority queue.

    Arrival timestamps come from the latency model; ties are broken by send
    sequence, so the delivery order is a pure function of the send order
    and the (seeded) latency draws — bit-reproducible, like the cycle
    simulator's networks. With ``fifo=True`` arrivals on the same
    ``(sender, recipient)`` channel are clamped to send order; with
    ``fifo=False`` messages can overtake, the harshest asynchrony the
    algorithms must tolerate.
    """

    def __init__(
        self, latency: Optional[LatencyModel] = None, fifo: bool = True
    ) -> None:
        self.latency: LatencyModel = (
            latency if latency is not None else UnitLatency()
        )
        self.fifo = fifo
        self.sent_count = 0
        self.delivered_count = 0
        self._sequence = 0
        self._heap: List[Tuple[int, int, AgentId, AgentId, Message]] = []
        self._last_arrival: Dict[Tuple[AgentId, AgentId], int] = {}

    def send(
        self, sender: AgentId, recipient: AgentId, message: Message, now: int
    ) -> None:
        if recipient == sender:
            raise SimulationError(
                f"agent {sender} attempted to send a message to itself"
            )
        delay = self.latency.delay(sender, recipient)
        if delay < 1:
            raise SimulationError(
                f"latency model returned a non-positive delay: {delay}"
            )
        arrival = now + delay
        if self.fifo:
            channel = (sender, recipient)
            arrival = max(arrival, self._last_arrival.get(channel, 0))
            self._last_arrival[channel] = arrival
        heapq.heappush(
            self._heap, (arrival, self._sequence, sender, recipient, message)
        )
        self._sequence += 1
        self.sent_count += 1

    def next_time(self) -> Optional[int]:
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop_due(self, now: int) -> List[Delivery]:
        due: List[Delivery] = []
        while self._heap and self._heap[0][0] <= now:
            arrival, sequence, sender, recipient, message = heapq.heappop(
                self._heap
            )
            due.append(Delivery(arrival, sequence, sender, recipient, message))
            self.delivered_count += 1
        return due

    def pending(self) -> int:
        return len(self._heap)


# -- picklable per-trial factories ---------------------------------------------


@dataclass(frozen=True)
class InProcessTransportFactory:
    """A per-trial :class:`InProcessTransport` factory.

    ``max_delay=1`` selects :class:`UnitLatency` (parity mode — the
    default); anything larger selects :class:`UniformLatency` seeded from
    the trial seed. A frozen top-level dataclass (not a closure) so it
    pickles into ``--jobs N`` worker processes, mirroring
    :class:`~repro.experiments.runner.RandomDelayNetworkFactory`.
    """

    max_delay: int = 1
    fifo: bool = True

    def __call__(self, seed: Seed) -> InProcessTransport:
        latency: LatencyModel = (
            UnitLatency()
            if self.max_delay == 1
            else UniformLatency(max_delay=self.max_delay, seed=seed)
        )
        return InProcessTransport(latency=latency, fifo=self.fifo)


#: Builds a fresh transport per trial (latency models carry RNG state).
TransportFactory = Callable[[Seed], Transport]
