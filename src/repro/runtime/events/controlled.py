"""A schedule-controlled transport: the DPOR explorer's replay seam.

The verifier (:mod:`repro.verify`) needs to *choose* delivery orders, not
sample them: given the same agents and seed, it must be able to replay a
prefix of scheduling decisions and then branch. :class:`ScheduledTransport`
turns the engine's transport seam into exactly that choice point:

* every ``pop_due`` delivers **one** message — the engine's epoch becomes a
  single handler invocation, so the schedule fully serializes handler
  execution (the granularity DPOR reasons about);
* the set of deliverable messages (the *enabled set*) is the per-channel
  FIFO heads — the transport honors the same per-``(sender, recipient)``
  ordering guarantee as :class:`InProcessTransport` with ``fifo=True``, and
  explores every reordering *across* channels, which is precisely the
  freedom :class:`~repro.runtime.events.transport.UniformLatency` has;
* which head is delivered comes from a replayable ``schedule`` — a sequence
  of indices into the (deterministically sorted) enabled set; when the
  schedule is exhausted, index 0 is chosen, so a schedule is a *prefix* of
  decisions and the run completes deterministically beyond it.

Every decision is recorded in ``choice_log`` (the enabled set and the index
taken) and every delivery in ``delivery_log``; the explorer reads both to
find the branch points of the next schedules and to check per-delivery
invariants (e.g. no lost nogoods) after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...core.exceptions import SimulationError
from ...core.problem import AgentId
from ..messages import Message
from .transport import Delivery

#: Observer invoked at every scheduling decision (the choice-point hook).
ChoiceHook = Callable[["ChoicePoint"], None]


@dataclass(frozen=True)
class ChoicePoint:
    """One scheduling decision: what was deliverable, what was chosen."""

    time: int
    enabled: Tuple[Delivery, ...]
    chosen: int

    @property
    def branching(self) -> bool:
        """True when the decision was a real choice (>1 enabled head)."""
        return len(self.enabled) > 1


class ScheduledTransport:
    """A :class:`~repro.runtime.events.transport.Transport` driven by an
    explicit schedule of delivery choices.

    Pending messages are kept in send order; the enabled set at each epoch
    is the first pending message of every ``(sender, recipient)`` channel,
    sorted by ``(sender, recipient, sequence)`` so index *k* names the same
    delivery on every replay of the same prefix.
    """

    def __init__(
        self,
        schedule: Sequence[int] = (),
        on_choice: Optional[ChoiceHook] = None,
    ) -> None:
        self.sent_count = 0
        self.delivered_count = 0
        self.on_choice = on_choice
        self.choice_log: List[ChoicePoint] = []
        self.delivery_log: List[Delivery] = []
        self._schedule: Tuple[int, ...] = tuple(schedule)
        self._cursor = 0
        self._sequence = 0
        self._clock = 0
        self._pending: List[Delivery] = []

    # -- Transport protocol -----------------------------------------------------

    def send(
        self, sender: AgentId, recipient: AgentId, message: Message, now: int
    ) -> None:
        if recipient == sender:
            raise SimulationError(
                f"agent {sender} attempted to send a message to itself"
            )
        self._pending.append(
            Delivery(now, self._sequence, sender, recipient, message)
        )
        self._sequence += 1
        self.sent_count += 1

    def next_time(self) -> Optional[int]:
        """One epoch past the last delivery — epochs are decision steps."""
        if not self._pending:
            return None
        return self._clock + 1

    def pop_due(self, now: int) -> List[Delivery]:
        self._clock = max(self._clock, now)
        if not self._pending:
            return []
        enabled = self.enabled()
        if self._cursor < len(self._schedule):
            index = self._schedule[self._cursor]
        else:
            index = 0
        self._cursor += 1
        if not 0 <= index < len(enabled):
            raise SimulationError(
                f"schedule chose delivery {index} but only "
                f"{len(enabled)} channel heads are enabled at time {now}"
            )
        point = ChoicePoint(time=now, enabled=enabled, chosen=index)
        self.choice_log.append(point)
        if self.on_choice is not None:
            self.on_choice(point)
        chosen = enabled[index]
        self._pending.remove(chosen)
        delivered = replace(chosen, time=now)
        self.delivery_log.append(delivered)
        self.delivered_count += 1
        return [delivered]

    def pending(self) -> int:
        return len(self._pending)

    # -- introspection ----------------------------------------------------------

    def enabled(self) -> Tuple[Delivery, ...]:
        """The deliverable messages: per-channel FIFO heads, sorted."""
        heads: Dict[Tuple[AgentId, AgentId], Delivery] = {}
        for delivery in self._pending:
            channel = (delivery.sender, delivery.recipient)
            if channel not in heads:
                heads[channel] = delivery
        return tuple(heads[channel] for channel in sorted(heads))

    @property
    def choices_taken(self) -> Tuple[int, ...]:
        """The full decision sequence of the run so far (replayable)."""
        return tuple(point.chosen for point in self.choice_log)
