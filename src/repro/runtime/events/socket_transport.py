"""A multiprocess socket transport: genuinely concurrent agents.

The in-process transport *simulates* asynchrony on one deterministic event
queue. This module runs the real thing: every agent lives in its own OS
process, acts only when mail arrives on its TCP socket, and races the other
agents on the wall clock — the execution model the paper's Section 5 points
at ("a fully asynchronous distributed system"). It exists to demonstrate
that the algorithms, unchanged, tolerate true concurrency; it is *not*
deterministic, and the determinism-focused measures are replaced by their
standard asynchronous analogues:

* ``maxcck`` is reported as the **NCCC** (number of concurrent constraint
  checks, Meisels et al.): every envelope carries the sender's check clock,
  receivers take the max of their own and the incoming clocks before
  stepping and add their new checks after — a Lamport clock over nogood
  checks. Under lockstep execution NCCC coincides with the paper's
  ``maxcck``; under true concurrency it is the honest generalization.
* ``cycles`` is the maximum number of activations any one agent performed.
* ``redundant_generations`` is unavailable (it needs a global view of all
  generated nogoods) and reported as 0.

Topology is a star: a router thread in the calling process accepts one TCP
connection per agent process, forwards envelopes, observes reported local
assignments for solution detection (the same global-observer convention as
the simulators), and tracks quiescence by message conservation — a
forwarded message increments the in-flight count, an agent's post-step
report decrements it by the number it consumed; because an agent's outgoing
envelopes precede its report on its own socket, the count only reaches zero
when the system is truly idle.

Everything here is stdlib (``socket``, ``pickle``, ``struct``,
``multiprocessing``); algorithms travel to agent processes by registry
label, exactly like :mod:`repro.experiments.parallel` workers.
"""

from __future__ import annotations

import multiprocessing
import pickle
import selectors
import socket
import struct
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...core.exceptions import SimulationError
from ...core.problem import AgentId, DisCSP
from ...core.variables import Value, VariableId
from ..messages import Message
from ..random_source import Seed
from ..simulator import DEFAULT_MAX_CYCLES, RunResult
from ..termination import GlobalSolutionDetector

_LENGTH = struct.Struct("!I")

#: Router-side grace period (seconds) before declaring quiescence.
_QUIESCENCE_GRACE = 0.05


# -- wire format ---------------------------------------------------------------


@dataclass(frozen=True)
class Envelope:
    """One algorithm message in flight, stamped with the sender's NCCC."""

    sender: AgentId
    recipient: AgentId
    message: Message
    clock: int


@dataclass(frozen=True)
class Report:
    """An agent's post-step report to the router.

    ``assignment`` is a sorted tuple of pairs, not a dict: the report is a
    wire payload, and a mutable container inside a frozen frame is only
    shallow-frozen (repro-lint P2) — the agent process could mutate it
    after handing it to the mailbox.
    """

    agent_id: AgentId
    consumed: int
    assignment: Tuple[Tuple[VariableId, Value], ...]
    clock: int
    checks: int
    activations: int
    generated: int
    failed: bool


@dataclass(frozen=True)
class Stop:
    """Router -> agent: drain and exit."""


class SocketMailbox:
    """Length-prefixed pickle frames over one socket."""

    def __init__(self, conn: socket.socket) -> None:
        self.conn = conn
        self._buffer = b""

    def send(self, item: object) -> None:
        payload = pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
        self.conn.sendall(_LENGTH.pack(len(payload)) + payload)

    def recv(self, timeout: Optional[float]) -> Optional[object]:
        """One frame, or None on timeout. Raises EOFError on a closed peer."""
        self.conn.settimeout(timeout)
        while True:
            frame = self._take_frame()
            if frame is not None:
                return pickle.loads(frame)
            try:
                chunk = self.conn.recv(65536)
            except (socket.timeout, BlockingIOError):
                return None
            if not chunk:
                raise EOFError("peer closed the connection")
            self._buffer += chunk

    def _take_frame(self) -> Optional[bytes]:
        if len(self._buffer) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack_from(self._buffer)
        end = _LENGTH.size + length
        if len(self._buffer) < end:
            return None
        frame = self._buffer[_LENGTH.size:end]
        self._buffer = self._buffer[end:]
        return frame

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


# -- the agent process ---------------------------------------------------------


def _agent_process(
    host: str,
    port: int,
    agent_id: AgentId,
    problem: DisCSP,
    algorithm_name: str,
    seed: Seed,
    batch_window: float,
) -> None:
    """Entry point of one agent process: connect, announce, act on mail."""
    # Imported here so the (possibly spawned) child resolves everything
    # inside its own interpreter.
    from ...algorithms.registry import algorithm_by_name
    from ...experiments.runner import random_initial_assignment
    from ..metrics import MetricsCollector

    metrics = MetricsCollector()
    initial = random_initial_assignment(problem, seed)
    agents = algorithm_by_name(algorithm_name).build(
        problem, metrics, seed, initial
    )
    (agent,) = [a for a in agents if a.id == agent_id]
    conn = socket.create_connection((host, port))
    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    mailbox = SocketMailbox(conn)
    mailbox.send(agent_id)

    clock = 0
    activations = 0

    def dispatch(outgoing: List[Tuple[AgentId, Message]], consumed: int) -> None:
        nonlocal clock
        clock += agent.check_counter.total - checks_before
        for recipient, message in outgoing:
            mailbox.send(Envelope(agent.id, recipient, message, clock))
        mailbox.send(
            Report(
                agent_id=agent.id,
                consumed=consumed,
                assignment=tuple(sorted(agent.local_assignment().items())),
                clock=clock,
                checks=agent.check_counter.total,
                activations=activations,
                generated=metrics.generated_count,
                failed=agent.failure is not None,
            )
        )

    checks_before = agent.check_counter.total
    dispatch(agent.initialize(), consumed=0)
    try:
        while True:
            # Block for mail; poll instead when internal work is pending,
            # so a capped intra-round drain is retried without new mail.
            item = mailbox.recv(
                timeout=0.005 if agent.has_pending_work() else None
            )
            if isinstance(item, Stop):
                break
            pending: List[Message] = [item.message] if isinstance(
                item, Envelope
            ) else []
            clocks = [item.clock] if isinstance(item, Envelope) else []
            # Short batching window: drain whatever else already arrived so
            # one step sees a burst, like the simulators' per-epoch inboxes.
            deadline = time.monotonic() + batch_window
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                extra = mailbox.recv(timeout=remaining)
                if extra is None:
                    break
                if isinstance(extra, Stop):
                    return
                assert isinstance(extra, Envelope)
                pending.append(extra.message)
                clocks.append(extra.clock)
            if not pending and not agent.has_pending_work():
                continue
            clock = max([clock, *clocks])
            checks_before = agent.check_counter.total
            activations += 1
            dispatch(agent.step(pending), consumed=len(pending))
    except (EOFError, OSError):
        pass
    finally:
        mailbox.close()


# -- the router / trial runner -------------------------------------------------


@dataclass
class _RouterState:
    in_flight: int = 0
    forwarded: int = 0
    reported: Dict[AgentId, Report] = field(default_factory=dict)
    assignment: Dict[VariableId, Value] = field(default_factory=dict)


def run_socket_trial(
    problem: DisCSP,
    algorithm_name: str,
    seed: Seed,
    max_activations: int = DEFAULT_MAX_CYCLES,
    timeout: float = 60.0,
    batch_window: float = 0.002,
    host: str = "127.0.0.1",
) -> RunResult:
    """One trial with every agent in its own process, messages over TCP.

    ``algorithm_name`` must be a registry label (``"AWC+Rslv"``, ``"DB"``,
    ...) so each agent process can rebuild its agent locally — closures do
    not cross process boundaries. The trial ends when the router observes a
    solution, an agent reports failure (unsolvable), the system quiesces,
    any agent exceeds *max_activations* (``capped``), or *timeout* seconds
    elapse (also ``capped``).
    """
    agent_ids = sorted(problem.agents)
    if len(agent_ids) < 2:
        raise SimulationError(
            "the socket transport needs at least two agents"
        )
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, 0))
    listener.listen(len(agent_ids))
    port = listener.getsockname()[1]

    context = multiprocessing.get_context()
    processes = [
        context.Process(
            target=_agent_process,
            args=(
                host,
                port,
                agent_id,
                problem,
                algorithm_name,
                seed,
                batch_window,
            ),
            daemon=True,
        )
        for agent_id in agent_ids
    ]
    started = time.perf_counter()
    for process in processes:
        process.start()

    mailboxes: Dict[AgentId, SocketMailbox] = {}
    try:
        listener.settimeout(timeout)
        while len(mailboxes) < len(agent_ids):
            conn, _addr = listener.accept()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            mailbox = SocketMailbox(conn)
            hello = mailbox.recv(timeout=timeout)
            if not isinstance(hello, int) or hello not in problem.agents:
                raise SimulationError(f"unexpected handshake: {hello!r}")
            mailboxes[hello] = mailbox
        result = _route(
            problem,
            mailboxes,
            max_activations=max_activations,
            deadline=started + timeout,
        )
    finally:
        for mailbox in mailboxes.values():
            try:
                mailbox.send(Stop())
            except OSError:
                pass
        listener.close()
        for process in processes:
            process.join(timeout=5.0)
        for process in processes:
            if process.is_alive():  # pragma: no cover - cleanup path
                process.terminate()
                process.join(timeout=5.0)
        for mailbox in mailboxes.values():
            mailbox.close()
    result.wall_time = time.perf_counter() - started
    result.sim_time = result.wall_time
    return result


def _route(
    problem: DisCSP,
    mailboxes: Dict[AgentId, SocketMailbox],
    max_activations: int,
    deadline: float,
) -> RunResult:
    """Forward envelopes until a terminal condition; build the RunResult."""
    detector = GlobalSolutionDetector(problem)
    state = _RouterState()
    solved = False
    unsolvable = False
    quiescent = False
    capped = False
    idle_since: Optional[float] = None
    selector = selectors.DefaultSelector()
    for agent_id, mailbox in mailboxes.items():
        selector.register(
            mailbox.conn, selectors.EVENT_READ, (agent_id, mailbox)
        )
    try:
        while not (solved or unsolvable or quiescent or capped):
            now = time.perf_counter()
            if now >= deadline:
                capped = True
                break
            events = selector.select(timeout=min(0.05, deadline - now))
            progressed = False
            for key, _mask in events:
                _agent_id, mailbox = key.data
                while True:
                    try:
                        item = mailbox.recv(timeout=0)
                    except EOFError:
                        selector.unregister(key.fileobj)
                        item = None
                    if item is None:
                        break
                    progressed = True
                    _handle(item, mailboxes, state)
            if progressed:
                idle_since = None
                solved = len(state.reported) == len(mailboxes) and (
                    detector.is_solution(state.assignment)
                )
                unsolvable = any(
                    report.failed for report in state.reported.values()
                )
                capped = any(
                    report.activations >= max_activations
                    for report in state.reported.values()
                )
            elif (
                state.in_flight == 0
                and len(state.reported) == len(mailboxes)
            ):
                if idle_since is None:
                    idle_since = time.perf_counter()
                elif time.perf_counter() - idle_since >= _QUIESCENCE_GRACE:
                    quiescent = True
    finally:
        selector.close()
    reports = state.reported.values()
    return RunResult(
        solved=solved,
        unsolvable=unsolvable and not solved,
        capped=capped and not solved and not unsolvable,
        quiescent=quiescent,
        cycles=max((r.activations for r in reports), default=0),
        maxcck=max((r.clock for r in reports), default=0),
        total_checks=sum(r.checks for r in reports),
        messages_sent=state.forwarded,
        generated_nogoods=sum(r.generated for r in reports),
        redundant_generations=0,
        assignment=dict(state.assignment),
        logical_time=max((r.clock for r in reports), default=0),
    )


def _handle(
    item: object,
    mailboxes: Dict[AgentId, SocketMailbox],
    state: _RouterState,
) -> None:
    if isinstance(item, Envelope):
        target = mailboxes.get(item.recipient)
        if target is None:
            raise SimulationError(
                f"agent {item.sender} sent a message to unknown agent "
                f"{item.recipient}"
            )
        state.in_flight += 1
        state.forwarded += 1
        target.send(item)
    elif isinstance(item, Report):
        state.in_flight -= item.consumed
        state.reported[item.agent_id] = item
        state.assignment.update(dict(item.assignment))
    else:  # pragma: no cover - defensive
        raise SimulationError(f"unexpected frame from agent: {item!r}")
