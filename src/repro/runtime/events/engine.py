"""The discrete-event asynchronous simulator.

Section 5 of the paper notes that AWC and its nogood-learning variants "are
designed for a fully asynchronous distributed system"; the experiments
nevertheless run on a lockstep cycle simulator. This engine is the
asynchronous execution backend: instead of advancing every agent once per
cycle, it keeps a priority queue of message-delivery events and activates an
agent only when mail arrives — the paper's "agents act on received messages"
model.

Logical time and the paper's measures
-------------------------------------

Arrival timestamps are logical, not seconds: the transport's latency model
assigns each message an integer delay, and the engine processes all
deliveries sharing a timestamp as one *epoch* (activating the recipients in
agent-id order, a deterministic tie-break). The paper's measures carry over
as logical-time analogues, collected by the same
:class:`~repro.runtime.metrics.MetricsCollector`:

* ``cycles`` — the number of epochs executed (with unit latency this is
  exactly the synchronous simulator's cycle count);
* ``maxcck`` — the sum over epochs of the per-epoch maximum of nogood
  checks, the direct generalization of the paper's "sum of the maximal
  number of nogood checks performed by agents at each cycle";
* ``logical_time`` — the timestamp of the last epoch (equals ``cycles``
  under unit latency; grows faster under random latency).

Parity mode
-----------

With the default :class:`~repro.runtime.events.transport.UnitLatency`
transport the engine reproduces the
:class:`~repro.runtime.simulator.SynchronousSimulator` trial-for-trial:
every message sent during epoch *t* arrives at *t + 1*, epochs are
consecutive integers, and agents that received no mail would have been
no-ops anyway (``step([])`` is a no-op for every algorithm in the repo;
agents with *internal* pending work — e.g. the multi-variable AWC agent's
carryover queue — declare it via
:meth:`~repro.runtime.agent.SimulatedAgent.has_pending_work` and get a
wakeup event at the next timestamp). The parity tests assert equality of
``solved``/``cycles``/``maxcck``/checks/messages/assignments on the paper's
benchmark families.

Termination mirrors the synchronous simulator: a global observer sees a
solution, an agent derives the empty nogood, the event queue drains without
a solution (quiescence), or the epoch cap is reached (``capped=True``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set

from ...core.exceptions import SimulationError
from ...core.problem import AgentId, DisCSP
from ..agent import SimulatedAgent
from ..messages import Message, Outgoing
from ..metrics import MetricsCollector
from ..simulator import DEFAULT_MAX_CYCLES, RunResult
from ..termination import (
    GlobalSolutionDetector,
    IncrementalSolutionDetector,
    collect_assignment,
)
from ..trace import TraceRecorder
from .transport import InProcessTransport, Transport

#: Activation policies: "mail" steps only agents with deliveries (plus
#: wakeups); "all" steps every agent each epoch (a lockstep cross-check).
ACTIVATION_MODES = ("mail", "all")


class EventDrivenSimulator:
    """Runs agents to completion on a discrete-event schedule.

    Drop-in counterpart of
    :class:`~repro.runtime.simulator.SynchronousSimulator`: same agent
    protocol, same metrics/detector/tracer collaborators, same
    :class:`~repro.runtime.simulator.RunResult`. The medium is a pluggable
    :class:`~repro.runtime.events.transport.Transport` instead of a
    :class:`~repro.runtime.network.Network`; ``max_epochs`` plays the role
    of ``max_cycles``.
    """

    def __init__(
        self,
        problem: DisCSP,
        agents: Sequence[SimulatedAgent],
        transport: Optional[Transport] = None,
        max_epochs: int = DEFAULT_MAX_CYCLES,
        metrics: Optional[MetricsCollector] = None,
        detector: Optional[GlobalSolutionDetector] = None,
        tracer: Optional[TraceRecorder] = None,
        activation: str = "mail",
    ) -> None:
        if max_epochs < 1:
            raise SimulationError(f"max_epochs must be positive: {max_epochs}")
        if activation not in ACTIVATION_MODES:
            raise SimulationError(
                f"unknown activation mode {activation!r}; "
                f"expected one of {ACTIVATION_MODES}"
            )
        ids = [agent.id for agent in agents]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate agent ids: {sorted(ids)}")
        if set(ids) != set(problem.agents):
            raise SimulationError(
                "agents do not match the problem: "
                f"expected {sorted(problem.agents)}, got {sorted(ids)}"
            )
        self.problem = problem
        self.agents: List[SimulatedAgent] = sorted(agents, key=lambda a: a.id)
        self.transport: Transport = (
            transport if transport is not None else InProcessTransport()
        )
        self.max_epochs = max_epochs
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.detector = (
            detector
            if detector is not None
            else IncrementalSolutionDetector(problem)
        )
        self.tracer = tracer
        self.activation = activation
        self._tracer_seconds = 0.0
        self._ids = frozenset(ids)
        self._by_id: Dict[AgentId, SimulatedAgent] = {
            agent.id: agent for agent in self.agents
        }
        #: Pending self-wakeups: timestamp -> agents to step even without
        #: mail (scheduled when an agent reports has_pending_work()).
        self._wakeups: Dict[int, Set[AgentId]] = {}
        for agent in self.agents:
            self.metrics.attach(agent.id, agent.check_counter)

    # -- driving --------------------------------------------------------------

    def run(self) -> RunResult:
        """Run to termination and return the trial's result."""
        started = time.perf_counter()
        now = 0
        for agent in self.agents:
            self._route(now, agent.id, agent.initialize())
            if agent.has_pending_work():
                self._schedule_wakeup(1, agent.id)
        # Epoch 0 is initialization; like the synchronous simulator, a
        # random initial assignment that already solves the problem costs
        # zero cycles.
        solved = self._solution_found()
        unsolvable = self._any_failure()
        quiescent = False
        while (
            not solved
            and not unsolvable
            and not quiescent
            and self.metrics.cycles < self.max_epochs
        ):
            next_time = self._next_time()
            if next_time is None:
                quiescent = True
                break
            now = next_time
            self._run_epoch(now)
            self.metrics.end_cycle()
            if self.tracer is not None:
                traced_at = time.perf_counter()
                self.tracer.on_cycle_end(now, collect_assignment(self.agents))
                self._tracer_seconds += time.perf_counter() - traced_at
            solved = self._solution_found()
            unsolvable = self._any_failure()
        capped = (
            not solved
            and not unsolvable
            and not quiescent
            and self.metrics.cycles >= self.max_epochs
        )
        wall_time = time.perf_counter() - started
        return RunResult(
            solved=solved,
            unsolvable=unsolvable,
            capped=capped,
            quiescent=quiescent,
            cycles=self.metrics.cycles,
            maxcck=self.metrics.maxcck,
            total_checks=self.metrics.total_checks,
            messages_sent=self.transport.sent_count,
            generated_nogoods=self.metrics.generated_count,
            redundant_generations=self.metrics.redundant_generations,
            assignment=collect_assignment(self.agents),
            wall_time=wall_time,
            sim_time=wall_time - self._tracer_seconds,
            max_history=list(self.metrics.max_history),
            logical_time=now,
        )

    # -- internals -------------------------------------------------------------

    def _next_time(self) -> Optional[int]:
        """The next epoch's timestamp: earliest arrival or wakeup."""
        candidates: List[int] = []
        arrival = self.transport.next_time()
        if arrival is not None:
            candidates.append(arrival)
        if self._wakeups:
            candidates.append(min(self._wakeups))
        if not candidates:
            return None
        return min(candidates)

    def _run_epoch(self, now: int) -> None:
        """Deliver everything due at *now* and step the activated agents."""
        inbox: Dict[AgentId, List[Message]] = {}
        for delivery in self.transport.pop_due(now):
            inbox.setdefault(delivery.recipient, []).append(delivery.message)
            if self.tracer is not None:
                traced_at = time.perf_counter()
                self.tracer.on_delivery(
                    now, delivery.sequence, delivery.sender, delivery.recipient
                )
                self._tracer_seconds += time.perf_counter() - traced_at
        woken = self._wakeups.pop(now, set())
        if self.activation == "all":
            active = self.agents
        else:
            active = [
                self._by_id[agent_id]
                for agent_id in sorted(set(inbox) | woken)
            ]
        for agent in active:
            outgoing = agent.step(inbox.get(agent.id, ()))
            self._route(now, agent.id, outgoing)
            if agent.has_pending_work():
                self._schedule_wakeup(now + 1, agent.id)

    def _schedule_wakeup(self, when: int, agent_id: AgentId) -> None:
        self._wakeups.setdefault(when, set()).add(agent_id)

    def _route(
        self, now: int, sender: AgentId, outgoing: Sequence[Outgoing]
    ) -> None:
        for recipient, message in outgoing:
            if recipient not in self._ids:
                raise SimulationError(
                    f"agent {sender} sent a message to unknown agent "
                    f"{recipient}"
                )
            if self.tracer is not None:
                traced_at = time.perf_counter()
                # sent_count is the transport's send counter *before* this
                # send, i.e. exactly the sequence the transport will stamp
                # on the resulting delivery.
                self.tracer.on_message(
                    now, sender, recipient, message,
                    sequence=self.transport.sent_count,
                )
                self._tracer_seconds += time.perf_counter() - traced_at
            self.transport.send(sender, recipient, message, now)

    def _solution_found(self) -> bool:
        return self.detector.is_solution(collect_assignment(self.agents))

    def _any_failure(self) -> bool:
        return any(agent.failure is not None for agent in self.agents)
