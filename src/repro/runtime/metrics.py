"""Cost accounting: the paper's measures, collected outside the algorithms.

For every trial the paper reports:

* ``cycle`` — cycles consumed until a solution is found;
* ``maxcck`` — "sum of the maximal number of nogood checks performed by
  agents at each cycle";

and, for Table 4, the total number of *redundant* nogood generations: how
often some agent generates a nogood that had already been generated earlier
in the run.

Algorithms never compute these themselves. Agents expose a
:class:`~repro.core.store.CheckCounter`; the collector snapshots the
counters at cycle boundaries and derives per-cycle maxima, and the
learning layer reports each generated nogood here for redundancy
accounting. Keeping the accounting out of the algorithms means a metrics
bug cannot change search behaviour, and vice versa.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..core.nogood import Nogood
from ..core.problem import AgentId
from ..core.store import CheckCounter


class GenerationLog:
    """One agent's nogood generations, in the order the agent made them.

    Agents hold a log instead of the collector itself: a log is private to
    its agent (append-only, never read by agent code), so agents share no
    mutable state through metrics — the collector alone merges logs at
    cycle boundaries (lint rule S3). In a sharded runtime each process
    ships its logs home instead of mutating a remote set.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Nogood] = []

    def record(self, nogood: Nogood) -> None:
        """Append one generation event (redundancy is judged at the merge)."""
        self.events.append(nogood)


class MetricsCollector:
    """Accumulates per-run cost measures across cycles.

    With ``keep_history=True`` the per-cycle maxima (and per-cycle totals)
    are retained for post-hoc analysis; experiments that only need the
    aggregate leave it off to save memory on long runs.
    """

    def __init__(self, keep_history: bool = False) -> None:
        self.keep_history = keep_history
        self.cycles = 0
        self.maxcck = 0
        self.total_checks = 0
        self._generated_count = 0
        self._redundant_generations = 0
        self.max_history: List[int] = []
        self.total_history: List[int] = []
        self._counters: Dict[AgentId, CheckCounter] = {}
        self._snapshots: Dict[AgentId, int] = {}
        self._generated: Set[Nogood] = set()
        self._logs: Dict[AgentId, GenerationLog] = {}

    # -- cycle accounting ----------------------------------------------------

    def attach(self, agent_id: AgentId, counter: CheckCounter) -> None:
        """Register *agent_id*'s check counter (done once, before running)."""
        self._counters[agent_id] = counter
        self._snapshots[agent_id] = counter.total

    def end_cycle(self) -> int:
        """Close one cycle: fold in per-agent deltas; returns the cycle max."""
        self._drain_generations()
        cycle_max = 0
        cycle_total = 0
        for agent_id, counter in self._counters.items():
            delta = counter.total - self._snapshots[agent_id]
            self._snapshots[agent_id] = counter.total
            cycle_total += delta
            if delta > cycle_max:
                cycle_max = delta
        self.cycles += 1
        self.maxcck += cycle_max
        self.total_checks += cycle_total
        if self.keep_history:
            self.max_history.append(cycle_max)
            self.total_history.append(cycle_total)
        return cycle_max

    # -- nogood-generation accounting -----------------------------------------

    def generation_log_for(self, agent_id: AgentId) -> GenerationLog:
        """The (single) generation log for *agent_id*, created on first use.

        Handlers that share an agent id (multi-variable AWC) share the log;
        their events interleave in execution order, which is exactly the
        order the old immediate accounting saw them in.
        """
        log = self._logs.get(agent_id)
        if log is None:
            log = GenerationLog()
            self._logs[agent_id] = log
        return log

    def _drain_generations(self) -> None:
        """Merge pending per-agent logs into the global redundancy set.

        Logs are folded in sorted-agent-id order. Both engines activate
        agents in sorted-id order within a cycle/epoch, so draining at a
        cycle boundary replays the exact global generation sequence the
        old collector saw with immediate recording — redundancy counts are
        bit-identical. Idempotent: drained events are consumed.
        """
        for agent_id in sorted(self._logs):
            log = self._logs[agent_id]
            if not log.events:
                continue
            for nogood in log.events:
                self._fold_generation(nogood)
            log.events.clear()

    def _fold_generation(self, nogood: Nogood) -> None:
        self._generated_count += 1
        if nogood in self._generated:
            self._redundant_generations += 1
        else:
            self._generated.add(nogood)

    @property
    def generated_count(self) -> int:
        """Total generation events so far (pending logs drained on read)."""
        self._drain_generations()
        return self._generated_count

    @property
    def redundant_generations(self) -> int:
        """Table 4's measure: re-generations of an already-seen nogood."""
        self._drain_generations()
        return self._redundant_generations

    def record_generation(self, agent_id: AgentId, nogood: Nogood) -> bool:
        """Record that *agent_id* generated *nogood*, judged immediately.

        Returns True when the generation was redundant, i.e. the same nogood
        (as a set of pairs) had been generated before by any agent. This is
        Table 4's measure: with recording enabled redundancy should be rare;
        without it, agents rediscover the same nogoods over and over.

        Agents record through :meth:`generation_log_for` instead (logs keep
        cross-agent state out of agent objects); this immediate entry point
        remains for harnesses and tests that account a single stream.
        """
        del agent_id  # accounted globally; kept in the signature for tracing
        self._drain_generations()
        before = self._redundant_generations
        self._fold_generation(nogood)
        return self._redundant_generations != before

    def __repr__(self) -> str:
        return (
            f"MetricsCollector(cycles={self.cycles}, maxcck={self.maxcck}, "
            f"total_checks={self.total_checks}, "
            f"generated={self.generated_count}, "
            f"redundant={self.redundant_generations})"
        )
