"""Runtime substrate: messages, networks, metrics, and the cycle simulator.

The paper's experiments run on a simulator of a synchronous distributed
system; this package is that simulator, factored so the same agents run
unchanged on delayed/asynchronous network models.
"""

from .agent import SimulatedAgent
from .messages import (
    ImproveMessage,
    Message,
    NogoodMessage,
    OkMessage,
    OkRoundMessage,
    Outgoing,
    RequestValueMessage,
)
from .metrics import MetricsCollector
from .network import (
    FixedDelayNetwork,
    LossyNetwork,
    Network,
    RandomDelayNetwork,
    SynchronousNetwork,
)
from .events import (
    EventDrivenSimulator,
    InProcessTransport,
    InProcessTransportFactory,
    UniformLatency,
    UnitLatency,
)
from .random_source import derive_rng, derive_seed
from .simulator import DEFAULT_MAX_CYCLES, RunResult, SynchronousSimulator
from .termination import (
    GlobalSolutionDetector,
    IncrementalSolutionDetector,
    QuiescentSolutionDetector,
    collect_assignment,
)
from .trace import MessageEvent, TraceRecorder, ValueChangeEvent

__all__ = [
    "DEFAULT_MAX_CYCLES",
    "EventDrivenSimulator",
    "FixedDelayNetwork",
    "GlobalSolutionDetector",
    "IncrementalSolutionDetector",
    "InProcessTransport",
    "InProcessTransportFactory",
    "LossyNetwork",
    "MessageEvent",
    "ImproveMessage",
    "Message",
    "MetricsCollector",
    "Network",
    "NogoodMessage",
    "OkMessage",
    "OkRoundMessage",
    "Outgoing",
    "QuiescentSolutionDetector",
    "RandomDelayNetwork",
    "RequestValueMessage",
    "RunResult",
    "SimulatedAgent",
    "SynchronousNetwork",
    "SynchronousSimulator",
    "TraceRecorder",
    "UniformLatency",
    "UnitLatency",
    "ValueChangeEvent",
    "collect_assignment",
    "derive_rng",
    "derive_seed",
]
