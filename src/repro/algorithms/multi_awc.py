"""Multi-variable-per-agent AWC — the Section 5 extension.

The paper notes that all distributed CSPs can in principle be converted to
the one-variable-per-agent class, but that real problems often give one
agent a whole local CSP, and points to the authors' extended AWC variants
for that setting. This module implements the natural extension: an agent
hosts one *virtual AWC handler per owned variable*, and messages between two
handlers of the same agent are exchanged **within a cycle** (local
computation is free relative to communication), while messages to other
agents take a network cycle as usual.

That intra-cycle shortcut is the whole point of keeping variables together:
the hosting agent can settle local conflicts without spending communication
cycles on them. A cap bounds the intra-cycle rounds so one agent cannot
simulate an unbounded amount of search in a single "cycle"; messages beyond
the cap simply carry over to the next cycle, degrading gracefully toward the
one-variable-per-agent behaviour.

All handlers of an agent share one check counter, so ``maxcck`` counts an
agent's total local computation per cycle, exactly as for single-variable
agents.
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from ..core.exceptions import ModelError
from ..core.problem import AgentId, DisCSP
from ..core.store import NogoodStore
from ..core.variables import Value, VariableId
from ..learning.base import LearningMethod
from ..runtime.agent import SimulatedAgent
from ..runtime.messages import (
    Message,
    NogoodMessage,
    OkMessage,
    Outgoing,
    RequestValueMessage,
)
from ..runtime.metrics import MetricsCollector
from .awc import AwcAgent

if TYPE_CHECKING:  # the builder imports derive_rng lazily at runtime
    from ..retention import NogoodInterner, PolicyFactory
    from ..runtime.random_source import Seed

#: Default bound on intra-agent message rounds within one cycle.
DEFAULT_INTRA_ROUND_CAP = 50


class MultiVariableAwcAgent(SimulatedAgent):
    """An agent owning several variables, each run by a virtual AWC handler."""

    def __init__(
        self,
        agent_id: AgentId,
        problem: DisCSP,
        learning: LearningMethod,
        metrics: MetricsCollector,
        rng_factory: Callable[[VariableId], random.Random],
        initial_assignment: Optional[Dict[VariableId, Value]] = None,
        intra_round_cap: int = DEFAULT_INTRA_ROUND_CAP,
    ) -> None:
        super().__init__(agent_id)
        if intra_round_cap < 1:
            raise ModelError(
                f"intra_round_cap must be positive, got {intra_round_cap}"
            )
        self.problem = problem
        self.intra_round_cap = intra_round_cap
        self._handlers: Dict[VariableId, AwcAgent] = {}
        self._carryover: Dict[VariableId, List[Message]] = {}
        for variable in problem.variables_of(agent_id):
            initial = (
                initial_assignment.get(variable)
                if initial_assignment is not None
                else None
            )
            handler = AwcAgent(
                agent_id,
                problem,
                learning,
                metrics,
                rng_factory(variable),
                initial_value=initial,
                variable=variable,
            )
            # All handlers account their checks to the hosting agent.
            handler.check_counter = self.check_counter
            handler.store.counter = self.check_counter
            self._handlers[variable] = handler
        # The handler map is fixed from here on; iterate this instead of
        # re-sorting the keys on every dispatch (lint rule H3).
        self._ordered_variables: Tuple[VariableId, ...] = tuple(
            sorted(self._handlers)
        )

    # -- simulator protocol -----------------------------------------------------

    def initialize(self) -> List[Outgoing]:
        external: List[Outgoing] = []
        for variable in self._ordered_variables:
            outgoing = self._handlers[variable].initialize()
            external.extend(self._dispatch(variable, outgoing))
        external.extend(self._run_intra_rounds())
        return external

    def step(self, messages: Sequence[Message]) -> List[Outgoing]:
        for message in messages:
            self._enqueue(message, originating_variable=None)
        external = self._run_intra_rounds()
        self._propagate_failure()
        return external

    def local_assignment(self) -> Dict[VariableId, Value]:
        return {
            variable: handler.value
            for variable, handler in self._handlers.items()
        }

    def rebind_store(self, store_class: Type[NogoodStore]) -> None:
        """Rebind every handler's store; all keep the shared check counter."""
        for variable in self._ordered_variables:
            self._handlers[variable].rebind_store(store_class)

    def attach_retention(
        self,
        policy_factory: Optional["PolicyFactory"],
        interner: Optional["NogoodInterner"] = None,
    ) -> None:
        """Apply the retention axis per handler (one policy per store)."""
        for variable in self._ordered_variables:
            self._handlers[variable].attach_retention(
                policy_factory, interner
            )

    def has_pending_work(self) -> bool:
        """Carryover left by a capped intra-round drain awaits another step.

        The synchronous simulator revisits every agent each cycle, so a
        ``intra_round_cap`` overflow is retried automatically; the
        event-driven engine activates only on mail and needs this signal to
        schedule a wakeup.
        """
        return bool(self._carryover)

    # -- internal message plumbing ------------------------------------------------

    def _run_intra_rounds(self) -> List[Outgoing]:
        """Drain handler queues, looping intra-agent messages within the cycle."""
        external: List[Outgoing] = []
        rounds = 0
        while self._carryover and rounds < self.intra_round_cap:
            rounds += 1
            batch, self._carryover = self._carryover, {}
            for variable in sorted(batch):
                handler = self._handlers[variable]
                outgoing = handler.step(batch[variable])
                external.extend(self._dispatch(variable, outgoing))
        return external

    def _dispatch(
        self, origin: VariableId, outgoing: Sequence[Outgoing]
    ) -> List[Outgoing]:
        """Split handler output into external messages and internal queueing."""
        external: List[Outgoing] = []
        for recipient, message in outgoing:
            if recipient == self.id:
                self._enqueue(message, originating_variable=origin)
            else:
                external.append((recipient, message))
        return external

    def _enqueue(
        self, message: Message, originating_variable: Optional[VariableId]
    ) -> None:
        """Route one (external or internal) message to handler queues."""
        if isinstance(message, OkMessage):
            for variable in self._handlers:
                if variable != originating_variable:
                    self._carryover.setdefault(variable, []).append(message)
        elif isinstance(message, NogoodMessage):
            for variable in sorted(message.nogood.variables):
                if variable in self._handlers and variable != originating_variable:
                    self._carryover.setdefault(variable, []).append(message)
        elif isinstance(message, RequestValueMessage):
            if message.variable in self._handlers:
                self._carryover.setdefault(message.variable, []).append(message)
        else:
            raise ModelError(
                f"multi-variable AWC cannot route message {message!r}"
            )

    def _propagate_failure(self) -> None:
        for handler in self._handlers.values():
            if handler.failure is not None and self.failure is None:
                self.failure = handler.failure


def build_multi_awc_agents(
    problem: DisCSP,
    learning: LearningMethod,
    metrics: MetricsCollector,
    seed: "Seed",
    initial_assignment: Optional[Dict[VariableId, Value]] = None,
    intra_round_cap: int = DEFAULT_INTRA_ROUND_CAP,
) -> List[MultiVariableAwcAgent]:
    """Build one multi-variable AWC agent per agent id of *problem*."""
    from ..runtime.random_source import derive_rng

    agents = []
    for agent_id in problem.agents:

        def rng_factory(
            variable: VariableId, _agent: AgentId = agent_id
        ) -> random.Random:
            return derive_rng(seed, "multi-awc", _agent, variable)

        agents.append(
            MultiVariableAwcAgent(
                agent_id,
                problem,
                learning,
                metrics,
                rng_factory,
                initial_assignment=initial_assignment,
                intra_round_cap=intra_round_cap,
            )
        )
    return agents
