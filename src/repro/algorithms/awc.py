"""The asynchronous weak-commitment search algorithm (AWC), Section 2.2.

Every agent holds one variable, announces its value (with a dynamic
*priority*, initially 0) via ``ok?`` messages, and reacts to what it hears:

* if no **higher** nogood (one whose priority outranks the agent's variable)
  is violated, it does nothing;
* if violated higher nogoods can be repaired by changing its value, it moves
  to the candidate value violating the fewest **lower** nogoods and
  re-announces;
* otherwise it is at a *deadend*: it asks its learning method for a new
  nogood, announces that nogood to every agent whose variable it mentions,
  **raises its own priority** above everything it can see, moves to the
  value violating the fewest of all its nogoods, and re-announces. If the
  new nogood equals the previously generated one, it does nothing at all —
  the paper's rule "required to ensure the completeness of the algorithm".

Receiving a nogood that mentions an unknown variable triggers a value
request to that variable's owner (the add-link mechanism inherited from
ABT); the owner replies with an ``ok?`` and keeps the requester informed
from then on.

The learning method is fully pluggable (see :mod:`repro.learning`); this one
class therefore covers the paper's Rslv, Mcs, No, kthRslv, and rec/norec
variants.
"""

from __future__ import annotations

import random
from operator import itemgetter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from ..core.assignment import AgentView
from ..core.exceptions import ModelError
from ..core.nogood import Nogood
from ..core.problem import AgentId, DisCSP
from ..core.variables import Value, VariableId
from ..learning.base import DeadendContext, LearningMethod
from ..runtime.messages import (
    Message,
    NogoodMessage,
    OkMessage,
    Outgoing,
    RequestValueMessage,
)
from ..runtime.metrics import MetricsCollector
from .base import SingleVariableAgent, argmin_with_ties

if TYPE_CHECKING:  # the builder imports derive_rng lazily at runtime
    from ..runtime.random_source import Seed

#: Score accessor for (candidate, lower-count) pairs; module-level so the
#: per-message selection path allocates no closure (lint rule H4).
_lower_count_of = itemgetter(1)


class AwcAgent(SingleVariableAgent):
    """One AWC agent: a variable, a view, a store, and a learning method."""

    def __init__(
        self,
        agent_id: AgentId,
        problem: DisCSP,
        learning: LearningMethod,
        metrics: MetricsCollector,
        rng: random.Random,
        initial_value: Optional[Value] = None,
        variable: Optional[VariableId] = None,
    ) -> None:
        super().__init__(agent_id, problem, rng, initial_value, variable)
        self.learning = learning
        # The agent keeps only its own append-only log, never the shared
        # collector: aliasing a collector that agents mutate would pin all
        # agents to one process (lint rule S3).
        self.generation_log = metrics.generation_log_for(agent_id)
        self.priority = 0
        self.view = AgentView()
        self.last_generated: Optional[Nogood] = None
        # Reusable candidate-value buffers for the per-message decision
        # procedure: ``clear()`` keeps list capacity, so once warm the scan
        # allocates nothing (lint rule H2). Both are consumed before any
        # call that could re-enter the decision procedure.
        self._scratch_others: List[Value] = []
        self._scratch_candidates: List[Value] = []
        self._scratch_requesters: Set[AgentId] = set()

    def reset_episode(
        self,
        metrics: MetricsCollector,
        initial_value: Optional[Value] = None,
    ) -> None:
        """Prepare this agent for another episode on the same instance.

        The soak harness re-solves one instance repeatedly with fresh
        initial values through a persistent population. Search state is
        reset — priority, view, the completeness rule's memory, the
        failure flag, the configured initial value — while everything
        learned persists: the store (with its retention policy, pins and
        interner), the grown recipient set, and the agent's RNG stream.
        Learned nogoods are logical consequences of the same instance's
        constraints, so carrying them across episodes is sound.
        """
        if initial_value is not None and initial_value not in self.domain:
            raise ModelError(
                f"initial value {initial_value!r} is outside the domain "
                f"of x{self.variable}"
            )
        self.generation_log = metrics.generation_log_for(self.id)
        self.priority = 0
        self.view = AgentView()
        self.last_generated = None
        self.failure = None
        self._initial_value = initial_value
        self.value = self.domain.values[0]

    # -- simulator protocol ----------------------------------------------------

    def initialize(self) -> List[Outgoing]:
        self.value = self.pick_initial_value()
        # Establish consistency with *unary* nogoods up front. The view is
        # still empty so only nogoods binding this variable alone can be
        # violated; without this, an agent with no neighbors (or whose
        # domain is wiped out by unary constraints) would never act at all,
        # since checks are otherwise message-driven.
        reaction = self._check_agent_view()
        outgoing = [
            (recipient, message)
            for recipient, message in reaction
            if isinstance(message, NogoodMessage)
        ]
        outgoing.extend(self._broadcast_ok(self.sorted_recipients()))
        return outgoing

    def step(self, messages: Sequence[Message]) -> List[Outgoing]:
        # Value requests and broadcast bookkeeping live in reusable scratch
        # sets, and outgoing messages accumulate in one list from the start
        # (the old requests-then-copy shape allocated a set, a list and a
        # copy on every delivery, lint rule H2). Message order is unchanged:
        # add-link requests first, then the reaction, then requester oks.
        state_changed = False
        requesters = self._scratch_requesters
        requesters.clear()
        outgoing: List[Outgoing] = []
        for message in messages:
            if isinstance(message, OkMessage):
                if self.view.update(
                    message.variable, message.value, message.priority
                ):
                    state_changed = True
            elif isinstance(message, NogoodMessage):
                # Keep the generator informed of our future moves: it built
                # this nogood from our announced value.
                self.recipients.add(message.sender)
                outgoing.extend(
                    self._receive_nogood(message.nogood, message.sender)
                )
                state_changed = True
            elif isinstance(message, RequestValueMessage):
                self.recipients.add(message.sender)
                requesters.add(message.sender)
        if state_changed:
            reaction = self._check_agent_view()
            outgoing.extend(reaction)
            if requesters:
                for recipient, reaction_message in reaction:
                    if isinstance(reaction_message, OkMessage):
                        requesters.discard(recipient)
        if requesters:
            for requester in sorted(requesters):
                outgoing.append((requester, self._ok_message()))
        return outgoing

    # -- the AWC decision procedure --------------------------------------------

    def _check_agent_view(self) -> List[Outgoing]:
        """React to the current view; returns messages to send."""
        if not self.store.count_violated_higher(
            self.view, self.value, self.priority
        ):
            return []
        others = self._scratch_others
        others.clear()
        for value in self.domain:
            if value != self.value:
                others.append(value)
        higher_per_value = self.store.count_violated_higher_batch(
            self.view, others, self.priority
        )
        repair_candidates = self._scratch_candidates
        repair_candidates.clear()
        for value, higher in zip(others, higher_per_value):
            if not higher:
                repair_candidates.append(value)
        if repair_candidates:
            self.value = self._least_lower_violations(repair_candidates)
            return self._broadcast_ok(self.sorted_recipients())
        return self._backtrack()

    def _backtrack(self) -> List[Outgoing]:
        """Handle a deadend: learn, raise priority, move, re-announce."""
        outgoing: List[Outgoing] = []
        nogood = self.learning.make_nogood(
            DeadendContext(
                variable=self.variable,
                domain=self.domain,
                priority=self.priority,
                view=self.view,
                store=self.store,
            )
        )
        if nogood is not None:
            # Every generation event is counted (Table 4's measure counts a
            # regeneration even when the rule below suppresses acting on it).
            self.generation_log.record(nogood)
            if len(nogood) == 0:
                self.fail_unsolvable("derived the empty nogood")
                return []
            if (
                self.learning.should_record(nogood)
                and nogood == self.last_generated
            ):
                # The completeness rule: repeating the identical nogood would
                # loop forever; the recorded copy at the recipients will
                # eventually force someone else to move. That justification
                # needs the nogood to actually be recorded — for nogoods the
                # recording policy drops (size bounds, norec) the deadend is
                # instead broken by the priority raise below (footnote 1),
                # otherwise the whole system can freeze.
                return []
            self.last_generated = nogood
            announcement = NogoodMessage(self.id, nogood)
            owners = {
                self.owner_of(variable) for variable in nogood.variables
            }
            for owner in sorted(owners):
                outgoing.append((owner, announcement))
        self.priority = self._highest_known_priority() + 1
        # At the raised priority every nogood involving other variables is
        # now *lower*; only learned unary nogoods on this very variable can
        # still rank higher (their priority is TOP). The paper's "value
        # causing the minimum violation on all its nogoods" must not pick a
        # unary-forbidden value — nothing would ever make the agent move off
        # it, freezing the system — so those values are excluded here, and
        # lower violations are minimized among the rest.
        all_values = self.domain.values
        higher_per_value = self.store.count_violated_higher_batch(
            self.view, all_values, self.priority
        )
        candidates = self._scratch_candidates
        candidates.clear()
        for value, higher in zip(all_values, higher_per_value):
            if not higher:
                candidates.append(value)
        if not candidates:
            # Every value is forbidden by a unary nogood on this variable:
            # the recursive deadend derives the empty resolvent and reports
            # the problem unsolvable.
            outgoing.extend(self._backtrack())
            return outgoing
        self.value = self._least_lower_violations(candidates)
        outgoing.extend(self._broadcast_ok(self.sorted_recipients()))
        return outgoing

    def _receive_nogood(
        self, nogood: Nogood, sender: AgentId
    ) -> Sequence[Outgoing]:
        """Record an announced nogood (policy permitting); request unknowns.

        The add rotates *sender*'s pin slot onto this nogood: the
        completeness rule in :meth:`_backtrack` assumes the sender's
        latest announced resolvent is still recorded somewhere, so a
        retention policy must never evict it (the completeness caveat).

        Returns an empty tuple on the no-request paths — under ``norec``
        policies that is every call, so the refused path must not build a
        throwaway list (lint rule H1).
        """
        if not self.learning.should_record(nogood):
            return ()
        if not self.store.add(nogood, slot=sender):
            return ()
        requests: List[Outgoing] = []
        for variable in sorted(nogood.variables):
            if variable != self.variable and not self.view.knows(variable):
                requests.append(
                    (
                        self.owner_of(variable),
                        RequestValueMessage(self.id, variable),
                    )
                )
        return requests

    # -- helpers ---------------------------------------------------------------

    def _least_lower_violations(self, candidates: List[Value]) -> Value:
        """The candidate violating the fewest lower nogoods (random ties).

        Scores come from one batch call (one view sync on kernel backends);
        check counting and the rng tie-draw are identical to scoring each
        candidate individually inside :func:`argmin_with_ties`.
        """
        lower_counts = self.store.count_violated_lower_batch(
            self.view, candidates, self.priority
        )
        chosen = argmin_with_ties(
            zip(candidates, lower_counts),
            _lower_count_of,
            self.rng,
        )
        return chosen[0]

    def _highest_known_priority(self) -> int:
        highest = self.priority
        for variable in self.view:
            priority = self.view.priority_of(variable)
            if priority > highest:
                highest = priority
        return highest

    def _ok_message(self) -> OkMessage:
        return OkMessage(self.id, self.variable, self.value, self.priority)

    def _broadcast_ok(self, recipients: Sequence[AgentId]) -> List[Outgoing]:
        message = self._ok_message()
        return [(recipient, message) for recipient in recipients]


def build_awc_agents(
    problem: DisCSP,
    learning: LearningMethod,
    metrics: MetricsCollector,
    seed: "Seed",
    initial_assignment: Optional[Dict[VariableId, Value]] = None,
) -> List[AwcAgent]:
    """Build one AWC agent per agent id of *problem*.

    Each agent gets an independent RNG derived from *seed*, and (optionally)
    its initial value from *initial_assignment* — the paper's trials fix the
    instance and vary exactly these initial values.
    """
    from ..runtime.random_source import derive_rng

    agents = []
    for agent_id in problem.agents:
        variable = problem.variables_of(agent_id)[0]
        initial = (
            initial_assignment.get(variable)
            if initial_assignment is not None
            else None
        )
        agents.append(
            AwcAgent(
                agent_id,
                problem,
                learning,
                metrics,
                derive_rng(seed, "awc-agent", agent_id),
                initial_value=initial,
            )
        )
    return agents
