"""The asynchronous backtracking algorithm (ABT) — AWC's ancestor.

Included because the paper positions resolvent learning against ABT's
baseline behaviour: "an agent uses an agent_view itself as a nogood. The
cost of this method is virtually zero ... However, the obtained nogood is
not so effective."

ABT fixes the agent ordering up front — here, smaller id = higher priority —
instead of reordering dynamically like AWC. Each agent keeps a view of the
higher-priority agents it is linked to, and:

* on ``ok?``: update the view, re-establish consistency (pick any value
  consistent with the view; deterministic first-fit, which is ABT's
  classical value rule);
* at a deadend: take the **entire agent view** as the new nogood, send it to
  its lowest-priority member, erase that member's value from the view, and
  re-check (classic ABT backtracking);
* on ``nogood``: record it, request values of unknown variables (add-link),
  re-check, and — if our value did not change — re-announce it to the
  sender, whose nogood was based on possibly stale data.

Deriving the empty nogood proves insolubility; with all nogoods recorded,
ABT is complete. ABT is not part of the paper's tables, but it provides the
reference point for the "agent_view as nogood" learning cost/benefit and is
exercised by the extension benchmarks.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from ..core.assignment import AgentView
from ..core.nogood import Nogood
from ..core.problem import AgentId, DisCSP
from ..core.variables import Value, VariableId
from ..learning.resolvent import stable_nogood_key

if TYPE_CHECKING:  # the builder imports derive_rng lazily at runtime
    from ..runtime.random_source import Seed
from ..runtime.messages import (
    Message,
    NogoodMessage,
    OkMessage,
    Outgoing,
    RequestValueMessage,
)
from .base import SingleVariableAgent


#: ABT backtrack nogood construction: the classic whole-agent-view nogood,
#: or a resolvent built like Section 3's rule (one smallest violated nogood
#: per domain value, unioned, own variable removed). The latter is the
#: paper's "what if ABT learned better nogoods" counterfactual.
ABT_LEARNING_MODES = ("view", "resolvent")


def _smallest_nogood_order(nogood: Nogood) -> Tuple[int, object]:
    """Sort key for "the smallest violated nogood": size, then structure.

    Module-level (not a lambda at the ``min()`` call) so the per-deadend
    path allocates no closure (lint rule H4).
    """
    return (len(nogood), stable_nogood_key(nogood))


class AbtAgent(SingleVariableAgent):
    """One ABT agent under the static smaller-id-first priority order."""

    def __init__(
        self,
        agent_id: AgentId,
        problem: DisCSP,
        rng: random.Random,
        initial_value: Optional[Value] = None,
        learning: str = "view",
    ) -> None:
        super().__init__(agent_id, problem, rng, initial_value)
        if learning not in ABT_LEARNING_MODES:
            from ..core.exceptions import ModelError

            raise ModelError(
                f"ABT learning must be one of {ABT_LEARNING_MODES}, "
                f"got {learning!r}"
            )
        self.learning = learning
        self.view = AgentView()
        # ok? messages flow down the priority order: only lower-priority
        # (larger-id) neighbors need to hear our value.
        self.recipients = {
            neighbor for neighbor in self.recipients if neighbor > agent_id
        }

    # -- simulator protocol -----------------------------------------------------

    def initialize(self) -> List[Outgoing]:
        self.value = self.pick_initial_value()
        # As in AWC: unary nogoods must be respected (or proven jointly
        # unsatisfiable) before the first announcement, because checks are
        # otherwise only triggered by incoming messages.
        reaction = self._check_agent_view()
        outgoing = [
            (recipient, message)
            for recipient, message in reaction
            if isinstance(message, NogoodMessage)
        ]
        outgoing.extend(self._broadcast_ok(self.sorted_recipients()))
        return outgoing

    def step(self, messages: Sequence[Message]) -> List[Outgoing]:
        outgoing: List[Outgoing] = []
        changed = False
        nogood_senders: Set[AgentId] = set()
        requesters: Set[AgentId] = set()
        for message in messages:
            if isinstance(message, OkMessage):
                if self.view.update(message.variable, message.value, 0):
                    changed = True
            elif isinstance(message, NogoodMessage):
                changed = True
                nogood_senders.add(message.sender)
                outgoing.extend(
                    self._receive_nogood(message.nogood, message.sender)
                )
            elif isinstance(message, RequestValueMessage):
                self.recipients.add(message.sender)
                requesters.add(message.sender)
        informed: Set[AgentId] = set()
        if changed:
            old_value = self.value
            outgoing.extend(self._check_agent_view())
            if self.value != old_value:
                informed = set(self.recipients)
            else:
                # Our value stands: senders of (stale) nogoods must be told.
                for sender in sorted(nogood_senders):
                    outgoing.append((sender, self._ok_message()))
                    informed.add(sender)
        for requester in sorted(requesters - informed):
            outgoing.append((requester, self._ok_message()))
        return outgoing

    # -- ABT decision procedure ----------------------------------------------------

    def _check_agent_view(self) -> List[Outgoing]:
        outgoing: List[Outgoing] = []
        while True:
            if self._consistent(self.value):
                return outgoing
            replacement = self._first_consistent_value()
            if replacement is not None:
                self.value = replacement
                outgoing.extend(self._broadcast_ok(self.sorted_recipients()))
                return outgoing
            backtrack_messages = self._backtrack()
            outgoing.extend(backtrack_messages)
            if self.failure is not None:
                return outgoing
            # Loop: the culprit's value was erased from the view; re-check.

    def _consistent(self, value: Value) -> bool:
        # Delegating to the store keeps the short-circuit scan (and its
        # check counting) on the kernel fast path under --store watched.
        return self.store.is_consistent(self.view, value)

    def _first_consistent_value(self) -> Optional[Value]:
        for value in self.domain:
            if value != self.value and self._consistent(value):
                return value
        return None

    def _backtrack(self) -> List[Outgoing]:
        """Derive a nogood for the deadend and send it to its lowest member.

        In ``view`` mode (classic ABT) the whole agent view is the nogood —
        "the cost of this method is virtually zero ... however, the obtained
        nogood is not so effective" (paper, Section 1). In ``resolvent``
        mode the nogood is built with Section 3's rule instead, typically
        much smaller, which prunes more and backjumps further (the culprit
        can be an agent far up the order).
        """
        if self.learning == "resolvent":
            nogood = self._resolvent_nogood()
        else:
            nogood = Nogood(
                (variable, self.view.value_of(variable))
                for variable in self.view
            )
        if len(nogood) == 0:
            self.fail_unsolvable("derived the empty nogood at a deadend")
            return []
        # The lowest-priority member is the largest id (priority = -id).
        culprit = max(nogood.variables)
        self.view.forget(culprit)
        return [(self.owner_of(culprit), NogoodMessage(self.id, nogood))]

    def _resolvent_nogood(self) -> Nogood:
        """Section 3's rule under ABT's fixed order.

        Every nogood outranks the agent in ABT (its members are all higher
        in the static order), so "select the smallest violated nogood per
        value" needs no priority bookkeeping; ties are broken structurally
        for reproducibility.
        """
        pairs = set()
        violated_per_value = self.store.violated_batch(
            self.view, self.domain.values
        )
        for violated in violated_per_value:
            if not violated:
                # Not a true deadend for this value (can happen only if the
                # caller mis-detected); fall back to the full view.
                return Nogood(
                    (variable, self.view.value_of(variable))
                    for variable in self.view
                )
            best = min(violated, key=_smallest_nogood_order)
            pairs.update(
                pair for pair in best.pairs if pair[0] != self.variable
            )
        return Nogood(pairs)

    def _receive_nogood(
        self, nogood: Nogood, sender: AgentId
    ) -> Sequence[Outgoing]:
        # As in AWC, the sender's pin slot rotates onto its latest
        # backtrack nogood so retention policies cannot evict the copy
        # the sender's backjump reasoning depends on. The duplicate-add
        # path returns an empty tuple, not a throwaway list (lint rule H1).
        if not self.store.add(nogood, slot=sender):
            return ()
        requests: List[Outgoing] = []
        for variable in sorted(nogood.variables):
            if variable != self.variable and not self.view.knows(variable):
                requests.append(
                    (
                        self.owner_of(variable),
                        RequestValueMessage(self.id, variable),
                    )
                )
        return requests

    # -- helpers -------------------------------------------------------------------

    def _ok_message(self) -> OkMessage:
        return OkMessage(self.id, self.variable, self.value, 0)

    def _broadcast_ok(self, recipients: Sequence[AgentId]) -> List[Outgoing]:
        message = self._ok_message()
        return [(recipient, message) for recipient in recipients]


def build_abt_agents(
    problem: DisCSP,
    seed: "Seed",
    initial_assignment: Optional[Dict[VariableId, Value]] = None,
    learning: str = "view",
) -> List[AbtAgent]:
    """Build one ABT agent per agent id of *problem*."""
    from ..runtime.random_source import derive_rng

    agents = []
    for agent_id in problem.agents:
        variable = problem.variables_of(agent_id)[0]
        initial = (
            initial_assignment.get(variable)
            if initial_assignment is not None
            else None
        )
        agents.append(
            AbtAgent(
                agent_id,
                problem,
                derive_rng(seed, "abt-agent", agent_id),
                initial_value=initial,
                learning=learning,
            )
        )
    return agents
