"""Shared plumbing for the distributed algorithms.

Provides the seeded tie-breaking helper every algorithm uses for value
selection, and the common base for one-variable-per-agent agents (owning
variable lookup, initial local nogoods, recipients bookkeeping).
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Type,
    TypeVar,
)

from ..core.exceptions import ModelError
from ..core.problem import AgentId, DisCSP
from ..core.store import NogoodStore
from ..core.variables import Domain, Value, VariableId
from ..runtime.agent import SimulatedAgent

if TYPE_CHECKING:
    from ..retention import NogoodInterner, PolicyFactory

T = TypeVar("T")


def argmin_with_ties(
    candidates: Iterable[T],
    score: Callable[[T], object],
    rng: random.Random,
) -> T:
    """The candidate with the smallest score; ties broken uniformly by *rng*.

    Scanning keeps *all* tied candidates and draws one, rather than keeping
    the first: a first-wins rule would bias every agent toward low domain
    values and make runs degenerate in ways the paper's randomized trials
    do not have.
    """
    best_score: Optional[object] = None
    ties: List[T] = []
    for candidate in candidates:
        value = score(candidate)
        if best_score is None or value < best_score:  # type: ignore[operator]
            best_score = value
            ties = [candidate]
        elif value == best_score:
            ties.append(candidate)
    if not ties:
        raise ModelError("argmin_with_ties called with no candidates")
    if len(ties) == 1:
        return ties[0]
    return ties[rng.randrange(len(ties))]


class SingleVariableAgent(SimulatedAgent):
    """Base for agents that own exactly one variable of a DisCSP.

    Sets up the store preloaded with the agent's local nogoods (every nogood
    relevant to its variable, inter-agent ones included — the paper's
    locality assumption) and the initial recipient set (the owners of the
    other variables in those nogoods).
    """

    #: The store implementation; the ablation benchmarks swap in
    #: :class:`~repro.core.store.LinearNogoodStore` to measure what the
    #: per-value index saves.
    store_class = NogoodStore

    def __init__(
        self,
        agent_id: AgentId,
        problem: DisCSP,
        rng: random.Random,
        initial_value: Optional[Value] = None,
        variable: Optional[VariableId] = None,
    ) -> None:
        super().__init__(agent_id)
        owned = problem.variables_of(agent_id)
        if variable is None:
            if len(owned) != 1:
                raise ModelError(
                    f"agent {agent_id} owns {len(owned)} variables; this "
                    "algorithm requires the one-variable-per-agent setting "
                    "(see multi_awc for the extension)"
                )
            variable = owned[0]
        elif variable not in owned:
            raise ModelError(
                f"agent {agent_id} does not own variable {variable}"
            )
        self.problem = problem
        self.variable: VariableId = variable
        self.domain: Domain = problem.csp.domain_of(self.variable)
        self.rng = rng
        self.store = self.store_class(self.variable, self.check_counter)
        # Initial constraints are permanently pinned: solutions are
        # verified against them, so no retention policy may evict one.
        for nogood in problem.csp.relevant_nogoods(self.variable):
            self.store.add(nogood, pinned=True)
        # Owners of the variables we share nogoods with. When this agent
        # hosts several variables (multi_awc), its own id can appear here:
        # the hosting wrapper routes such messages internally.
        self.recipients = {
            problem.owner_of(neighbor)
            for neighbor in problem.csp.neighbors_of(self.variable)
        }
        if initial_value is not None and initial_value not in self.domain:
            raise ModelError(
                f"initial value {initial_value!r} is outside the domain of "
                f"x{self.variable}"
            )
        self._initial_value = initial_value
        self.value: Value = self.domain.values[0]
        # Cached sorted copy of ``recipients`` (see sorted_recipients()).
        self._sorted_recipients: Tuple[AgentId, ...] = ()
        self._sorted_recipients_size = -1

    def rebind_store(self, store_class: Type[NogoodStore]) -> None:
        """Rebuild the store as *store_class*, preserving counter and contents.

        Nogoods are re-added in the original insertion order so any
        order-sensitive downstream behavior (scan order, tie-breaking via
        stable keys) is unchanged. ``add`` is not a counted operation, so
        the check counter is untouched by the swap.
        """
        if type(self.store) is store_class:
            return
        old = self.store
        replacement = store_class(self.variable, self.check_counter)
        # Replay with retention detached (no policy can evict during the
        # replay), preserving each nogood's pinned status; then carry over
        # the slot pins, the shared interner and the policy object itself —
        # its per-nogood state is keyed structurally, so it stays valid.
        for nogood in old.nogoods():
            replacement.add(
                nogood, pinned=old.is_permanently_pinned(nogood)
            )
        for slot, nogood in old.slot_pins():
            replacement.pin_slot(slot, nogood)
        if old.interner is not None:
            replacement.adopt_interner(old.interner)
        replacement.set_retention(old.retention)
        self.store = replacement

    def attach_retention(
        self,
        policy_factory: Optional["PolicyFactory"],
        interner: Optional["NogoodInterner"] = None,
    ) -> None:
        """Apply the ``--retention`` axis to this agent's store."""
        if interner is not None:
            self.store.adopt_interner(interner)
        if policy_factory is not None:
            self.store.set_retention(policy_factory())

    def pick_initial_value(self) -> Value:
        """The configured initial value, or a uniform random one."""
        if self._initial_value is not None:
            return self._initial_value
        return self.rng.choice(self.domain.values)

    def owner_of(self, variable: VariableId) -> AgentId:
        """The agent owning *variable* (used to route requests and nogoods)."""
        return self.problem.owner_of(variable)

    def local_assignment(self) -> Dict[VariableId, Value]:
        return {self.variable: self.value}

    def sorted_recipients(self) -> Tuple[AgentId, ...]:
        """Recipients in a deterministic order (for reproducible routing).

        Called on every broadcast, so the sorted copy is cached and
        invalidated by size: ``recipients`` only ever *grows* (``add`` on
        nogood receipt and value requests; episode resets keep the grown
        set), so an unchanged length means an unchanged set. The tuple is
        shared between calls — callers must not mutate it.
        """
        if len(self.recipients) != self._sorted_recipients_size:
            self._sorted_recipients = tuple(sorted(self.recipients))
            self._sorted_recipients_size = len(self.recipients)
        return self._sorted_recipients
