"""Distributed constraint satisfaction algorithms.

* :class:`~repro.algorithms.awc.AwcAgent` — asynchronous weak-commitment
  search with pluggable nogood learning (the paper's algorithm);
* :class:`~repro.algorithms.breakout.BreakoutAgent` — distributed breakout
  (the Section 4.3 baseline);
* :class:`~repro.algorithms.abt.AbtAgent` — asynchronous backtracking
  (the ancestor algorithm);
* :class:`~repro.algorithms.multi_awc.MultiVariableAwcAgent` — the
  multi-variable-per-agent extension sketched in Section 5.
"""

from .abt import AbtAgent, build_abt_agents
from .awc import AwcAgent, build_awc_agents
from .base import SingleVariableAgent, argmin_with_ties
from .breakout import WEIGHT_MODES, BreakoutAgent, build_breakout_agents
from .multi_awc import MultiVariableAwcAgent, build_multi_awc_agents
from .registry import (
    AlgorithmSpec,
    abt,
    algorithm_by_name,
    awc,
    db,
)

__all__ = [
    "AbtAgent",
    "AlgorithmSpec",
    "AwcAgent",
    "BreakoutAgent",
    "MultiVariableAwcAgent",
    "SingleVariableAgent",
    "WEIGHT_MODES",
    "abt",
    "algorithm_by_name",
    "argmin_with_ties",
    "awc",
    "build_abt_agents",
    "build_awc_agents",
    "build_breakout_agents",
    "build_multi_awc_agents",
    "db",
]
