"""The distributed breakout algorithm (DB), Section 4.3.

DB is concurrent hill-climbing with mutual exclusion between neighbors plus
Morris's breakout strategy for escaping local minima:

* each constraint (nogood) carries a positive integer *weight*, initially 1;
* an agent's *eval* of a value is the weighted sum of violated nogoods;
* agents alternate two message waves: ``ok?`` (current values) and
  ``improve`` (current eval and best possible improvement);
* after an ``improve`` wave, only the agent with the locally greatest
  improvement (ties broken by agent id) actually moves — neighbors skip
  their change, which prevents simultaneous oscillating moves;
* an agent in a *quasi-local-minimum* — it violates something, and neither
  it nor any neighbor can improve — increases the weights of its violated
  constraints by one (the breakout), changing the landscape.

Footnote 7 of the paper: this DB assigns a weight **per nogood** rather than
per variable pair as in the original DB paper, because the authors found it
better. Both modes are implemented (``weight_mode="nogood"`` /
``"pair"``); the ablation benchmark compares them.

Each message wave costs one cycle on the synchronous network, which is why
DB consumes roughly two cycles per move round — the structural reason AWC
beats it on ``cycle`` while DB, which never accumulates nogoods, wins on
``maxcck``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.assignment import AgentView
from ..core.exceptions import ModelError
from ..core.nogood import Nogood
from ..core.problem import AgentId, DisCSP
from ..core.variables import Value, VariableId
from ..runtime.messages import (
    ImproveMessage,
    Message,
    OkRoundMessage,
    Outgoing,
)
from .base import SingleVariableAgent

if TYPE_CHECKING:  # the builder imports derive_rng lazily at runtime
    from ..runtime.random_source import Seed

#: Weighting modes: this paper's per-nogood weights, or the original DB's
#: per-variable-pair weights.
WEIGHT_MODES = ("nogood", "pair")


class BreakoutAgent(SingleVariableAgent):
    """One distributed-breakout agent."""

    def __init__(
        self,
        agent_id: AgentId,
        problem: DisCSP,
        rng: random.Random,
        initial_value: Optional[Value] = None,
        weight_mode: str = "nogood",
    ) -> None:
        super().__init__(agent_id, problem, rng, initial_value)
        if weight_mode not in WEIGHT_MODES:
            raise ModelError(
                f"weight_mode must be one of {WEIGHT_MODES}, got "
                f"{weight_mode!r}"
            )
        self.weight_mode = weight_mode
        self.view = AgentView()
        self.weights: Dict[object, int] = {}
        self.round_index = 0
        self.phase = "ok"  # waiting for this round's ok? wave
        self._ok_waves: Dict[int, Dict[AgentId, OkRoundMessage]] = {}
        self._improve_waves: Dict[int, Dict[AgentId, ImproveMessage]] = {}
        self._my_eval = 0
        self._my_improve = 0
        self._best_value: Value = self.value
        self.breakouts = 0

    # -- simulator protocol ----------------------------------------------------

    def initialize(self) -> List[Outgoing]:
        self.value = self.pick_initial_value()
        if not self.recipients:
            # An unconstrained agent is trivially satisfied and silent.
            return []
        return self._broadcast(
            OkRoundMessage(self.id, self.variable, self.value, 0)
        )

    def step(self, messages: Sequence[Message]) -> List[Outgoing]:
        if not self.recipients:
            return []
        for message in messages:
            if isinstance(message, OkRoundMessage):
                self._ok_waves.setdefault(message.round_index, {})[
                    message.sender
                ] = message
            elif isinstance(message, ImproveMessage):
                self._improve_waves.setdefault(message.round_index, {})[
                    message.sender
                ] = message
        outgoing: List[Outgoing] = []
        progressed = True
        while progressed:
            progressed = False
            if self.phase == "ok" and self._wave_complete(self._ok_waves):
                outgoing.extend(self._finish_ok_wave())
                progressed = True
            elif self.phase == "improve" and self._wave_complete(
                self._improve_waves
            ):
                outgoing.extend(self._finish_improve_wave())
                progressed = True
        return outgoing

    # -- the two waves -----------------------------------------------------------

    def _wave_complete(self, waves: Dict[int, Dict[AgentId, Message]]) -> bool:
        wave = waves.get(self.round_index)
        return wave is not None and len(wave) == len(self.recipients)

    def _finish_ok_wave(self) -> List[Outgoing]:
        """All neighbors announced: evaluate, announce possible improvement."""
        wave = self._ok_waves.pop(self.round_index)
        for message in wave.values():
            self.view.update(message.variable, message.value, 0)
        self._my_eval = self._evaluate(self.value)
        others = [value for value in self.domain if value != self.value]
        violated_per_value = self.store.violated_batch(self.view, others)
        candidates: List[Tuple[Value, int]] = [
            (value, self._weighted_sum(violated))
            for value, violated in zip(others, violated_per_value)
        ]
        best_eval = self._my_eval
        ties: List[Value] = []
        for value, score in candidates:
            if score < best_eval:
                best_eval = score
                ties = [value]
            elif score == best_eval and ties:
                ties.append(value)
        if ties:
            self._best_value = (
                ties[0]
                if len(ties) == 1
                else ties[self.rng.randrange(len(ties))]
            )
        else:
            self._best_value = self.value
        self._my_improve = self._my_eval - best_eval
        self.phase = "improve"
        return self._broadcast(
            ImproveMessage(
                self.id, self._my_eval, self._my_improve, self.round_index
            )
        )

    def _finish_improve_wave(self) -> List[Outgoing]:
        """All improvements known: move or break out, start the next round."""
        wave = self._improve_waves.pop(self.round_index)
        can_move = self._my_improve > 0
        all_stuck = self._my_improve <= 0
        for sender, message in wave.items():
            if message.improve > self._my_improve or (
                message.improve == self._my_improve and sender < self.id
            ):
                can_move = False
            if message.improve > 0:
                all_stuck = False
        if self._my_eval > 0 and self._my_improve <= 0 and all_stuck:
            self._break_out()
        if can_move:
            self.value = self._best_value
        self.round_index += 1
        self.phase = "ok"
        return self._broadcast(
            OkRoundMessage(self.id, self.variable, self.value, self.round_index)
        )

    # -- weighted evaluation ------------------------------------------------------

    def _weight_key(self, nogood: Nogood) -> object:
        if self.weight_mode == "nogood":
            return nogood
        return nogood.variables  # one weight shared per variable set

    def _weight_of(self, nogood: Nogood) -> int:
        return self.weights.get(self._weight_key(nogood), 1)

    def _weighted_sum(self, violated: Sequence[Nogood]) -> int:
        total = 0
        for nogood in violated:
            total += self._weight_of(nogood)
        return total

    def _evaluate(self, value: Value) -> int:
        """Weighted count of nogoods violated with our variable at *value*."""
        return self._weighted_sum(self.store.violated(self.view, value))

    def _break_out(self) -> None:
        """Increase the weight of every currently violated nogood by one."""
        self.breakouts += 1
        for nogood in self.store.violated(self.view, self.value):
            key = self._weight_key(nogood)
            self.weights[key] = self.weights.get(key, 1) + 1

    def _broadcast(self, message: Message) -> List[Outgoing]:
        return [(recipient, message) for recipient in self.sorted_recipients()]


def build_breakout_agents(
    problem: DisCSP,
    seed: "Seed",
    initial_assignment: Optional[Dict[VariableId, Value]] = None,
    weight_mode: str = "nogood",
) -> List[BreakoutAgent]:
    """Build one DB agent per agent id of *problem* (cf. build_awc_agents)."""
    from ..runtime.random_source import derive_rng

    agents = []
    for agent_id in problem.agents:
        variable = problem.variables_of(agent_id)[0]
        initial = (
            initial_assignment.get(variable)
            if initial_assignment is not None
            else None
        )
        agents.append(
            BreakoutAgent(
                agent_id,
                problem,
                derive_rng(seed, "db-agent", agent_id),
                initial_value=initial,
                weight_mode=weight_mode,
            )
        )
    return agents
