"""Uniform construction of algorithm instances for the experiment harness.

An :class:`AlgorithmSpec` couples a display name (as used in the paper's
tables: "AWC+Rslv", "AWC+3rdRslv", "DB", ...) with a builder that produces
the per-agent objects for a given problem. The harness treats algorithms
entirely through this interface, so every table runner is a few lines of
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..core.exceptions import ModelError
from ..core.problem import DisCSP
from ..core.variables import Value, VariableId
from ..learning import LearningMethod, learning_method
from ..runtime.agent import SimulatedAgent
from ..runtime.metrics import MetricsCollector
from ..runtime.random_source import Seed
from .abt import build_abt_agents
from .awc import build_awc_agents
from .breakout import build_breakout_agents
from .multi_awc import build_multi_awc_agents

#: initial values per variable (or None to let each agent draw its own).
InitialAssignment = Optional[Dict[VariableId, Value]]

#: The sequence return is covariant, so builders may return their concrete
#: agent lists (List[AwcAgent], ...) without a cast.
Builder = Callable[
    [DisCSP, MetricsCollector, Seed, InitialAssignment],
    Sequence[SimulatedAgent],
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named recipe for building the agents of one algorithm."""

    name: str
    build: Builder

    def __repr__(self) -> str:
        return f"AlgorithmSpec({self.name})"


def awc(learning: object = "Rslv") -> AlgorithmSpec:
    """AWC with the given learning method (a name or a strategy instance)."""
    method = (
        learning
        if isinstance(learning, LearningMethod)
        else learning_method(str(learning))
    )

    def build(
        problem: DisCSP,
        metrics: MetricsCollector,
        seed: Seed,
        initial_assignment: InitialAssignment,
    ) -> Sequence[SimulatedAgent]:
        return build_awc_agents(
            problem, method, metrics, seed, initial_assignment
        )

    return AlgorithmSpec(name=f"AWC+{method.name}", build=build)


def multi_awc(learning: object = "Rslv") -> AlgorithmSpec:
    """Multi-variable AWC: one agent per owner, virtual handlers inside.

    Before this spec existed the multi-variable workload could only be
    built by calling :func:`~repro.algorithms.multi_awc.build_multi_awc_agents`
    by hand, so harness-level seams that dispatch through the registry —
    ``--store`` rebinding, the verify corpus, table runners — never reached
    it. Registering it routes the multi-variable agents through the same
    batch-consultation store backends as single-variable AWC.
    """
    method = (
        learning
        if isinstance(learning, LearningMethod)
        else learning_method(str(learning))
    )

    def build(
        problem: DisCSP,
        metrics: MetricsCollector,
        seed: Seed,
        initial_assignment: InitialAssignment,
    ) -> Sequence[SimulatedAgent]:
        return build_multi_awc_agents(
            problem, method, metrics, seed, initial_assignment
        )

    return AlgorithmSpec(name=f"MultiAWC+{method.name}", build=build)


def db(weight_mode: str = "nogood") -> AlgorithmSpec:
    """The distributed breakout algorithm."""

    def build(
        problem: DisCSP,
        metrics: MetricsCollector,
        seed: Seed,
        initial_assignment: InitialAssignment,
    ) -> Sequence[SimulatedAgent]:
        del metrics  # DB generates no nogoods
        return build_breakout_agents(
            problem, seed, initial_assignment, weight_mode=weight_mode
        )

    suffix = "" if weight_mode == "nogood" else f"({weight_mode})"
    return AlgorithmSpec(name=f"DB{suffix}", build=build)


def abt(learning: str = "view") -> AlgorithmSpec:
    """Asynchronous backtracking; ``learning`` picks the backtrack nogood.

    ``"view"`` is classic ABT (the whole agent view); ``"resolvent"``
    applies the paper's Section 3 rule inside ABT instead.
    """

    def build(
        problem: DisCSP,
        metrics: MetricsCollector,
        seed: Seed,
        initial_assignment: InitialAssignment,
    ) -> Sequence[SimulatedAgent]:
        del metrics
        return build_abt_agents(
            problem, seed, initial_assignment, learning=learning
        )

    suffix = "" if learning == "view" else f"({learning})"
    return AlgorithmSpec(name=f"ABT{suffix}", build=build)


def algorithm_by_name(name: str) -> AlgorithmSpec:
    """Parse a table-style algorithm label into a spec.

    Accepted: ``"DB"``, ``"ABT"``, ``"AWC+<learning>"`` and
    ``"MultiAWC+<learning>"`` where ``<learning>`` is any label accepted by
    :func:`repro.learning.learning_method`.
    """
    if name == "DB":
        return db()
    if name == "ABT":
        return abt()
    if name.startswith("MultiAWC+"):
        return multi_awc(name[len("MultiAWC+"):])
    if name.startswith("AWC+"):
        return awc(name[len("AWC+"):])
    raise ModelError(f"unknown algorithm: {name!r}")
