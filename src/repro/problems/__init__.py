"""Problem domains: graph coloring, SAT, and application-flavoured DisCSPs."""

from .applications import (
    MeetingSchedule,
    ResourceAllocation,
    meeting_scheduling,
    resource_allocation,
)
from .binary_csp import (
    BinaryCspInstance,
    is_nqueens_solution,
    nqueens_csp,
    nqueens_discsp,
    random_binary_csp,
)
from .coloring import (
    PAPER_DENSITY,
    ColoringInstance,
    coloring_csp,
    coloring_discsp,
    coloring_nogoods,
    random_coloring_instance,
)
from .graphs import (
    Edge,
    Graph,
    format_dimacs_graph,
    parse_dimacs_graph,
    planted_coloring_graph,
)

__all__ = [
    "BinaryCspInstance",
    "ColoringInstance",
    "Edge",
    "Graph",
    "MeetingSchedule",
    "PAPER_DENSITY",
    "ResourceAllocation",
    "coloring_csp",
    "coloring_discsp",
    "coloring_nogoods",
    "format_dimacs_graph",
    "is_nqueens_solution",
    "meeting_scheduling",
    "nqueens_csp",
    "nqueens_discsp",
    "parse_dimacs_graph",
    "planted_coloring_graph",
    "random_binary_csp",
    "random_coloring_instance",
    "resource_allocation",
]
