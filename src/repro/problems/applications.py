"""Application-flavoured DisCSPs for the examples.

The paper's introduction motivates distributed CSPs with multi-agent
application problems: distributed resource allocation, distributed
scheduling, and similar "find a consistent combination of agent actions"
tasks. These builders model two such domains directly as DisCSPs so the
examples exercise the public API on something other than random benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..core.exceptions import ModelError
from ..core.nogood import Nogood
from ..core.problem import DisCSP
from ..core.variables import Domain


@dataclass(frozen=True)
class MeetingSchedule:
    """A meeting-scheduling DisCSP plus its naming metadata.

    One variable (and one agent) per meeting, owned by its organizer's
    process; the domain is the set of time slots; two meetings sharing a
    participant must take different slots.
    """

    problem: DisCSP
    meeting_ids: Dict[str, int]
    slot_names: Tuple[str, ...]

    def meeting_of(self, variable: int) -> str:
        """The meeting name behind a variable id."""
        for name, identifier in self.meeting_ids.items():
            if identifier == variable:
                return name
        raise ModelError(f"no meeting for variable {variable}")

    def decode(self, assignment: Mapping[int, int]) -> Dict[str, str]:
        """Translate a solution back to ``{meeting name: slot name}``."""
        return {
            name: self.slot_names[assignment[identifier]]
            for name, identifier in self.meeting_ids.items()
        }


def meeting_scheduling(
    participants: Mapping[str, Sequence[str]],
    slots: Sequence[str],
) -> MeetingSchedule:
    """Build a meeting-scheduling DisCSP.

    *participants* maps each meeting name to the people who must attend;
    *slots* names the available time slots. Meetings sharing at least one
    person get pairwise all-different nogoods (one per slot, the same shape
    as the coloring encoding — scheduling *is* list coloring).
    """
    if not participants:
        raise ModelError("at least one meeting is required")
    if len(slots) < 1:
        raise ModelError("at least one time slot is required")
    meeting_names = sorted(participants)
    meeting_ids = {name: index for index, name in enumerate(meeting_names)}
    domain = Domain(range(len(slots)))
    domains = {meeting_ids[name]: domain for name in meeting_names}
    nogoods: List[Nogood] = []
    for i, first in enumerate(meeting_names):
        for second in meeting_names[i + 1:]:
            shared = set(participants[first]) & set(participants[second])
            if not shared:
                continue
            for slot_index in range(len(slots)):
                nogoods.append(
                    Nogood.of(
                        (meeting_ids[first], slot_index),
                        (meeting_ids[second], slot_index),
                    )
                )
    problem = DisCSP.one_variable_per_agent(domains, nogoods)
    return MeetingSchedule(
        problem=problem,
        meeting_ids=meeting_ids,
        slot_names=tuple(slots),
    )


@dataclass(frozen=True)
class ResourceAllocation:
    """A resource-allocation DisCSP plus naming metadata.

    One agent per task; the domain of a task is the set of resources able
    to serve it; two conflicting tasks (e.g. overlapping in time) may not
    use the same resource.
    """

    problem: DisCSP
    task_ids: Dict[str, int]
    resource_names: Tuple[str, ...]

    def decode(self, assignment: Mapping[int, int]) -> Dict[str, str]:
        """Translate a solution back to ``{task name: resource name}``."""
        return {
            name: self.resource_names[assignment[identifier]]
            for name, identifier in self.task_ids.items()
        }


def resource_allocation(
    capabilities: Mapping[str, Sequence[str]],
    conflicts: Iterable[Tuple[str, str]],
) -> ResourceAllocation:
    """Build a resource-allocation DisCSP.

    *capabilities* maps each task to the resources that can serve it;
    *conflicts* lists task pairs that must not share a resource. The nogoods
    prohibit each shared resource for each conflicting pair.
    """
    if not capabilities:
        raise ModelError("at least one task is required")
    task_names = sorted(capabilities)
    task_ids = {name: index for index, name in enumerate(task_names)}
    resource_names = tuple(
        sorted({r for resources in capabilities.values() for r in resources})
    )
    resource_index = {name: index for index, name in enumerate(resource_names)}
    domains = {}
    for name in task_names:
        usable = [resource_index[r] for r in capabilities[name]]
        if not usable:
            raise ModelError(f"task {name!r} has no usable resource")
        domains[task_ids[name]] = Domain(sorted(usable))
    nogoods: List[Nogood] = []
    for first, second in conflicts:
        for task in (first, second):
            if task not in task_ids:
                raise ModelError(f"conflict mentions unknown task {task!r}")
        shared = set(capabilities[first]) & set(capabilities[second])
        for resource in sorted(shared):
            index = resource_index[resource]
            nogoods.append(
                Nogood.of((task_ids[first], index), (task_ids[second], index))
            )
    problem = DisCSP.one_variable_per_agent(domains, nogoods)
    return ResourceAllocation(
        problem=problem,
        task_ids=task_ids,
        resource_names=resource_names,
    )
