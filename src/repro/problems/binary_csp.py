"""Random binary CSPs — the classic ⟨n, d, p1, p2⟩ model.

The DisCSP literature (including the AWC papers this work builds on)
standardly evaluates on random binary constraint networks: *n* variables
with domain size *d*; each of the n(n-1)/2 variable pairs is constrained
with probability *p1* (density); a constrained pair forbids each value
combination with probability *p2* (tightness). This module generates such
problems — in both "model B" style (exact counts) and planted-solvable
form — rounding out the paper's two benchmark families with the one its
ancestors used.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import GenerationError, ModelError
from ..core.nogood import Nogood
from ..core.problem import CSP, DisCSP
from ..core.variables import integer_domain
from ..runtime.random_source import Seed, derive_rng


@dataclass(frozen=True)
class BinaryCspInstance:
    """A generated random binary CSP, optionally with a planted solution."""

    csp: CSP
    num_variables: int
    domain_size: int
    constrained_pairs: Tuple[Tuple[int, int], ...]
    planted: Optional[Dict[int, int]] = None

    def to_discsp(self) -> DisCSP:
        """One variable per agent."""
        return DisCSP.from_csp(self.csp)


def _choose_exact(population: List, count: int, rng: random.Random) -> List:
    if count > len(population):
        raise GenerationError(
            f"cannot choose {count} items from {len(population)}"
        )
    return rng.sample(population, count)


def random_binary_csp(
    num_variables: int,
    domain_size: int,
    density: float,
    tightness: float,
    seed: Seed = 0,
    planted: bool = True,
) -> BinaryCspInstance:
    """Generate a random binary CSP (model B: exact pair/tuple counts).

    *density* (p1) is the fraction of variable pairs that are constrained;
    *tightness* (p2) the fraction of value pairs each constraint forbids.
    With ``planted=True`` a hidden solution is chosen first and forbidden
    tuples are drawn only among those that do not kill it, so the instance
    is satisfiable by construction (the paper's generators work the same
    way). With ``planted=False`` the instance is unrestricted and may be
    unsolvable.
    """
    if num_variables < 2:
        raise ModelError("need at least two variables")
    if domain_size < 1:
        raise ModelError("domain size must be positive")
    if not 0.0 <= density <= 1.0:
        raise ModelError(f"density must be in [0, 1], got {density}")
    if not 0.0 <= tightness <= 1.0:
        raise ModelError(f"tightness must be in [0, 1], got {tightness}")
    rng = derive_rng(seed, "binary-csp", num_variables, domain_size)
    solution: Optional[Dict[int, int]] = None
    if planted:
        solution = {
            variable: rng.randrange(domain_size)
            for variable in range(num_variables)
        }
    all_pairs = list(itertools.combinations(range(num_variables), 2))
    num_constrained = round(density * len(all_pairs))
    constrained = sorted(_choose_exact(all_pairs, num_constrained, rng))
    tuples_per_constraint = round(tightness * domain_size * domain_size)
    nogoods: List[Nogood] = []
    for u, v in constrained:
        combos = [
            (a, b)
            for a in range(domain_size)
            for b in range(domain_size)
            if solution is None
            or (a, b) != (solution[u], solution[v])
        ]
        count = min(tuples_per_constraint, len(combos))
        if planted and tuples_per_constraint > len(combos):
            raise GenerationError(
                "tightness too high to preserve the planted solution"
            )
        for a, b in _choose_exact(combos, count, rng):
            nogoods.append(Nogood.of((u, a), (v, b)))
    domain = integer_domain(domain_size)
    csp = CSP(
        {variable: domain for variable in range(num_variables)}, nogoods
    )
    if solution is not None and not csp.is_solution(solution):
        raise GenerationError("internal error: planted solution destroyed")
    return BinaryCspInstance(
        csp=csp,
        num_variables=num_variables,
        domain_size=domain_size,
        constrained_pairs=tuple(constrained),
        planted=solution,
    )


def nqueens_csp(size: int) -> CSP:
    """The n-queens problem as a CSP over nogood constraints.

    One variable per row (value = column); nogoods forbid shared columns
    and shared diagonals. Classic, dense, and solvable for every
    ``size >= 4`` — a handy stress problem for the distributed algorithms.
    """
    if size < 1:
        raise ModelError("board size must be positive")
    domain = integer_domain(size)
    nogoods: List[Nogood] = []
    for first in range(size):
        for second in range(first + 1, size):
            offset = second - first
            for column in range(size):
                nogoods.append(
                    Nogood.of((first, column), (second, column))
                )
                if column + offset < size:
                    nogoods.append(
                        Nogood.of((first, column), (second, column + offset))
                    )
                if column - offset >= 0:
                    nogoods.append(
                        Nogood.of((first, column), (second, column - offset))
                    )
    return CSP({row: domain for row in range(size)}, nogoods)


def nqueens_discsp(size: int) -> DisCSP:
    """n-queens, one row per agent."""
    return DisCSP.from_csp(nqueens_csp(size))


def is_nqueens_solution(size: int, assignment: Dict[int, int]) -> bool:
    """Independent checker (not via nogoods) used as a test oracle."""
    if set(assignment) != set(range(size)):
        return False
    for first in range(size):
        for second in range(first + 1, size):
            a, b = assignment[first], assignment[second]
            if a == b or abs(a - b) == second - first:
                return False
    return True
