"""Undirected graphs and the planted-coloring generator.

The paper's distributed 3-coloring instances are produced with the method of
Minton et al. (1992): plant a random partition of the *n* nodes into the
color classes, then sample *m* distinct arcs uniformly among pairs of nodes
in **different** classes. Such a graph is colorable by construction (the
planted partition is a proper coloring), and at m = 2.7n the instances sit
in the hard region identified by Cheeseman et al.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..core.exceptions import GenerationError, ModelError

#: An undirected edge, stored with the smaller endpoint first.
Edge = Tuple[int, int]


class Graph:
    """A simple undirected graph on nodes ``0..num_nodes-1``."""

    __slots__ = ("num_nodes", "_edges", "_adjacency")

    def __init__(self, num_nodes: int, edges: Iterable[Edge] = ()) -> None:
        if num_nodes < 1:
            raise ModelError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self._edges: Set[Edge] = set()
        self._adjacency: List[Set[int]] = [set() for _ in range(num_nodes)]
        for u, v in edges:
            self.add_edge(u, v)

    def add_edge(self, u: int, v: int) -> bool:
        """Add the edge {u, v}; returns False if it already existed."""
        if u == v:
            raise ModelError(f"self-loop on node {u}")
        for node in (u, v):
            if not 0 <= node < self.num_nodes:
                raise ModelError(
                    f"node {node} outside 0..{self.num_nodes - 1}"
                )
        edge = (u, v) if u < v else (v, u)
        if edge in self._edges:
            return False
        self._edges.add(edge)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        return True

    @property
    def edges(self) -> List[Edge]:
        """All edges, sorted (deterministic iteration for reproducibility)."""
        return sorted(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        """True if {u, v} is an edge."""
        edge = (u, v) if u < v else (v, u)
        return edge in self._edges

    def neighbors(self, node: int) -> FrozenSet[int]:
        """The nodes adjacent to *node*."""
        return frozenset(self._adjacency[node])

    def degree(self, node: int) -> int:
        """The number of edges at *node*."""
        return len(self._adjacency[node])

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def is_proper_coloring(self, colors: Dict[int, object]) -> bool:
        """True if *colors* assigns every node and no edge is monochromatic."""
        if any(node not in colors for node in range(self.num_nodes)):
            return False
        return all(colors[u] != colors[v] for u, v in self._edges)

    def connected_components(self) -> List[FrozenSet[int]]:
        """The connected components, each as a frozen node set."""
        seen: Set[int] = set()
        components: List[FrozenSet[int]] = []
        for start in range(self.num_nodes):
            if start in seen:
                continue
            stack = [start]
            component = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(self._adjacency[node] - component)
            seen |= component
            components.append(frozenset(component))
        return components

    def __repr__(self) -> str:
        return f"Graph({self.num_nodes} nodes, {self.num_edges} edges)"


def format_dimacs_graph(graph: Graph, comment: str = "") -> str:
    """Render *graph* in the DIMACS graph format (``p edge n m`` / ``e u v``).

    Nodes are 1-based in the format, 0-based in :class:`Graph`, matching
    the convention of the DIMACS coloring archives.
    """
    lines = []
    if comment:
        for comment_line in comment.splitlines():
            lines.append(f"c {comment_line}")
    lines.append(f"p edge {graph.num_nodes} {graph.num_edges}")
    for u, v in graph.edges:
        lines.append(f"e {u + 1} {v + 1}")
    return "\n".join(lines) + "\n"


def parse_dimacs_graph(text: str) -> Graph:
    """Parse DIMACS graph format text into a :class:`Graph`."""
    num_nodes = None
    edges: List[Edge] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] not in ("edge", "col"):
                raise ModelError(f"malformed DIMACS graph header: {line!r}")
            num_nodes = int(parts[2])
            continue
        if line.startswith("e"):
            if num_nodes is None:
                raise ModelError("edge line before the 'p edge' header")
            parts = line.split()
            if len(parts) != 3:
                raise ModelError(f"malformed edge line: {line!r}")
            edges.append((int(parts[1]) - 1, int(parts[2]) - 1))
    if num_nodes is None:
        raise ModelError("DIMACS graph input has no 'p edge' header")
    return Graph(num_nodes, edges)


def planted_coloring_graph(
    num_nodes: int,
    num_edges: int,
    num_colors: int,
    rng: random.Random,
    max_partition_attempts: int = 100,
) -> Tuple[Graph, Dict[int, int]]:
    """A colorable graph via Minton et al.'s planted-partition method.

    Returns ``(graph, planted)`` where *planted* is the hidden proper
    coloring. Raises :class:`GenerationError` if *num_edges* exceeds what any
    sampled partition can support.
    """
    if num_colors < 2:
        raise GenerationError("need at least 2 colors to have cross edges")
    for _attempt in range(max_partition_attempts):
        planted = {
            node: rng.randrange(num_colors) for node in range(num_nodes)
        }
        class_sizes = [0] * num_colors
        for color in planted.values():
            class_sizes[color] += 1
        total_pairs = num_nodes * (num_nodes - 1) // 2
        same_pairs = sum(size * (size - 1) // 2 for size in class_sizes)
        if num_edges <= total_pairs - same_pairs:
            break
    else:
        raise GenerationError(
            f"cannot place {num_edges} cross-class edges on {num_nodes} "
            f"nodes with {num_colors} colors"
        )
    graph = Graph(num_nodes)
    # Rejection sampling is fast far from saturation (the paper's m = 2.7n
    # is far below the ~n^2/3 cross pairs available); the attempt bound only
    # exists to fail loudly on adversarial parameters.
    attempts = 0
    max_attempts = 200 * num_edges + 10_000
    while graph.num_edges < num_edges:
        attempts += 1
        if attempts > max_attempts:
            raise GenerationError(
                f"edge sampling did not converge after {max_attempts} draws"
            )
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v or planted[u] == planted[v]:
            continue
        graph.add_edge(u, v)
    return graph, planted
