"""DIMACS CNF reading and writing.

The paper's 3ONESAT instances are AIM benchmark files fetched from the
DIMACS ftp archive. This environment has no network access, so the
experiments regenerate equivalent instances locally — but the parser means
that anyone holding the original ``aim-*.cnf`` files can drop them in and
run the benchmarks on the paper's exact instances.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Union

from ...core.exceptions import ModelError
from .cnf import CnfFormula


def parse_dimacs(text: str) -> CnfFormula:
    """Parse DIMACS CNF text into a :class:`CnfFormula`.

    Accepts the standard dialect: ``c`` comment lines, one ``p cnf <vars>
    <clauses>`` header, and whitespace-separated literals with ``0``
    terminating each clause (clauses may span lines). A ``%`` line — used as
    an end marker by several DIMACS-era archives, including the AIM
    families — ends the clause section.
    """
    num_vars = None
    declared_clauses = None
    clauses: List[List[int]] = []
    current: List[int] = []
    for raw_line in io.StringIO(text):
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("%"):
            break
        if line.startswith("p"):
            if num_vars is not None:
                raise ModelError("duplicate 'p' header in DIMACS input")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ModelError(f"malformed DIMACS header: {line!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        if num_vars is None:
            raise ModelError("DIMACS clauses appeared before the 'p' header")
        for token in line.split():
            literal = int(token)
            if literal == 0:
                clauses.append(current)
                current = []
            else:
                current.append(literal)
    if num_vars is None:
        raise ModelError("DIMACS input has no 'p cnf' header")
    if current:
        # Tolerate a missing final 0; several archive files omit it.
        clauses.append(current)
    if declared_clauses is not None and len(clauses) != declared_clauses:
        raise ModelError(
            f"DIMACS header declares {declared_clauses} clauses but "
            f"{len(clauses)} were found"
        )
    return CnfFormula(num_vars, clauses)


def read_dimacs(path: Union[str, Path]) -> CnfFormula:
    """Read a DIMACS CNF file."""
    return parse_dimacs(Path(path).read_text())


def format_dimacs(formula: CnfFormula, comment: str = "") -> str:
    """Render *formula* as DIMACS CNF text."""
    lines = []
    if comment:
        for comment_line in comment.splitlines():
            lines.append(f"c {comment_line}")
    lines.append(f"p cnf {formula.num_vars} {formula.num_clauses}")
    for clause in formula.clauses:
        lines.append(" ".join(str(literal) for literal in clause) + " 0")
    return "\n".join(lines) + "\n"


def write_dimacs(
    formula: CnfFormula, path: Union[str, Path], comment: str = ""
) -> None:
    """Write *formula* to *path* in DIMACS CNF format."""
    Path(path).write_text(format_dimacs(formula, comment))
