"""SAT problems: CNF formulas, DIMACS I/O, generators, DisCSP encoding."""

from .cnf import CnfFormula, Model
from .dimacs import format_dimacs, parse_dimacs, read_dimacs, write_dimacs
from .generators import (
    PAPER_3SAT_RATIO,
    PAPER_ONESAT_RATIO,
    SatInstance,
    planted_3sat,
    unique_solution_3sat,
)
from .to_discsp import (
    assignment_to_model,
    clause_to_nogood,
    model_to_assignment,
    sat_nogoods,
    sat_to_csp,
    sat_to_discsp,
)

__all__ = [
    "CnfFormula",
    "Model",
    "PAPER_3SAT_RATIO",
    "PAPER_ONESAT_RATIO",
    "SatInstance",
    "assignment_to_model",
    "clause_to_nogood",
    "format_dimacs",
    "model_to_assignment",
    "parse_dimacs",
    "planted_3sat",
    "read_dimacs",
    "sat_nogoods",
    "sat_to_csp",
    "sat_to_discsp",
    "unique_solution_3sat",
    "write_dimacs",
]
