"""Encoding SAT instances as distributed CSPs.

"A distributed 3SAT is a 3SAT where n Boolean variables and m clauses are
distributed among multiple agents ... one Boolean variable and its relevant
clauses to one agent."

Encoding: the boolean domain is ``{0, 1}`` with 1 = true. A clause is
violated exactly when *all* its literals are false, so each clause maps to
one nogood binding every mentioned variable to the value falsifying its
literal: clause ``(x1 ∨ ¬x2 ∨ x3)`` becomes the nogood
``{(1, 0), (2, 1), (3, 0)}``.
"""

from __future__ import annotations

from typing import Dict, List

from ...core.nogood import Nogood
from ...core.problem import CSP, DisCSP
from ...core.variables import BOOLEAN_DOMAIN
from .cnf import CnfFormula, Model


def clause_to_nogood(clause) -> Nogood:
    """The falsifying assignment of *clause*, as a nogood (0=false, 1=true)."""
    return Nogood(
        (abs(literal), 0 if literal > 0 else 1) for literal in clause
    )


def sat_nogoods(formula: CnfFormula) -> List[Nogood]:
    """One nogood per clause of *formula*."""
    return [clause_to_nogood(clause) for clause in formula.clauses]


def sat_to_csp(formula: CnfFormula) -> CSP:
    """*formula* as a centralized CSP over boolean variables."""
    domains = {
        variable: BOOLEAN_DOMAIN
        for variable in range(1, formula.num_vars + 1)
    }
    return CSP(domains, sat_nogoods(formula))


def sat_to_discsp(formula: CnfFormula) -> DisCSP:
    """*formula* as a DisCSP, agent *v* owning boolean variable *v*."""
    domains = {
        variable: BOOLEAN_DOMAIN
        for variable in range(1, formula.num_vars + 1)
    }
    return DisCSP.one_variable_per_agent(domains, sat_nogoods(formula))


def model_to_assignment(model: Model) -> Dict[int, int]:
    """A SAT model (bools) as a CSP assignment (0/1 values)."""
    return {variable: int(value) for variable, value in model.items()}


def assignment_to_model(assignment: Dict[int, int]) -> Model:
    """A CSP assignment (0/1 values) as a SAT model (bools)."""
    return {variable: bool(value) for variable, value in assignment.items()}
