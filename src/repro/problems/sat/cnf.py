"""CNF formulas with DIMACS literal conventions.

Variables are ``1..num_vars``; a positive literal ``v`` means "variable v is
true", a negative literal ``-v`` means false. This matches both the DIMACS
file format (the paper pulls its 3ONESAT instances from the DIMACS
benchmark archive) and the clause form used by the DPLL substrate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ...core.exceptions import ModelError
from ...solvers.dpll import Clause, normalize_clause

#: A model assigns every variable a boolean.
Model = Dict[int, bool]


class CnfFormula:
    """An immutable CNF formula."""

    __slots__ = ("num_vars", "clauses")

    def __init__(
        self, num_vars: int, clauses: Iterable[Sequence[int]]
    ) -> None:
        if num_vars < 1:
            raise ModelError(f"num_vars must be positive, got {num_vars}")
        normalized: List[Clause] = []
        for raw in clauses:
            clause = normalize_clause(raw)
            if clause is None:
                continue  # tautologies carry no information
            for literal in clause:
                if abs(literal) > num_vars:
                    raise ModelError(
                        f"literal {literal} exceeds num_vars={num_vars}"
                    )
            normalized.append(clause)
        self.num_vars = num_vars
        self.clauses: Tuple[Clause, ...] = tuple(normalized)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def ratio(self) -> float:
        """The clause/variable ratio m/n the paper parameterizes by."""
        return self.num_clauses / self.num_vars

    def variables_used(self) -> Set[int]:
        """The variables occurring in at least one clause."""
        return {abs(literal) for clause in self.clauses for literal in clause}

    def literal_satisfied(self, literal: int, model: Model) -> bool:
        """True if *literal* holds under *model*."""
        value = model.get(abs(literal))
        if value is None:
            raise ModelError(f"model does not assign variable {abs(literal)}")
        return value if literal > 0 else not value

    def clause_satisfied(self, clause: Sequence[int], model: Model) -> bool:
        """True if at least one literal of *clause* holds under *model*."""
        return any(
            self.literal_satisfied(literal, model) for literal in clause
        )

    def satisfied_by(self, model: Model) -> bool:
        """True if every clause holds under *model*."""
        return all(
            self.clause_satisfied(clause, model) for clause in self.clauses
        )

    def violated_clauses(self, model: Model) -> List[Clause]:
        """The clauses *model* falsifies."""
        return [
            clause
            for clause in self.clauses
            if not self.clause_satisfied(clause, model)
        ]

    def with_clauses(self, extra: Iterable[Sequence[int]]) -> "CnfFormula":
        """A new formula extending this one with *extra* clauses."""
        return CnfFormula(self.num_vars, list(self.clauses) + list(extra))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CnfFormula):
            return NotImplemented
        return (
            self.num_vars == other.num_vars
            and sorted(self.clauses) == sorted(other.clauses)
        )

    def __hash__(self) -> int:
        return hash((self.num_vars, tuple(sorted(self.clauses))))

    def __repr__(self) -> str:
        return (
            f"CnfFormula(n={self.num_vars}, m={self.num_clauses}, "
            f"ratio={self.ratio:.2f})"
        )
