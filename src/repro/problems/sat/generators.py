"""Random 3SAT generators in the styles the paper uses.

The paper's 3SAT workloads come from Cha & Iwama's AIM generators:

* **3SAT-GEN** — satisfiable instances at a chosen clause/variable ratio
  (the paper uses m = 4.3 n). We reproduce the defining property with a
  planted-solution generator: fix a hidden model, then sample distinct
  3-clauses uniformly among those the model satisfies, enforcing that every
  variable occurs somewhere (so every agent of the derived DisCSP actually
  participates).

* **3ONESAT-GEN** — satisfiable instances with **exactly one** model at
  ratio ≈ 3.4. We plant a model, start from a planted base formula, and
  repeatedly (a) ask a complete SAT engine (CDCL by default; plain DPLL
  optionally) for a model different from the planted one, (b) add a
  3-clause satisfied by the planted model but
  falsified by the found one. When the solver proves no second model
  exists, the instance is certifiably unique. Padding clauses satisfied by
  the planted model (which can never add models) bring the clause count up
  to the target ratio when the process converges early.

The substitution for the original AIM files is documented in DESIGN.md:
both generators produce instances with exactly the properties the paper's
experiments rely on, machine-checked where it matters (uniqueness).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ...core.exceptions import GenerationError
from ...runtime.random_source import Seed, derive_rng
from ...solvers.cdcl import CdclSolver
from ...solvers.dpll import Clause, DpllSolver, blocking_clause, normalize_clause
from .cnf import CnfFormula, Model

#: The paper's ratios.
PAPER_3SAT_RATIO = 4.3
PAPER_ONESAT_RATIO = 3.4


@dataclass(frozen=True)
class SatInstance:
    """A generated formula plus its planted model."""

    formula: CnfFormula
    planted: Model

    @property
    def num_vars(self) -> int:
        return self.formula.num_vars


def _random_model(num_vars: int, rng: random.Random) -> Model:
    return {variable: rng.random() < 0.5 for variable in range(1, num_vars + 1)}


def _random_clause_satisfied_by(
    model: Model,
    rng: random.Random,
    num_vars: int,
    include: Sequence[int] = (),
    balanced: bool = True,
) -> Clause:
    """A random non-tautological 3-clause that *model* satisfies.

    *include* forces specific variables into the clause (used to guarantee
    variable coverage). With ``balanced=True`` the clause must also be
    satisfied by the *complement* of the model (i.e. its literals are mixed:
    neither all true nor all false under the model). Complementary planting
    is the standard antidote to the well-known bias of naive planted 3SAT,
    whose polarity statistics point local search straight at the hidden
    solution — with it, the instances behave like the paper's hard
    satisfiable AIM instances rather than like easy planted ones.
    """
    while True:
        variables = list(include)
        while len(variables) < 3:
            candidate = rng.randint(1, num_vars)
            if candidate not in variables:
                variables.append(candidate)
        literals = tuple(
            variable if rng.random() < 0.5 else -variable
            for variable in variables
        )
        agreeing = sum(
            (literal > 0) == model[abs(literal)] for literal in literals
        )
        if balanced:
            acceptable = 0 < agreeing < len(literals)
        else:
            acceptable = agreeing > 0
        if acceptable:
            clause = normalize_clause(literals)
            if clause is not None:
                return clause


def planted_3sat(
    num_vars: int,
    ratio: float = PAPER_3SAT_RATIO,
    seed: Seed = 0,
    num_clauses: Optional[int] = None,
    ensure_coverage: bool = True,
    balanced: bool = True,
) -> SatInstance:
    """A satisfiable random 3SAT instance with a planted model (3SAT-GEN style).

    Clauses are distinct; with *ensure_coverage* every variable occurs in at
    least one clause (feasible only when ``m >= ceil(n / 3)``). With the
    default ``balanced=True`` every clause is satisfied by the planted
    model's complement too, which removes the polarity bias that makes
    naively planted instances easy for local search (see
    :func:`_random_clause_satisfied_by`); the resulting difficulty matches
    the paper's AIM workloads much more closely. Note that the complement is
    then also a model, so the instance has at least two solutions.
    """
    rng = derive_rng(seed, "3sat-gen", num_vars)
    if num_clauses is None:
        num_clauses = round(ratio * num_vars)
    if num_vars < 3:
        raise GenerationError("3SAT generation needs at least 3 variables")
    if ensure_coverage and 3 * num_clauses < num_vars:
        raise GenerationError(
            f"{num_clauses} clauses cannot cover {num_vars} variables"
        )
    model = _random_model(num_vars, rng)
    clauses: Set[Clause] = set()
    attempts = 0
    max_attempts = 200 * num_clauses + 10_000
    while len(clauses) < num_clauses:
        attempts += 1
        if attempts > max_attempts:
            raise GenerationError(
                f"clause sampling did not converge after {max_attempts} draws"
            )
        clauses.add(
            _random_clause_satisfied_by(model, rng, num_vars, balanced=balanced)
        )
    ordered = sorted(clauses)
    if ensure_coverage:
        ordered = _ensure_variable_coverage(
            ordered, model, rng, num_vars, balanced
        )
    formula = CnfFormula(num_vars, ordered)
    return SatInstance(formula=formula, planted=model)


def _ensure_variable_coverage(
    clauses: List[Clause],
    model: Model,
    rng: random.Random,
    num_vars: int,
    balanced: bool = True,
) -> List[Clause]:
    """Swap clauses until every variable occurs, keeping the count fixed.

    Missing variables get fresh clauses containing them; each new clause
    replaces one whose removal keeps all its variables covered elsewhere.
    """
    occurrences: Dict[int, int] = {v: 0 for v in range(1, num_vars + 1)}
    for clause in clauses:
        for literal in clause:
            occurrences[abs(literal)] += 1
    missing = [v for v, count in occurrences.items() if count == 0]
    rng.shuffle(missing)
    clause_set = set(clauses)
    # Cover up to three missing variables per replacement clause.
    while missing:
        batch = missing[:3]
        missing = missing[3:]
        new_clause = None
        for _ in range(1000):
            candidate = _random_clause_satisfied_by(
                model, rng, num_vars, include=batch, balanced=balanced
            )
            if candidate not in clause_set:
                new_clause = candidate
                break
        if new_clause is None:
            raise GenerationError(
                f"could not build a fresh covering clause for {batch}"
            )
        removable = None
        for clause in clause_set:
            if all(occurrences[abs(literal)] >= 2 for literal in clause):
                removable = clause
                break
        if removable is None:
            raise GenerationError(
                "no removable clause while enforcing variable coverage"
            )
        clause_set.remove(removable)
        for literal in removable:
            occurrences[abs(literal)] -= 1
        clause_set.add(new_clause)
        for literal in new_clause:
            occurrences[abs(literal)] += 1
    return sorted(clause_set)


def unique_solution_3sat(
    num_vars: int,
    ratio: float = PAPER_ONESAT_RATIO,
    seed: Seed = 0,
    base_ratio: float = 2.8,
    max_iterations: Optional[int] = None,
    max_nodes: int = 5_000_000,
    verify: bool = False,
    engine: str = "cdcl",
) -> SatInstance:
    """A satisfiable 3SAT instance with exactly one model (3ONESAT-GEN style).

    The uniqueness proof is the final UNSAT call of the elimination loop:
    when the DPLL solver finds no model besides the planted one, exactly one
    model remains. Padding afterwards only adds clauses the planted model
    satisfies, which cannot create new models. Set *verify* for an
    independent ``count_models(limit=2) == 1`` re-check (redundant but
    reassuring; used by the tests).
    """
    rng = derive_rng(seed, "3onesat-gen", num_vars)
    base = planted_3sat(
        num_vars,
        ratio=base_ratio,
        seed=derive_seed_for_base(seed, num_vars),
        ensure_coverage=True,
    )
    model = base.planted
    clauses: Set[Clause] = set(base.formula.clauses)
    block = blocking_clause(model)
    away_from_model = {variable: not value for variable, value in model.items()}
    if max_iterations is None:
        max_iterations = 200 * num_vars + 1000
    for _iteration in range(max_iterations):
        if engine == "cdcl":
            solver = CdclSolver(num_vars, sorted(clauses))
        elif engine == "dpll":
            solver = DpllSolver(
                num_vars, sorted(clauses), max_nodes=max_nodes
            )
        else:
            raise GenerationError(f"unknown solver engine {engine!r}")
        solver.add_clause(block)
        other = solver.solve(polarity=away_from_model)
        if other is None:
            break
        clauses.add(_separating_clause(model, other, rng, num_vars, clauses))
    else:
        raise GenerationError(
            f"unique-solution elimination did not converge within "
            f"{max_iterations} iterations (n={num_vars})"
        )
    target = round(ratio * num_vars)
    attempts = 0
    while len(clauses) < target:
        attempts += 1
        if attempts > 200 * target + 10_000:
            raise GenerationError("padding did not converge")
        clauses.add(_random_clause_satisfied_by(model, rng, num_vars))
    formula = CnfFormula(num_vars, sorted(clauses))
    if verify:
        checker = DpllSolver(num_vars, formula.clauses, max_nodes=max_nodes)
        count = checker.count_models(limit=2)
        if count != 1:
            raise GenerationError(
                f"uniqueness verification failed: {count} models"
            )
    return SatInstance(formula=formula, planted=model)


def derive_seed_for_base(seed: Seed, num_vars: int) -> int:
    """The seed of the base formula inside :func:`unique_solution_3sat`."""
    from ...runtime.random_source import derive_seed

    return derive_seed(seed, "3onesat-base", num_vars)


def _separating_clause(
    model: Model,
    other: Model,
    rng: random.Random,
    num_vars: int,
    existing: Set[Clause],
) -> Clause:
    """A fresh 3-clause satisfied by *model* but falsified by *other*.

    Literals on variables where the models differ take *model*'s polarity
    (true under it, false under *other*); literals on agreeing variables
    take the polarity falsified by both. At least one literal comes from the
    difference set, so the clause separates the two models.
    """
    difference = [
        variable for variable in range(1, num_vars + 1)
        if model[variable] != other[variable]
    ]
    if not difference:
        raise GenerationError("models to separate are identical")
    agreeing = [
        variable for variable in range(1, num_vars + 1)
        if model[variable] == other[variable]
    ]
    for _ in range(10_000):
        take_diff = rng.randint(1, min(3, len(difference)))
        if 3 - take_diff > len(agreeing):
            take_diff = 3 - len(agreeing)
        take_agree = 3 - take_diff
        variables = rng.sample(difference, take_diff) + rng.sample(
            agreeing, take_agree
        )
        literals = []
        for variable in variables:
            if model[variable] != other[variable]:
                literals.append(variable if model[variable] else -variable)
            else:
                literals.append(-variable if other[variable] else variable)
        clause = normalize_clause(literals)
        if clause is not None and clause not in existing:
            return clause
    raise GenerationError("could not construct a fresh separating clause")
