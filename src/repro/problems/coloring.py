"""Distributed graph coloring: the paper's first benchmark domain.

"A distributed 3-coloring problem is a 3-coloring problem where n nodes
(variables) and m arcs (constraints) are distributed among multiple agents.
We generate a solvable problem instance with m = 2.7n using the method in
[Minton et al.], and distribute one variable and its relevant nogoods to one
agent."

Each arc ``{u, v}`` becomes ``num_colors`` nogoods — one per color ``c``:
``{(u, c), (v, c)}`` — which is exactly the nogood form the paper's Figure 1
example uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.nogood import Nogood
from ..core.problem import CSP, DisCSP
from ..core.variables import integer_domain
from ..runtime.random_source import Seed, derive_rng
from .graphs import Graph, planted_coloring_graph

#: The paper's edge density for distributed 3-coloring (m = 2.7 n).
PAPER_DENSITY = 2.7


@dataclass(frozen=True)
class ColoringInstance:
    """A generated coloring problem plus its planted solution."""

    graph: Graph
    num_colors: int
    planted: Dict[int, int]

    def to_csp(self) -> CSP:
        """The instance as a centralized CSP."""
        return coloring_csp(self.graph, self.num_colors)

    def to_discsp(self) -> DisCSP:
        """The instance as a DisCSP, one node per agent."""
        return coloring_discsp(self.graph, self.num_colors)


def coloring_nogoods(graph: Graph, num_colors: int) -> List[Nogood]:
    """One nogood per (arc, color): adjacent nodes may not share a color."""
    nogoods = []
    for u, v in graph.edges:
        for color in range(num_colors):
            nogoods.append(Nogood.of((u, color), (v, color)))
    return nogoods


def coloring_csp(graph: Graph, num_colors: int) -> CSP:
    """The coloring problem as a centralized CSP."""
    domain = integer_domain(num_colors)
    domains = {node: domain for node in range(graph.num_nodes)}
    return CSP(domains, coloring_nogoods(graph, num_colors))


def coloring_discsp(graph: Graph, num_colors: int) -> DisCSP:
    """The coloring problem as a DisCSP, agent *i* owning node *i*."""
    domain = integer_domain(num_colors)
    domains = {node: domain for node in range(graph.num_nodes)}
    return DisCSP.one_variable_per_agent(
        domains, coloring_nogoods(graph, num_colors)
    )


def random_coloring_instance(
    num_nodes: int,
    density: float = PAPER_DENSITY,
    num_colors: int = 3,
    seed: Seed = 0,
    num_edges: Optional[int] = None,
) -> ColoringInstance:
    """A solvable random coloring instance at the paper's parameters.

    *density* is edges-per-node (the paper's 2.7); pass *num_edges* to pin
    the count exactly instead.
    """
    rng = derive_rng(seed, "coloring", num_nodes, num_colors)
    if num_edges is None:
        num_edges = round(density * num_nodes)
    graph, planted = planted_coloring_graph(
        num_nodes, num_edges, num_colors, rng
    )
    return ColoringInstance(graph=graph, num_colors=num_colors, planted=planted)
