"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so that fully offline
environments (no ``wheel`` package available) can still do an editable
install through setuptools' legacy ``develop`` path.
"""

from setuptools import setup

setup()
