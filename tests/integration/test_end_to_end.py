"""Cross-module integration: every algorithm against every problem family,
asynchronous networks, and the paper's qualitative claims in miniature."""

import pytest

from repro.algorithms.registry import abt, algorithm_by_name, awc, db
from repro.experiments.runner import run_cell, run_trial
from repro.problems.coloring import coloring_discsp, random_coloring_instance
from repro.problems.sat.generators import planted_3sat, unique_solution_3sat
from repro.problems.sat.to_discsp import sat_to_discsp
from repro.runtime.network import RandomDelayNetwork
from repro.runtime.random_source import derive_rng

from ..conftest import clique_graph

ALGORITHMS = ["AWC+Rslv", "AWC+Mcs", "AWC+No", "AWC+3rdRslv", "DB", "ABT"]


@pytest.fixture(scope="module")
def coloring_problem():
    return random_coloring_instance(15, seed=8).to_discsp()


@pytest.fixture(scope="module")
def sat_problem():
    return sat_to_discsp(planted_3sat(12, seed=8).formula)


@pytest.fixture(scope="module")
def onesat_problem():
    return sat_to_discsp(unique_solution_3sat(10, seed=8).formula)


class TestEveryAlgorithmEveryFamily:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_coloring(self, coloring_problem, name):
        result = run_trial(
            coloring_problem, algorithm_by_name(name), seed=4, max_cycles=8000
        )
        assert result.solved, name
        assert coloring_problem.is_solution(result.assignment)

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_sat(self, sat_problem, name):
        result = run_trial(
            sat_problem, algorithm_by_name(name), seed=4, max_cycles=8000
        )
        assert result.solved, name
        assert sat_problem.is_solution(result.assignment)

    @pytest.mark.parametrize("name", ["AWC+Rslv", "AWC+4thRslv", "DB"])
    def test_onesat(self, onesat_problem, name):
        result = run_trial(
            onesat_problem, algorithm_by_name(name), seed=4, max_cycles=8000
        )
        assert result.solved, name


class TestAsynchronousNetworks:
    """Section 5: the algorithms are designed for fully asynchronous systems."""

    def delayed_factory(self, fifo):
        def factory(seed):
            return RandomDelayNetwork(
                max_delay=4, rng=derive_rng(seed, "net"), fifo=fifo
            )

        return factory

    @pytest.mark.parametrize("fifo", [True, False])
    def test_awc_solves_under_delays(self, coloring_problem, fifo):
        result = run_trial(
            coloring_problem,
            awc("Rslv"),
            seed=4,
            max_cycles=8000,
            network_factory=self.delayed_factory(fifo),
        )
        assert result.solved
        assert coloring_problem.is_solution(result.assignment)

    @pytest.mark.parametrize("fifo", [True, False])
    def test_db_solves_under_delays(self, coloring_problem, fifo):
        # DB's round buffering must tolerate out-of-round arrivals.
        result = run_trial(
            coloring_problem,
            db(),
            seed=4,
            max_cycles=8000,
            network_factory=self.delayed_factory(fifo),
        )
        assert result.solved

    def test_abt_solves_under_fifo_delays(self, coloring_problem):
        result = run_trial(
            coloring_problem,
            abt(),
            seed=4,
            max_cycles=8000,
            network_factory=self.delayed_factory(True),
        )
        assert result.solved

    def test_awc_proves_unsolvable_under_delays(self):
        problem = coloring_discsp(clique_graph(4), 3)
        result = run_trial(
            problem,
            awc("Rslv"),
            seed=4,
            max_cycles=30000,
            network_factory=self.delayed_factory(True),
        )
        assert result.unsolvable


class TestQualitativeClaims:
    """The paper's headline comparisons, on small instances."""

    def test_learning_beats_no_learning_on_cycles(self):
        # Table 1's main effect. Averaged over a small cell to damp noise.
        instances = [
            random_coloring_instance(25, seed=s).to_discsp() for s in range(3)
        ]
        rslv = run_cell(instances, awc("Rslv"), 3, master_seed=1, n=25)
        no = run_cell(instances, awc("No"), 3, master_seed=1, n=25)
        assert rslv.percent_solved == 100.0
        assert rslv.mean_cycle < no.mean_cycle

    def test_resolvent_cheaper_than_mcs_on_checks(self):
        # Tables 1–3: Rslv's maxcck below Mcs's.
        instances = [
            random_coloring_instance(25, seed=s).to_discsp() for s in range(3)
        ]
        rslv = run_cell(instances, awc("Rslv"), 3, master_seed=1, n=25)
        mcs = run_cell(instances, awc("Mcs"), 3, master_seed=1, n=25)
        assert rslv.mean_maxcck < mcs.mean_maxcck

    def test_awc_fewer_cycles_than_db(self):
        # Tables 8–10: AWC+kthRslv wins cycle, DB wins maxcck.
        instances = [
            sat_to_discsp(unique_solution_3sat(12, seed=s).formula)
            for s in range(2)
        ]
        awc_cell = run_cell(instances, awc("4thRslv"), 4, master_seed=1, n=12)
        db_cell = run_cell(instances, db(), 4, master_seed=1, n=12)
        assert awc_cell.percent_solved == 100.0
        assert awc_cell.mean_cycle < db_cell.mean_cycle

    def test_recording_reduces_redundant_generation(self):
        # Table 4's effect: without recording, agents run into the same
        # dead ends again and regenerate nogoods. Needs instances hard
        # enough to produce repeated deadends, hence n=20 and several inits.
        instances = [
            sat_to_discsp(unique_solution_3sat(30, seed=s).formula)
            for s in range(3)
        ]
        rec = run_cell(instances, awc("Rslv/rec"), 6, master_seed=1, n=30)
        norec = run_cell(instances, awc("Rslv/norec"), 6, master_seed=1, n=30)
        assert norec.mean_redundant_generations > rec.mean_redundant_generations
        # Redundancy should also dominate as a *share* of generations: most
        # norec generations rediscover old nogoods.
        assert (
            norec.mean_redundant_generations / max(norec.mean_generated, 1)
            > rec.mean_redundant_generations / max(rec.mean_generated, 1)
        )


class TestSolutionAgreement:
    def test_all_algorithms_agree_with_centralized_oracle(self, sat_problem):
        from repro.solvers.backtracking import solve_csp

        assert solve_csp(sat_problem.csp) is not None
        for name in ("AWC+Rslv", "DB", "ABT"):
            result = run_trial(
                sat_problem, algorithm_by_name(name), seed=0, max_cycles=8000
            )
            assert result.solved
            assert sat_problem.csp.is_solution(result.assignment)
