"""Combined stress conditions: extensions composed together.

Each extension is tested alone elsewhere; these runs compose them — hosted
multi-variable agents on delayed networks, lossy links with size-bounded
learning, the full CLI pipeline — because composition is where integration
bugs hide.
"""

import pytest

from repro.algorithms import build_multi_awc_agents
from repro.algorithms.registry import awc
from repro.core import DisCSP
from repro.experiments.runner import (
    random_initial_assignment,
    run_trial,
)
from repro.learning import learning_method
from repro.problems.coloring import coloring_csp, random_coloring_instance
from repro.runtime.metrics import MetricsCollector
from repro.runtime.network import (
    FixedDelayNetwork,
    LossyNetwork,
    RandomDelayNetwork,
)
from repro.runtime.random_source import derive_rng
from repro.runtime.simulator import SynchronousSimulator
from repro.runtime.trace import TraceRecorder


class TestMultiVariableOnSlowNetworks:
    @pytest.mark.parametrize(
        "network_factory",
        [
            lambda: FixedDelayNetwork(3),
            lambda: RandomDelayNetwork(max_delay=4, rng=derive_rng(1, "x")),
            lambda: LossyNetwork(loss_rate=0.3, rng=derive_rng(1, "y")),
        ],
        ids=["fixed", "random", "lossy"],
    )
    def test_hosted_agents_solve_under_delays(self, network_factory):
        instance = random_coloring_instance(12, seed=3)
        csp = coloring_csp(instance.graph, 3)
        problem = DisCSP(csp, {v: v % 4 for v in csp.variables})
        metrics = MetricsCollector()
        agents = build_multi_awc_agents(
            problem, learning_method("Rslv"), metrics, seed=5,
            initial_assignment=random_initial_assignment(problem, 5),
        )
        result = SynchronousSimulator(
            problem,
            agents,
            network=network_factory(),
            max_cycles=20_000,
            metrics=metrics,
        ).run()
        assert result.solved
        assert problem.is_solution(result.assignment)


class TestSizeBoundedOnLossyLinks:
    def test_bounded_learning_survives_loss(self):
        problem = random_coloring_instance(15, seed=6).to_discsp()

        def factory(seed):
            return LossyNetwork(
                loss_rate=0.4, retransmit_after=2,
                rng=derive_rng(seed, "lossy-bounded"),
            )

        result = run_trial(
            problem,
            awc("3rdRslv"),
            seed=2,
            max_cycles=20_000,
            network_factory=factory,
        )
        assert result.solved
        assert problem.is_solution(result.assignment)


class TestTracedDelayedRun:
    def test_tracer_composes_with_delay_network(self):
        problem = random_coloring_instance(10, seed=2).to_discsp()
        metrics = MetricsCollector(keep_history=True)
        from repro.algorithms import build_awc_agents

        agents = build_awc_agents(
            problem, learning_method("Rslv"), metrics, seed=1,
            initial_assignment=random_initial_assignment(problem, 1),
        )
        tracer = TraceRecorder()
        result = SynchronousSimulator(
            problem,
            agents,
            network=FixedDelayNetwork(2),
            metrics=metrics,
            tracer=tracer,
        ).run()
        assert result.solved
        assert len(tracer.messages) == result.messages_sent
        assert len(result.max_history) == result.cycles
