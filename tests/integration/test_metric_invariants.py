"""Cross-algorithm metric invariants.

Whatever the algorithm, the paper's measures obey arithmetic identities:
maxcck is the sum of per-cycle maxima, so it can never exceed the total
check count nor be negative, and with history enabled the retained maxima
must sum to it exactly. Pinning these for every algorithm guards the
accounting layer against drift when algorithms evolve.
"""

import pytest

from repro.algorithms.registry import abt, algorithm_by_name, awc, db
from repro.experiments.runner import random_initial_assignment
from repro.problems.coloring import random_coloring_instance
from repro.runtime.metrics import MetricsCollector
from repro.runtime.simulator import SynchronousSimulator

ALGORITHMS = ["AWC+Rslv", "AWC+Mcs", "AWC+No", "AWC+3rdRslv", "DB", "ABT"]


def run_with_history(problem, label, seed=3):
    metrics = MetricsCollector(keep_history=True)
    spec = algorithm_by_name(label)
    agents = spec.build(
        problem, metrics, seed, random_initial_assignment(problem, seed)
    )
    simulator = SynchronousSimulator(
        problem, agents, metrics=metrics, max_cycles=8000
    )
    result = simulator.run()
    return result, metrics, agents


@pytest.fixture(scope="module")
def problem():
    return random_coloring_instance(14, seed=5).to_discsp()


@pytest.mark.parametrize("label", ALGORITHMS)
class TestInvariants:
    def test_history_sums_to_maxcck(self, problem, label):
        result, _metrics, _agents = run_with_history(problem, label)
        assert sum(result.max_history) == result.maxcck
        assert len(result.max_history) == result.cycles

    def test_maxcck_bounded_by_total(self, problem, label):
        result, _metrics, _agents = run_with_history(problem, label)
        assert 0 <= result.maxcck <= result.total_checks

    def test_total_checks_equals_agent_counters(self, problem, label):
        result, _metrics, agents = run_with_history(problem, label)
        agent_total = sum(agent.check_counter.total for agent in agents)
        assert result.total_checks == agent_total

    def test_message_conservation(self, problem, label):
        result, _metrics, _agents = run_with_history(problem, label)
        assert result.messages_sent >= 0
        # Every trial here should actually solve; capped/quiescent runs
        # would make the remaining assertions vacuous.
        assert result.solved
        assert problem.is_solution(result.assignment)

    def test_generation_counts_consistent(self, problem, label):
        result, _metrics, _agents = run_with_history(problem, label)
        assert 0 <= result.redundant_generations <= result.generated_nogoods
