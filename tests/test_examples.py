"""Every example script must run to completion.

Examples are documentation that executes; a broken one is worse than none.
Each runs in a subprocess with a timeout, in a temp working directory so
cache artifacts stay out of the repository. The subprocess inherits no
import path from pytest, so ``PYTHONPATH`` must point at ``src/``
explicitly — examples assume an installed (or path-configured) ``repro``.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
SRC_DIR = EXAMPLES_DIR.parent / "src"


def _example_environment() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=600,
        env=_example_environment(),
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_every_example_has_a_docstring_and_main():
    for script in EXAMPLES:
        text = script.read_text()
        assert text.lstrip().startswith('"""'), script.name
        assert 'if __name__ == "__main__":' in text, script.name
