"""DIMACS graph format I/O."""

import pytest

from repro.core.exceptions import ModelError
from repro.problems.graphs import (
    Graph,
    format_dimacs_graph,
    parse_dimacs_graph,
)


class TestFormat:
    def test_header_and_edges(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        text = format_dimacs_graph(graph, comment="demo")
        lines = text.splitlines()
        assert lines[0] == "c demo"
        assert lines[1] == "p edge 3 2"
        assert "e 1 2" in lines
        assert "e 2 3" in lines

    def test_one_based_nodes(self):
        graph = Graph(2, [(0, 1)])
        assert "e 1 2" in format_dimacs_graph(graph)


class TestParse:
    def test_round_trip(self):
        graph = Graph(5, [(0, 4), (1, 2), (2, 3)])
        again = parse_dimacs_graph(format_dimacs_graph(graph))
        assert again.num_nodes == graph.num_nodes
        assert again.edges == graph.edges

    def test_col_header_accepted(self):
        graph = parse_dimacs_graph("p col 2 1\ne 1 2\n")
        assert graph.has_edge(0, 1)

    def test_comments_ignored(self):
        graph = parse_dimacs_graph("c hello\np edge 2 1\nc mid\ne 1 2\n")
        assert graph.num_edges == 1

    def test_missing_header_rejected(self):
        with pytest.raises(ModelError):
            parse_dimacs_graph("e 1 2\n")

    def test_malformed_edge_rejected(self):
        with pytest.raises(ModelError):
            parse_dimacs_graph("p edge 2 1\ne 1\n")

    def test_malformed_header_rejected(self):
        with pytest.raises(ModelError):
            parse_dimacs_graph("p graph 2 1\ne 1 2\n")
