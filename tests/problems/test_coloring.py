"""Coloring instances and their CSP/DisCSP encodings."""

import pytest

from repro.core.exceptions import GenerationError
from repro.problems.coloring import (
    PAPER_DENSITY,
    coloring_csp,
    coloring_discsp,
    coloring_nogoods,
    random_coloring_instance,
)
from repro.problems.graphs import Graph
from repro.solvers.backtracking import solve_csp

from ..conftest import triangle_graph


class TestNogoods:
    def test_one_nogood_per_edge_per_color(self):
        nogoods = coloring_nogoods(triangle_graph(), 3)
        assert len(nogoods) == 3 * 3

    def test_nogood_shape_matches_figure1(self):
        # The paper's arc nogoods: ((x_u, c)(x_v, c)).
        nogoods = coloring_nogoods(Graph(2, [(0, 1)]), 2)
        pairs = {tuple(sorted(nogood.pairs)) for nogood in nogoods}
        assert pairs == {((0, 0), (1, 0)), ((0, 1), (1, 1))}


class TestEncodings:
    def test_csp_solution_is_proper_coloring(self):
        graph = triangle_graph()
        csp = coloring_csp(graph, 3)
        solution = solve_csp(csp)
        assert graph.is_proper_coloring(solution)

    def test_discsp_one_agent_per_node(self):
        problem = coloring_discsp(triangle_graph(), 3)
        assert problem.agents == (0, 1, 2)
        assert problem.is_one_variable_per_agent()

    def test_discsp_neighbors_match_graph(self):
        graph = Graph(4, [(0, 1), (1, 2)])
        problem = coloring_discsp(graph, 3)
        assert problem.neighbors_of(1) == frozenset({0, 2})
        assert problem.neighbors_of(3) == frozenset()


class TestRandomInstance:
    def test_paper_parameters(self):
        instance = random_coloring_instance(30, seed=0)
        assert instance.num_colors == 3
        assert instance.graph.num_edges == round(PAPER_DENSITY * 30)

    def test_planted_solution_solves_the_instance(self):
        instance = random_coloring_instance(30, seed=1)
        assert instance.to_csp().is_solution(instance.planted)
        assert instance.to_discsp().is_solution(instance.planted)

    def test_explicit_edge_count(self):
        instance = random_coloring_instance(20, seed=0, num_edges=30)
        assert instance.graph.num_edges == 30

    def test_deterministic_per_seed(self):
        a = random_coloring_instance(20, seed=9)
        b = random_coloring_instance(20, seed=9)
        assert a.graph.edges == b.graph.edges
        assert a.planted == b.planted

    def test_distinct_across_seeds(self):
        a = random_coloring_instance(20, seed=1)
        b = random_coloring_instance(20, seed=2)
        assert a.graph.edges != b.graph.edges

    def test_infeasible_density_raises(self):
        with pytest.raises(GenerationError):
            random_coloring_instance(4, density=10.0, seed=0)
