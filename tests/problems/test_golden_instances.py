"""Golden instances: the default-seed generators are pinned bit-for-bit.

Every generator routes its randomness through ``derive_rng``, so the
instance produced by a given (parameters, seed) pair is part of the repo's
public contract — results tables cite it. These digests fail the moment
anyone perturbs a generator's draw sequence (reordering ``rng`` calls,
"harmless" refactors, a stray global-``random`` call slipping past lint
rule D1) even if the instances remain statistically plausible.

If a change is *meant* to alter the instances, update the digests and say
so in the changelog — that is a results-invalidating change.
"""

import hashlib

from repro.problems.binary_csp import random_binary_csp
from repro.problems.coloring import random_coloring_instance
from repro.problems.sat.generators import planted_3sat, unique_solution_3sat


def digest(payload) -> str:
    """A short stable digest of a canonical (sorted, typed) payload."""
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:16]


def coloring_payload(instance):
    return (
        instance.graph.num_nodes,
        tuple(sorted(instance.graph.edges)),
        instance.num_colors,
        tuple(sorted(instance.planted.items())),
    )


def sat_payload(instance):
    return (
        instance.formula.num_vars,
        tuple(instance.formula.clauses),
        tuple(sorted(instance.planted.items())),
    )


def binary_csp_payload(instance):
    return (
        instance.num_variables,
        instance.domain_size,
        instance.constrained_pairs,
        tuple(
            tuple(sorted(nogood.pairs)) for nogood in instance.csp.nogoods
        ),
        tuple(sorted(instance.planted.items())),
    )


class TestGoldenDigests:
    def test_coloring_default_seed(self):
        instance = random_coloring_instance(20)
        assert digest(coloring_payload(instance)) == "80487c6ed66e481d"

    def test_planted_3sat_default_seed(self):
        instance = planted_3sat(20)
        assert digest(sat_payload(instance)) == "2173762176d43632"

    def test_unique_solution_3sat_default_seed(self):
        instance = unique_solution_3sat(12)
        assert digest(sat_payload(instance)) == "3eed1474be4f6d70"

    def test_random_binary_csp_default_seed(self):
        instance = random_binary_csp(10, 4, 0.3, 0.2)
        assert digest(binary_csp_payload(instance)) == "1e971a259597ca9a"


class TestSeedSeparation:
    def test_different_seeds_give_different_instances(self):
        assert coloring_payload(
            random_coloring_instance(20, seed=0)
        ) != coloring_payload(random_coloring_instance(20, seed=1))
        assert sat_payload(planted_3sat(20, seed=0)) != sat_payload(
            planted_3sat(20, seed=1)
        )

    def test_same_seed_repeats_exactly(self):
        assert binary_csp_payload(
            random_binary_csp(10, 4, 0.3, 0.2, seed=7)
        ) == binary_csp_payload(random_binary_csp(10, 4, 0.3, 0.2, seed=7))
