"""The 3SAT-GEN- and 3ONESAT-GEN-style generators."""

import pytest

from repro.core.exceptions import GenerationError
from repro.problems.sat.generators import (
    PAPER_3SAT_RATIO,
    planted_3sat,
    unique_solution_3sat,
)
from repro.solvers.dpll import DpllSolver


class TestPlanted3Sat:
    def test_paper_ratio(self):
        instance = planted_3sat(20, seed=0)
        assert instance.formula.num_clauses == round(PAPER_3SAT_RATIO * 20)

    def test_planted_model_satisfies(self):
        for seed in range(5):
            instance = planted_3sat(20, seed=seed)
            assert instance.formula.satisfied_by(instance.planted)

    def test_clauses_are_ternary_and_distinct(self):
        instance = planted_3sat(20, seed=1)
        clauses = instance.formula.clauses
        assert all(len(clause) == 3 for clause in clauses)
        assert len(set(clauses)) == len(clauses)

    def test_every_variable_occurs(self):
        instance = planted_3sat(30, seed=2)
        assert instance.formula.variables_used() == set(range(1, 31))

    def test_deterministic_per_seed(self):
        assert planted_3sat(15, seed=3).formula == planted_3sat(15, seed=3).formula

    def test_distinct_across_seeds(self):
        assert planted_3sat(15, seed=3).formula != planted_3sat(15, seed=4).formula

    def test_explicit_clause_count(self):
        instance = planted_3sat(15, seed=0, num_clauses=40)
        assert instance.formula.num_clauses == 40

    def test_too_few_variables_rejected(self):
        with pytest.raises(GenerationError):
            planted_3sat(2, seed=0)

    def test_coverage_infeasible_rejected(self):
        with pytest.raises(GenerationError):
            planted_3sat(30, seed=0, num_clauses=5)


class TestUniqueSolution3Sat:
    def test_exactly_one_model(self):
        for seed in range(3):
            instance = unique_solution_3sat(12, seed=seed)
            count = DpllSolver(
                12, instance.formula.clauses
            ).count_models(limit=3)
            assert count == 1

    def test_the_model_is_the_planted_one(self):
        instance = unique_solution_3sat(12, seed=1)
        model = DpllSolver(12, instance.formula.clauses).solve()
        assert model == instance.planted

    def test_internal_verification_passes(self):
        unique_solution_3sat(10, seed=5, verify=True)

    def test_clauses_are_ternary(self):
        instance = unique_solution_3sat(12, seed=0)
        assert all(len(c) == 3 for c in instance.formula.clauses)

    def test_reaches_at_least_the_target_ratio(self):
        instance = unique_solution_3sat(12, seed=0, ratio=3.4)
        assert instance.formula.num_clauses >= round(3.4 * 12)

    def test_deterministic_per_seed(self):
        a = unique_solution_3sat(10, seed=2)
        b = unique_solution_3sat(10, seed=2)
        assert a.formula == b.formula
        assert a.planted == b.planted
