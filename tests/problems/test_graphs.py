"""Graphs and the planted-coloring generator."""

import random

import pytest

from repro.core.exceptions import GenerationError, ModelError
from repro.problems.graphs import Graph, planted_coloring_graph


class TestGraph:
    def test_add_edge_normalizes_direction(self):
        graph = Graph(3)
        assert graph.add_edge(2, 0)
        assert graph.has_edge(0, 2)
        assert graph.has_edge(2, 0)
        assert graph.edges == [(0, 2)]

    def test_duplicate_edge_reports_false(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        assert graph.add_edge(1, 0) is False
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError):
            Graph(3).add_edge(1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            Graph(3).add_edge(0, 3)

    def test_neighbors_and_degree(self):
        graph = Graph(4, [(0, 1), (0, 2)])
        assert graph.neighbors(0) == frozenset({1, 2})
        assert graph.degree(0) == 2
        assert graph.degree(3) == 0

    def test_proper_coloring_check(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        assert graph.is_proper_coloring({0: 0, 1: 1, 2: 0})
        assert not graph.is_proper_coloring({0: 0, 1: 0, 2: 1})
        assert not graph.is_proper_coloring({0: 0, 1: 1})  # incomplete

    def test_connected_components(self):
        graph = Graph(5, [(0, 1), (2, 3)])
        components = {frozenset(c) for c in graph.connected_components()}
        assert components == {
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({4}),
        }


class TestPlantedColoringGraph:
    def test_planted_partition_is_a_proper_coloring(self):
        rng = random.Random(0)
        graph, planted = planted_coloring_graph(30, 81, 3, rng)
        assert graph.num_edges == 81
        assert graph.is_proper_coloring(planted)

    def test_paper_density(self):
        rng = random.Random(1)
        n = 60
        graph, planted = planted_coloring_graph(n, round(2.7 * n), 3, rng)
        assert graph.num_edges == 162
        assert graph.is_proper_coloring(planted)

    def test_deterministic_for_seed(self):
        first, _p1 = planted_coloring_graph(20, 40, 3, random.Random(7))
        second, _p2 = planted_coloring_graph(20, 40, 3, random.Random(7))
        assert first.edges == second.edges

    def test_infeasible_edge_count_rejected(self):
        with pytest.raises(GenerationError):
            planted_coloring_graph(4, 100, 3, random.Random(0))

    def test_needs_two_colors(self):
        with pytest.raises(GenerationError):
            planted_coloring_graph(4, 2, 1, random.Random(0))

    def test_two_coloring(self):
        graph, planted = planted_coloring_graph(10, 15, 2, random.Random(3))
        assert graph.is_proper_coloring(planted)
        assert set(planted.values()) <= {0, 1}
