"""SAT → DisCSP encoding."""

from repro.problems.sat.cnf import CnfFormula
from repro.problems.sat.generators import planted_3sat
from repro.problems.sat.to_discsp import (
    assignment_to_model,
    clause_to_nogood,
    model_to_assignment,
    sat_nogoods,
    sat_to_csp,
    sat_to_discsp,
)
from repro.core.nogood import Nogood
from repro.solvers.backtracking import solve_csp
from repro.solvers.dpll import DpllSolver


class TestClauseEncoding:
    def test_nogood_is_the_falsifying_assignment(self):
        # (x1 ∨ ¬x2 ∨ x3) is false exactly when x1=0, x2=1, x3=0.
        assert clause_to_nogood((1, -2, 3)) == Nogood.of((1, 0), (2, 1), (3, 0))

    def test_unit_clause(self):
        assert clause_to_nogood((-4,)) == Nogood.of((4, 1))

    def test_one_nogood_per_clause(self):
        formula = CnfFormula(3, [[1, 2], [-1, 3]])
        assert len(sat_nogoods(formula)) == 2


class TestSemanticEquivalence:
    def test_models_and_solutions_coincide(self):
        formula = CnfFormula(3, [[1, 2, -3], [-1, 3], [2, 3]])
        csp = sat_to_csp(formula)
        solver = DpllSolver(3, formula.clauses)
        # Every CSP solution is a SAT model and vice versa (spot check both
        # directions on the full 2^3 space).
        import itertools

        for bits in itertools.product([0, 1], repeat=3):
            assignment = {v: bits[v - 1] for v in (1, 2, 3)}
            model = assignment_to_model(assignment)
            assert csp.is_solution(assignment) == formula.satisfied_by(model)

    def test_generated_instance_round_trip(self):
        instance = planted_3sat(15, seed=0)
        csp = sat_to_csp(instance.formula)
        assert csp.is_solution(model_to_assignment(instance.planted))
        solution = solve_csp(csp)
        assert instance.formula.satisfied_by(assignment_to_model(solution))

    def test_discsp_structure(self):
        instance = planted_3sat(15, seed=0)
        problem = sat_to_discsp(instance.formula)
        assert problem.agents == tuple(range(1, 16))
        assert problem.is_one_variable_per_agent()


class TestConverters:
    def test_round_trip(self):
        model = {1: True, 2: False}
        assert assignment_to_model(model_to_assignment(model)) == model
