"""CNF formulas and DIMACS I/O."""

import pytest

from repro.core.exceptions import ModelError
from repro.problems.sat.cnf import CnfFormula
from repro.problems.sat.dimacs import (
    format_dimacs,
    parse_dimacs,
    read_dimacs,
    write_dimacs,
)


class TestCnfFormula:
    def test_normalizes_clauses(self):
        formula = CnfFormula(3, [[3, -1, 3]])
        assert formula.clauses == ((-1, 3),)

    def test_drops_tautologies(self):
        formula = CnfFormula(2, [[1, -1], [2]])
        assert formula.clauses == ((2,),)

    def test_rejects_out_of_range_literal(self):
        with pytest.raises(ModelError):
            CnfFormula(2, [[3]])

    def test_rejects_nonpositive_num_vars(self):
        with pytest.raises(ModelError):
            CnfFormula(0, [])

    def test_ratio(self):
        assert CnfFormula(10, [[1]] * 43).ratio == pytest.approx(4.3)

    def test_satisfaction(self):
        formula = CnfFormula(2, [[1, -2]])
        assert formula.satisfied_by({1: True, 2: True})
        assert formula.satisfied_by({1: False, 2: False})
        assert not formula.satisfied_by({1: False, 2: True})

    def test_violated_clauses(self):
        formula = CnfFormula(2, [[1], [2]])
        assert formula.violated_clauses({1: True, 2: False}) == [(2,)]

    def test_incomplete_model_rejected(self):
        # Literal evaluation is lazy left-to-right, so leave the *first*
        # literal's variable unassigned to force the error deterministically.
        formula = CnfFormula(2, [[1, 2]])
        with pytest.raises(ModelError):
            formula.satisfied_by({2: True})

    def test_variables_used(self):
        formula = CnfFormula(5, [[1, -3]])
        assert formula.variables_used() == {1, 3}

    def test_with_clauses(self):
        formula = CnfFormula(2, [[1]])
        extended = formula.with_clauses([[2]])
        assert extended.num_clauses == 2
        assert formula.num_clauses == 1

    def test_equality_ignores_clause_order(self):
        assert CnfFormula(2, [[1], [2]]) == CnfFormula(2, [[2], [1]])


class TestDimacs:
    EXAMPLE = """c a comment
p cnf 3 2
1 -2 0
2 3 0
"""

    def test_parse(self):
        formula = parse_dimacs(self.EXAMPLE)
        assert formula.num_vars == 3
        assert formula.clauses == ((1, -2), (2, 3))

    def test_round_trip(self):
        formula = parse_dimacs(self.EXAMPLE)
        again = parse_dimacs(format_dimacs(formula, comment="round trip"))
        assert again == formula

    def test_clause_spanning_lines(self):
        text = "p cnf 3 1\n1\n-2 3 0\n"
        assert parse_dimacs(text).clauses == ((1, -2, 3),)

    def test_percent_terminator(self):
        text = "p cnf 2 1\n1 2 0\n%\n0\n"
        assert parse_dimacs(text).num_clauses == 1

    def test_missing_final_zero_tolerated(self):
        text = "p cnf 2 1\n1 2"
        assert parse_dimacs(text).clauses == ((1, 2),)

    def test_clause_count_mismatch_rejected(self):
        with pytest.raises(ModelError):
            parse_dimacs("p cnf 2 2\n1 0\n")

    def test_missing_header_rejected(self):
        with pytest.raises(ModelError):
            parse_dimacs("1 2 0\n")

    def test_clauses_before_header_rejected(self):
        with pytest.raises(ModelError):
            parse_dimacs("1 0\np cnf 2 1\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(ModelError):
            parse_dimacs("p cnf 2 1\np cnf 2 1\n1 0\n")

    def test_file_round_trip(self, tmp_path):
        formula = parse_dimacs(self.EXAMPLE)
        path = tmp_path / "f.cnf"
        write_dimacs(formula, path, comment="hello\nworld")
        assert read_dimacs(path) == formula
