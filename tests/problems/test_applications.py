"""Application builders: meeting scheduling and resource allocation."""

import pytest

from repro.algorithms.registry import awc
from repro.core.exceptions import ModelError
from repro.experiments.runner import run_trial
from repro.problems.applications import meeting_scheduling, resource_allocation


class TestMeetingScheduling:
    def build(self):
        return meeting_scheduling(
            participants={
                "standup": ["ana", "bo"],
                "design": ["bo", "casey"],
                "retro": ["ana", "casey"],
            },
            slots=["mon-9", "mon-10", "mon-11"],
        )

    def test_structure(self):
        schedule = self.build()
        assert len(schedule.problem.agents) == 3
        # All three meetings pairwise share someone: 3 pairs * 3 slots.
        assert len(schedule.problem.csp.nogoods) == 9

    def test_no_constraint_without_shared_participant(self):
        schedule = meeting_scheduling(
            participants={"a": ["x"], "b": ["y"]},
            slots=["s1"],
        )
        assert len(schedule.problem.csp.nogoods) == 0

    def test_solved_by_awc(self):
        schedule = self.build()
        result = run_trial(schedule.problem, awc("Rslv"), seed=0)
        assert result.solved
        decoded = schedule.decode(result.assignment)
        assert set(decoded) == {"standup", "design", "retro"}
        assert len(set(decoded.values())) == 3  # all different slots

    def test_meeting_of(self):
        schedule = self.build()
        assert schedule.meeting_of(schedule.meeting_ids["standup"]) == "standup"
        with pytest.raises(ModelError):
            schedule.meeting_of(99)

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            meeting_scheduling({}, ["s"])
        with pytest.raises(ModelError):
            meeting_scheduling({"m": ["p"]}, [])


class TestResourceAllocation:
    def build(self):
        return resource_allocation(
            capabilities={
                "obs-north": ["sat1", "sat2"],
                "obs-south": ["sat2", "sat3"],
                "relay": ["sat1", "sat3"],
            },
            conflicts=[
                ("obs-north", "obs-south"),
                ("obs-south", "relay"),
                ("obs-north", "relay"),
            ],
        )

    def test_domains_reflect_capabilities(self):
        allocation = self.build()
        task = allocation.task_ids["obs-north"]
        domain_values = allocation.problem.csp.domain_of(task).values
        names = {allocation.resource_names[v] for v in domain_values}
        assert names == {"sat1", "sat2"}

    def test_solved_by_awc(self):
        allocation = self.build()
        result = run_trial(allocation.problem, awc("Rslv"), seed=1)
        assert result.solved
        decoded = allocation.decode(result.assignment)
        assert decoded["obs-north"] != decoded["obs-south"]
        assert decoded["obs-south"] != decoded["relay"]
        assert decoded["obs-north"] != decoded["relay"]

    def test_unknown_conflict_task_rejected(self):
        with pytest.raises(ModelError):
            resource_allocation(
                capabilities={"a": ["r"]},
                conflicts=[("a", "ghost")],
            )

    def test_task_without_resources_rejected(self):
        with pytest.raises(ModelError):
            resource_allocation(capabilities={"a": []}, conflicts=[])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            resource_allocation(capabilities={}, conflicts=[])
