"""Complementary (balanced) planting in the 3SAT generator.

Naively planted random 3SAT is biased easy — clause polarity statistics
point local search at the hidden solution. The balanced generator requires
every clause to be satisfied by the planted model *and* its complement,
which removes the bias; this is our stand-in for the hardness of the AIM
3SAT-GEN instances (see DESIGN.md, substitution 2).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.problems.sat.generators import planted_3sat


def complement(model):
    return {variable: not value for variable, value in model.items()}


class TestBalancedPlanting:
    @given(st.integers(6, 20), st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_complement_is_also_a_model(self, n, seed):
        instance = planted_3sat(n, seed=seed)  # balanced by default
        assert instance.formula.satisfied_by(instance.planted)
        assert instance.formula.satisfied_by(complement(instance.planted))

    @given(st.integers(6, 20), st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_every_clause_has_mixed_polarity(self, n, seed):
        instance = planted_3sat(n, seed=seed)
        for clause in instance.formula.clauses:
            agreeing = sum(
                (literal > 0) == instance.planted[abs(literal)]
                for literal in clause
            )
            assert 0 < agreeing < len(clause)

    def test_unbalanced_mode_available(self):
        instance = planted_3sat(12, seed=0, balanced=False)
        assert instance.formula.satisfied_by(instance.planted)
        # The all-agreeing clauses that balanced mode forbids are allowed.
        fully_agreeing = [
            clause
            for clause in instance.formula.clauses
            if all(
                (literal > 0) == instance.planted[abs(literal)]
                for literal in clause
            )
        ]
        assert fully_agreeing  # overwhelmingly likely at m = 4.3 n

    def test_balanced_is_harder_for_greedy_dynamics(self):
        """The reason balanced is the default: the no-learning AWC (pure
        min-conflict dynamics) should not beat resolvent learning on cycles,
        which it spuriously does on naively planted instances."""
        from repro.algorithms.registry import awc
        from repro.experiments.runner import run_trial
        from repro.problems.sat.to_discsp import sat_to_discsp

        def mean_cycles(balanced):
            total = 0
            for seed in range(3):
                instance = planted_3sat(40, seed=seed, balanced=balanced)
                problem = sat_to_discsp(instance.formula)
                for trial_seed in range(3):
                    total += run_trial(
                        problem, awc("No"), seed=trial_seed, max_cycles=5_000
                    ).cycles
            return total / 9

        assert mean_cycles(balanced=True) > mean_cycles(balanced=False)
