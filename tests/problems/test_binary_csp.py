"""Random binary CSPs and n-queens."""

import pytest

from repro.algorithms.registry import abt, awc, db
from repro.core.exceptions import GenerationError, ModelError
from repro.experiments.runner import run_trial
from repro.problems.binary_csp import (
    is_nqueens_solution,
    nqueens_csp,
    nqueens_discsp,
    random_binary_csp,
)
from repro.solvers.backtracking import brute_force_solutions, solve_csp


class TestRandomBinaryCsp:
    def test_planted_instance_is_solvable(self):
        for seed in range(5):
            instance = random_binary_csp(8, 3, 0.4, 0.3, seed=seed)
            assert instance.planted is not None
            assert instance.csp.is_solution(instance.planted)

    def test_pair_and_tuple_counts(self):
        instance = random_binary_csp(10, 3, 0.5, 0.3, seed=0)
        total_pairs = 10 * 9 // 2
        assert len(instance.constrained_pairs) == round(0.5 * total_pairs)
        # 0.3 * 9 values = 2.7 → 3 forbidden tuples per constrained pair.
        assert len(instance.csp.nogoods) == len(instance.constrained_pairs) * 3

    def test_unplanted_instances_allowed_to_be_unsolvable(self):
        # Full tightness without planting: every value pair forbidden.
        instance = random_binary_csp(
            4, 2, 1.0, 1.0, seed=0, planted=False
        )
        assert solve_csp(instance.csp) is None

    def test_planted_rejects_impossible_tightness(self):
        with pytest.raises(GenerationError):
            random_binary_csp(4, 2, 1.0, 1.0, seed=0, planted=True)

    def test_deterministic_per_seed(self):
        a = random_binary_csp(8, 3, 0.4, 0.3, seed=5)
        b = random_binary_csp(8, 3, 0.4, 0.3, seed=5)
        assert a.csp.nogoods == b.csp.nogoods
        assert a.planted == b.planted

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            random_binary_csp(1, 3, 0.5, 0.5)
        with pytest.raises(ModelError):
            random_binary_csp(5, 0, 0.5, 0.5)
        with pytest.raises(ModelError):
            random_binary_csp(5, 3, 1.5, 0.5)
        with pytest.raises(ModelError):
            random_binary_csp(5, 3, 0.5, -0.1)

    def test_solved_by_awc(self):
        instance = random_binary_csp(10, 3, 0.35, 0.25, seed=3)
        problem = instance.to_discsp()
        result = run_trial(problem, awc("Rslv"), seed=0, max_cycles=5000)
        assert result.solved
        assert problem.is_solution(result.assignment)


class TestNQueens:
    def test_known_counts(self):
        # Classic solution counts: 4-queens has 2, 5-queens has 10.
        assert len(brute_force_solutions(nqueens_csp(4))) == 2
        assert len(brute_force_solutions(nqueens_csp(5))) == 10

    def test_three_queens_unsolvable(self):
        assert solve_csp(nqueens_csp(3)) is None

    def test_oracle_agrees_with_nogoods(self):
        csp = nqueens_csp(5)
        for solution in brute_force_solutions(csp):
            assert is_nqueens_solution(5, solution)
        assert not is_nqueens_solution(5, {r: 0 for r in range(5)})

    @pytest.mark.parametrize(
        "spec_factory", [lambda: awc("Rslv"), lambda: db(), lambda: abt()],
        ids=["AWC+Rslv", "DB", "ABT"],
    )
    def test_solved_distributed(self, spec_factory):
        problem = nqueens_discsp(6)
        result = run_trial(problem, spec_factory(), seed=2, max_cycles=8000)
        assert result.solved
        assert is_nqueens_solution(6, result.assignment)

    def test_unsolvable_detected_by_awc(self):
        problem = nqueens_discsp(3)
        result = run_trial(problem, awc("Rslv"), seed=0, max_cycles=8000)
        assert result.unsolvable

    def test_size_validation(self):
        with pytest.raises(ModelError):
            nqueens_csp(0)
