"""ScheduledTransport: the explorer's replay seam.

The contract under test: exactly one delivery per ``pop_due`` (an epoch is
one handler invocation), the enabled set is the per-channel FIFO heads in a
deterministic order, decisions replay bit-for-bit from ``choices_taken``,
and schedule mistakes fail loudly instead of silently reordering.
"""

import pytest

from repro.core.exceptions import SimulationError
from repro.runtime.events import ChoicePoint, ScheduledTransport
from repro.runtime.messages import OkMessage


def ok(sender, value=0):
    return OkMessage(sender, sender, value)


def loaded():
    """Two channels into agent 0, one of them two deep."""
    transport = ScheduledTransport()
    transport.send(2, 0, ok(2, value=10), now=0)
    transport.send(1, 0, ok(1, value=20), now=0)
    transport.send(2, 0, ok(2, value=30), now=0)
    return transport


class TestEnabledSet:
    def test_heads_are_per_channel_and_sorted(self):
        enabled = loaded().enabled()
        assert [(d.sender, d.recipient) for d in enabled] == [(1, 0), (2, 0)]
        # Channel (2, 0) is two deep: only its first send is enabled.
        assert enabled[1].message.value == 10

    def test_fifo_within_a_channel(self):
        transport = loaded()
        values = []
        now = 0
        while transport.pending():
            now = transport.next_time()
            for delivery in transport.pop_due(now):
                if delivery.sender == 2:
                    values.append(delivery.message.value)
        assert values == [10, 30]

    def test_self_send_rejected(self):
        transport = ScheduledTransport()
        with pytest.raises(SimulationError, match="itself"):
            transport.send(0, 0, ok(0), now=0)


class TestDelivery:
    def test_exactly_one_delivery_per_pop(self):
        transport = loaded()
        assert len(transport.pop_due(1)) == 1
        assert transport.pending() == 2

    def test_default_schedule_takes_index_zero(self):
        transport = loaded()
        [first] = transport.pop_due(1)
        assert first.sender == 1  # channel (1, 0) sorts first

    def test_schedule_picks_the_head(self):
        transport = ScheduledTransport(schedule=(1,))
        transport.send(2, 0, ok(2, value=10), now=0)
        transport.send(1, 0, ok(1, value=20), now=0)
        [first] = transport.pop_due(1)
        assert first.sender == 2 and first.message.value == 10

    def test_out_of_range_index_fails_loudly(self):
        transport = ScheduledTransport(schedule=(5,))
        transport.send(1, 0, ok(1), now=0)
        with pytest.raises(SimulationError, match="only 1 channel heads"):
            transport.pop_due(1)

    def test_next_time_is_one_epoch_ahead(self):
        transport = ScheduledTransport()
        assert transport.next_time() is None
        transport.send(1, 0, ok(1), now=0)
        assert transport.next_time() == 1
        transport.pop_due(1)
        transport.send(1, 0, ok(1), now=1)
        assert transport.next_time() == 2


class TestChoiceLog:
    def test_records_enabled_and_chosen(self):
        seen = []
        transport = ScheduledTransport(schedule=(1,), on_choice=seen.append)
        transport.send(2, 0, ok(2), now=0)
        transport.send(1, 0, ok(1), now=0)
        transport.pop_due(1)
        assert seen == transport.choice_log
        [point] = transport.choice_log
        assert isinstance(point, ChoicePoint)
        assert point.chosen == 1 and len(point.enabled) == 2
        assert point.branching

    def test_single_head_is_not_branching(self):
        transport = ScheduledTransport()
        transport.send(1, 0, ok(1), now=0)
        transport.pop_due(1)
        assert not transport.choice_log[0].branching

    def test_choices_taken_replays_the_run(self):
        first = loaded()
        while first.pending():
            first.pop_due(first.next_time())
        replay = ScheduledTransport(schedule=first.choices_taken)
        replay.send(2, 0, ok(2, value=10), now=0)
        replay.send(1, 0, ok(1, value=20), now=0)
        replay.send(2, 0, ok(2, value=30), now=0)
        while replay.pending():
            replay.pop_due(replay.next_time())
        assert replay.delivery_log == first.delivery_log
        assert replay.choices_taken == first.choices_taken
