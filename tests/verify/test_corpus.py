"""The pinned corpus: tiny, reproducible, and strict about its limits."""

import pytest

from repro.algorithms.multi_awc import MultiVariableAwcAgent
from repro.core.exceptions import ModelError
from repro.verify.corpus import (
    MAX_NODES,
    PINNED_CORPUS,
    CorpusEntry,
    corpus_by_name,
)


class TestEntry:
    def test_size_cap_enforced(self):
        with pytest.raises(ModelError, match="n <= 8"):
            CorpusEntry("too-big", "ABT", MAX_NODES + 1)

    def test_build_is_reproducible(self):
        entry = PINNED_CORPUS[0]
        first_problem, first_agents = entry.build()
        second_problem, second_agents = entry.build()
        assert first_problem.variables == second_problem.variables
        assert [a.id for a in first_agents] == [a.id for a in second_agents]

    def test_reowning_produces_multi_variable_agents(self):
        entry = next(e for e in PINNED_CORPUS if e.num_agents is not None)
        problem, agents = entry.build()
        assert len(agents) == entry.num_agents
        assert all(isinstance(a, MultiVariableAwcAgent) for a in agents)
        assert len(problem.variables) == entry.num_nodes

    def test_every_entry_builds(self):
        for entry in PINNED_CORPUS:
            problem, agents = entry.build()
            assert agents and problem.variables


class TestSelection:
    def test_empty_selection_is_the_whole_corpus(self):
        assert corpus_by_name([]) == PINNED_CORPUS

    def test_selection_preserves_request_order(self):
        names = [PINNED_CORPUS[2].name, PINNED_CORPUS[0].name]
        assert [e.name for e in corpus_by_name(names)] == names

    def test_unknown_name_rejected_with_the_known_list(self):
        with pytest.raises(ModelError, match="unknown corpus entries"):
            corpus_by_name(["nope"])
