"""``repro verify``: both modes of the verifier CLI."""

import json

from repro.verify.cli import main


class TestMatrixMode:
    def test_prints_footprints_and_matrix(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "AwcAgent:" in out
        assert "CONFLICT" in out
        assert "commute" in out


class TestExploreMode:
    def test_unknown_entry_is_fatal(self, capsys):
        assert main(["--explore", "--only", "nope"]) == 2
        assert "FATAL" in capsys.readouterr().err

    def test_explore_writes_report_and_exits_clean(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        code = main(
            [
                "--explore",
                "--only",
                "multi-awc-n5",
                "--no-naive",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "multi-awc-n5" in out
        assert "0 violation(s)" in out
        payload = json.loads(output.read_text())
        [entry] = payload["entries"]
        assert entry["name"] == "multi-awc-n5"
        assert entry["explored"] > 0
        assert not entry["violations"]

    def test_json_format_prints_the_report(self, capsys):
        code = main(
            [
                "--explore",
                "--only",
                "multi-awc-n5",
                "--no-naive",
                "--budget",
                "3",
                "--format",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"][0]["explored_capped"] is True
