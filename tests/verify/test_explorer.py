"""The DPOR explorer: pruning, invariants, and the seeded race.

The acceptance test of the whole verifier lives here: the deliberately racy
agent in ``tests/verify/fixtures/racy_agent.py`` (flagged statically by R2
in ``tests/lint/test_rules_effects.py``) must be caught *dynamically* — the
explorer has to find the two delivery orders and report the outcome
divergence.
"""

import pytest

from repro.verify.corpus import corpus_by_name
from repro.verify.explorer import (
    explore_corpus,
    explore_entry,
    repo_commutativity_matrix,
)

from .fixtures.racy_agent import build_racy_setup


@pytest.fixture(scope="module")
def matrix():
    return repo_commutativity_matrix()


class RacyEntry:
    """Duck-typed corpus entry wrapping the seeded-race fixture."""

    name = "racy-fixture"
    algorithm = "RacyAgent"
    max_epochs = 50

    def build(self):
        return build_racy_setup()


class TestSeededRace:
    def test_outcome_divergence_is_reported(self, matrix):
        report = explore_entry(RacyEntry(), matrix=matrix, count_naive=False)
        # Two ok? messages race to agent 0: both orders must be explored —
        # the racy pair is same-recipient, so pruning may never drop it.
        assert report.explored == 2
        assert report.outcomes == {"solved": 1, "quiescent": 1}
        assert len(report.violations) == 1
        assert "diverges" in report.violations[0]

    def test_race_survives_pruning_because_unknown_pairs_are_dependent(
        self, matrix
    ):
        # RacyAgent is not in src/repro, so its (class, Ok, Ok) entry is
        # absent from the static matrix — the explorer must treat the pair
        # as dependent, not silently commute it away.
        key = ("RacyAgent", "OkMessage", "OkMessage")
        assert key not in matrix
        pruned = explore_entry(RacyEntry(), matrix=matrix, count_naive=False)
        naive = explore_entry(
            RacyEntry(), matrix=matrix, prune=False, count_naive=False
        )
        assert pruned.explored == naive.explored == 2


class TestRepoMatrix:
    def test_absorbing_pairs_commute(self, matrix):
        assert matrix[("AwcAgent", "OkMessage", "RequestValueMessage")]
        assert matrix[("AbtAgent", "OkMessage", "RequestValueMessage")]
        assert matrix[("BreakoutAgent", "ImproveMessage", "OkRoundMessage")]

    def test_view_writers_conflict(self, matrix):
        assert not matrix[("AwcAgent", "NogoodMessage", "OkMessage")]
        assert not matrix[("AwcAgent", "OkMessage", "OkMessage")]
        assert not matrix[("AbtAgent", "NogoodMessage", "OkMessage")]

    def test_matrix_is_symmetric(self, matrix):
        for (cls, type_a, type_b), commutes in matrix.items():
            assert matrix[(cls, type_b, type_a)] == commutes


class TestCorpusExploration:
    def test_pinned_entry_closes_clean(self, matrix):
        [entry] = corpus_by_name(["multi-awc-n5"])
        report = explore_entry(entry, matrix=matrix, count_naive=False)
        assert not report.explored_capped
        assert report.violations == []
        assert report.branch_points > 0
        # Outcome agreement: the conclusive outcomes collapse to one label.
        conclusive = {
            label: count
            for label, count in report.outcomes.items()
            if label != "capped"
        }
        assert len(conclusive) == 1

    def test_pruning_shrinks_the_tree(self, matrix):
        [entry] = corpus_by_name(["multi-awc-n5"])
        pruned = explore_entry(entry, matrix=matrix, count_naive=False)
        naive = explore_entry(
            entry,
            matrix=matrix,
            prune=False,
            count_naive=False,
            budget=pruned.explored * 3,
        )
        explored_more = naive.explored > pruned.explored
        assert explored_more or naive.explored_capped

    def test_budget_caps_exploration(self, matrix):
        [entry] = corpus_by_name(["abt-n6"])
        report = explore_entry(
            entry, matrix=matrix, budget=5, count_naive=False
        )
        assert report.explored == 5
        assert report.explored_capped

    def test_capped_naive_count_is_a_lower_bound(self, matrix):
        [entry] = corpus_by_name(["multi-awc-n5"])
        report = explore_entry(entry, matrix=matrix, naive_budget=10)
        assert report.naive_counted
        assert report.naive_capped
        assert report.naive == 10
        assert report.prune_ratio == 10 / report.explored

    def test_corpus_report_aggregates(self, matrix):
        entries = corpus_by_name(["multi-awc-n5", "db-n4"])
        report = explore_corpus(entries, matrix=matrix, count_naive=False)
        assert [e.name for e in report.entries] == ["multi-awc-n5", "db-n4"]
        assert report.explored == sum(e.explored for e in report.entries)
        assert report.violations == []
        payload = report.as_dict()
        assert payload["explored"] == report.explored
        assert len(payload["entries"]) == 2
