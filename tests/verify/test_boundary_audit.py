"""The dynamic half of S1: pickle-round-trip audit of real payloads.

The property test at the bottom is the one CI runs as the
S1-vs-runtime cross-validation: every message type observed on the
pinned corpus must be inside the static payload closure, and every
observed payload must survive a pickle round-trip.
"""

import pickle
from pathlib import Path

from repro.verify.boundary_audit import (
    AuditReport,
    PayloadRecorder,
    RoundTripFailure,
    audit_corpus,
    audit_entry,
    static_payload_types,
)
from repro.verify.corpus import PINNED_CORPUS

REPO = Path(__file__).parents[2]
SOURCE_ROOT = str(REPO / "src")


class _Opaque:
    """Deliberately unpicklable: holds a lambda."""

    def __init__(self):
        self.fn = lambda: None

    def __reduce__(self):
        raise pickle.PicklingError("opaque by construction")


class TestPayloadRecorder:
    def test_records_every_routed_message_in_order(self):
        recorder = PayloadRecorder()
        recorder.on_message(0, 1, 2, "first")
        recorder.on_message(0, 2, 1, "second")
        recorder.on_cycle_end(0, {})
        assert recorder.payloads == ["first", "second"]


class TestAuditReport:
    def test_ok_flips_on_any_failure(self):
        report = AuditReport()
        assert report.ok
        report.failures.append(RoundTripFailure("e", "T", "boom"))
        assert not report.ok


class TestAuditEntry:
    def test_single_entry_observes_traffic(self):
        report = audit_entry(PINNED_CORPUS[0])
        assert report.entries_run == 1
        assert report.payloads_sent > 0
        assert report.observed_types
        assert report.ok

    def test_unpicklable_payload_is_reported(self):
        # Drive the round-trip path directly with a hostile payload.
        from repro.verify.boundary_audit import _round_trip

        failure = _round_trip("synthetic", _Opaque())
        assert failure is not None
        assert failure.entry == "synthetic"
        assert failure.message_type == "_Opaque"
        assert "PicklingError" in failure.error


class TestCorpusCrossValidation:
    """The CI gate: static S1 closure vs. the wire, on the pinned corpus."""

    def test_observed_types_are_a_subset_of_the_static_closure(self):
        report = audit_corpus()
        static = static_payload_types(SOURCE_ROOT)
        assert report.entries_run == len(PINNED_CORPUS)
        assert report.payloads_sent > 0
        missing = report.observed_types - static
        assert not missing, (
            "runtime sent payload types the static closure never saw: "
            f"{sorted(missing)}"
        )

    def test_every_observed_payload_round_trips(self):
        report = audit_corpus()
        assert report.ok, [
            (f.entry, f.message_type, f.error) for f in report.failures
        ]
