# repro-lint: module=algorithms/racy_agent.py
"""The seeded interleaving bug both verifier layers must catch.

``RacyAgent`` commits its decision state on the *first* ``ok?`` it sees —
the classic absorb-vs-commit race: two messages from distinct senders race
to the same recipient, and whichever the transport delivers first decides
the final assignment. Statically, the ``OkMessage`` handler's footprint
conflicts with itself (reads and writes ``committed``, writes the decision
attribute ``value``), so rule R2 must flag the dispatch branch. Dynamically,
:func:`build_racy_setup` wires the race so that one delivery order solves
the instance and the other ends quiescent and unsolved — the explorer must
report the outcome divergence.

Lives under ``fixtures/`` so whole-tree lint runs skip it (the seeded bug
must not turn the repo's own lint gate red); the verify tests lint and run
it explicitly.
"""

from repro.core.nogood import Nogood
from repro.core.problem import CSP, DisCSP
from repro.runtime.agent import SimulatedAgent
from repro.runtime.messages import OkMessage


class RacyAgent(SimulatedAgent):
    """Dirty: decision state committed inside the per-message dispatch."""

    def __init__(self, agent_id, variable, initial_value):
        super().__init__(agent_id)
        self.variable = variable
        self.value = initial_value
        self.committed = False

    def initialize(self):
        return []

    def step(self, messages):
        for message in messages:
            if isinstance(message, OkMessage):
                if not self.committed:
                    self.value = message.value  # dirty: first writer wins
                    self.committed = True
        return []

    def local_assignment(self):
        return {self.variable: self.value}


class AnnouncerAgent(SimulatedAgent):
    """Announces a pinned value to the racy agent once, at startup."""

    def __init__(self, agent_id, variable, value, target):
        super().__init__(agent_id)
        self.variable = variable
        self.value = value
        self.target = target

    def initialize(self):
        return [(self.target, OkMessage(self.id, self.variable, self.value))]

    def step(self, messages):
        return []

    def local_assignment(self):
        return {self.variable: self.value}


def build_racy_setup():
    """(problem, agents) where the delivery order decides solvability.

    Variable 0 (the racy agent's) must end up 0 — the only nogood forbids
    ``x0 = 1``. Agent 1 announces 1, agent 2 announces 0; both ``ok?``
    messages race to agent 0, which freezes on whichever arrives first.
    Deliver agent 2's first and the run solves; deliver agent 1's first
    and it goes quiescent, unsolved.
    """
    domains = {0: (0, 1), 1: (0, 1), 2: (0, 1)}
    csp = CSP(domains, [Nogood([(0, 1)])])
    problem = DisCSP.from_csp(csp)
    agents = [
        RacyAgent(0, variable=0, initial_value=1),
        AnnouncerAgent(1, variable=1, value=1, target=0),
        AnnouncerAgent(2, variable=2, value=0, target=0),
    ]
    return problem, agents
