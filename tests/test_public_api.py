"""Public-surface sanity: exports exist, exceptions form one hierarchy."""

import importlib

import pytest

import repro
from repro.core.exceptions import (
    GenerationError,
    ModelError,
    ReproError,
    SimulationError,
    SolverError,
    UnsolvableError,
)

PACKAGES = [
    "repro",
    "repro.core",
    "repro.runtime",
    "repro.learning",
    "repro.algorithms",
    "repro.problems",
    "repro.problems.sat",
    "repro.solvers",
    "repro.experiments",
    "repro.analysis",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        module = importlib.import_module(package_name)
        exported = getattr(module, "__all__", None)
        assert exported, f"{package_name} has no __all__"
        for name in exported:
            assert hasattr(module, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_is_sorted_and_unique(self, package_name):
        module = importlib.import_module(package_name)
        exported = list(module.__all__)
        assert len(set(exported)) == len(exported)

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_star_import_is_clean(self):
        namespace = {}
        exec("from repro import *", namespace)
        assert "awc" in namespace
        assert "run_trial" in namespace


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            GenerationError,
            ModelError,
            SimulationError,
            SolverError,
            UnsolvableError,
        ],
    )
    def test_single_root(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_unsolvable_records_agent(self):
        error = UnsolvableError(7)
        assert error.agent_id == 7
        assert "7" in str(error)

    def test_unsolvable_custom_message(self):
        assert str(UnsolvableError(1, "boom")) == "boom"


class TestDocstrings:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_every_package_documented(self, package_name):
        module = importlib.import_module(package_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_every_public_callable_documented(self):
        import inspect

        undocumented = []
        for package_name in PACKAGES[1:]:
            module = importlib.import_module(package_name)
            for name in module.__all__:
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{package_name}.{name}")
        assert undocumented == []
