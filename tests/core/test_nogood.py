"""Nogood semantics: the constraint representation everything rests on."""

import pytest

from repro.core.exceptions import ModelError
from repro.core.nogood import Nogood, union_nogoods


class TestConstruction:
    def test_of_builder(self):
        nogood = Nogood.of((1, 0), (2, 1))
        assert nogood.pairs == frozenset({(1, 0), (2, 1)})

    def test_from_assignment(self):
        nogood = Nogood.from_assignment({1: 0, 2: 1})
        assert nogood == Nogood.of((1, 0), (2, 1))

    def test_duplicate_pair_collapses(self):
        assert len(Nogood.of((1, 0), (1, 0))) == 1

    def test_conflicting_values_rejected(self):
        with pytest.raises(ModelError):
            Nogood.of((1, 0), (1, 1))

    def test_empty_nogood_is_legal(self):
        assert len(Nogood([])) == 0


class TestQueries:
    def test_variables(self):
        assert Nogood.of((3, 0), (7, 1)).variables == frozenset({3, 7})

    def test_value_of(self):
        nogood = Nogood.of((3, 0), (7, 1))
        assert nogood.value_of(3) == 0
        assert nogood.value_of(7) == 1
        assert nogood.value_of(9) is None

    def test_mentions(self):
        nogood = Nogood.of((3, 0))
        assert nogood.mentions(3)
        assert not nogood.mentions(4)

    def test_without(self):
        nogood = Nogood.of((1, 0), (2, 1))
        assert nogood.without(1) == Nogood.of((2, 1))
        assert nogood.without(9) is nogood

    def test_restricted_to(self):
        nogood = Nogood.of((1, 0), (2, 1), (3, 2))
        assert nogood.restricted_to([1, 3]) == Nogood.of((1, 0), (3, 2))

    def test_is_subset_of(self):
        small = Nogood.of((1, 0))
        large = Nogood.of((1, 0), (2, 1))
        assert small.is_subset_of(large)
        assert not large.is_subset_of(small)
        assert Nogood.of((1, 1)).is_subset_of(large) is False


class TestProhibits:
    def test_violated_when_all_pairs_match(self):
        nogood = Nogood.of((1, 0), (2, 1))
        assert nogood.prohibits({1: 0, 2: 1})
        assert nogood.prohibits({1: 0, 2: 1, 3: 5})

    def test_not_violated_on_mismatch(self):
        nogood = Nogood.of((1, 0), (2, 1))
        assert not nogood.prohibits({1: 0, 2: 0})

    def test_not_violated_when_variable_unassigned(self):
        nogood = Nogood.of((1, 0), (2, 1))
        assert not nogood.prohibits({1: 0})

    def test_empty_nogood_prohibits_everything(self):
        assert Nogood([]).prohibits({})
        assert Nogood([]).prohibits({1: 0})

    def test_none_is_a_legal_value(self):
        # Values need only be hashable; None must not be confused with
        # "unassigned".
        nogood = Nogood.of((1, None))
        assert nogood.prohibits({1: None})
        assert not nogood.prohibits({})
        assert not nogood.prohibits({1: 0})


class TestIdentity:
    def test_equality_ignores_order(self):
        assert Nogood.of((1, 0), (2, 1)) == Nogood.of((2, 1), (1, 0))

    def test_hash_consistency(self):
        assert hash(Nogood.of((1, 0), (2, 1))) == hash(
            Nogood.of((2, 1), (1, 0))
        )

    def test_set_membership(self):
        seen = {Nogood.of((1, 0)), Nogood.of((2, 0))}
        assert Nogood.of((1, 0)) in seen
        assert Nogood.of((1, 1)) not in seen

    def test_repr_is_sorted_and_readable(self):
        assert repr(Nogood.of((2, 1), (1, 0))) == "Nogood[(x1=0), (x2=1)]"


class TestUnion:
    def test_union_merges_pairs(self):
        merged = union_nogoods(
            [Nogood.of((1, 0)), Nogood.of((2, 1)), Nogood.of((1, 0), (3, 2))]
        )
        assert merged == Nogood.of((1, 0), (2, 1), (3, 2))

    def test_union_of_nothing_is_empty(self):
        assert len(union_nogoods([])) == 0

    def test_union_conflict_raises(self):
        with pytest.raises(ModelError):
            union_nogoods([Nogood.of((1, 0)), Nogood.of((1, 1))])
